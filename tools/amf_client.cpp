// amf_client — command-line client for amf_serve.
//
//   amf_client (--unix PATH | --tcp HOST PORT | --endpoints LIST)
//              <mode> [options]
//
// --endpoints takes a comma-separated ordered failover list
// ("unix:PATH" / "HOST:PORT" / "PORT"); the client rotates to the next
// endpoint on connect failures, dead/timed-out roundtrips, and typed
// not_primary responses (see DESIGN.md §15).
//
// Modes:
//   solve   read an AllocationProblem CSV on stdin, run it through a
//           service session (create_session + add_job per row + solve)
//           and print the allocation in amf_solve's CSV format — the
//           shares are bit-identical to `amf_solve` on the same input.
//   raw     forward JSON request lines from stdin, print each response
//           line to stdout (scripting / smoke tests).
//   stats   scrape the service metrics (JSON, or Prometheus with
//           --prometheus).
//   drain   trigger a graceful server drain.
//   ping    liveness check.
//   promote promote a warm standby to primary (idempotent).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "svc/client.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace {

int usage(bool help = false) {
  (help ? std::cout : std::cerr)
      << "usage: amf_client (--unix PATH | --tcp HOST PORT | "
         "--endpoints LIST) [connection options]\n"
         "                  solve|raw|stats|drain|ping|promote [options]\n"
         "  solve [--session S] [--policy amf|eamf|psmf] "
         "[--budget-ms B] [--batch-window-ms W] < problem.csv\n"
         "        prints the allocation matrix in amf_solve's CSV format\n"
         "  raw   < requests.jsonl   one response line per request line\n"
         "  stats [--prometheus]     metric registry scrape\n"
         "  drain                    graceful server drain\n"
         "  ping                     liveness check\n"
         "  promote                  promote a warm standby to primary\n"
         "connection options (accepted before or after the mode):\n"
         "  --endpoints LIST         comma-separated ordered failover list "
         "(unix:PATH,\n"
         "                           HOST:PORT, or PORT entries); the "
         "client rotates on\n"
         "                           failures and not_primary responses\n"
         "  --retries N              attempts per idempotent op (default 1)\n"
         "  --read-timeout-ms T      per-read timeout (default: block)\n"
         "  --trace                  stamp wire trace ids (see /tracez)\n"
         "  --verbose                print retry/reconnect counters to "
         "stderr on exit\n";
  return help ? 0 : 2;
}

int run_solve(amf::svc::Client& client, const std::string& session,
              const std::string& policy, double budget_ms,
              double batch_window_ms) {
  using namespace amf;
  auto problem = core::AllocationProblem::load(std::cin);

  svc::Json overrides = svc::Json::object();
  overrides.set("policy", svc::Json(policy));
  if (batch_window_ms > 0.0)
    overrides.set("batch_window_ms", svc::Json(batch_window_ms));
  client.create_session(session, problem.capacities(), std::move(overrides));
  for (int j = 0; j < problem.jobs(); ++j) {
    std::vector<double> workloads;
    if (problem.has_workloads())
      workloads = problem.workloads()[static_cast<std::size_t>(j)];
    client.add_job(session, problem.demands()[static_cast<std::size_t>(j)],
                   workloads, problem.weight(j));
  }
  svc::Json response = client.solve(session, budget_ms);
  const svc::Json* allocation = response.find("allocation");
  AMF_REQUIRE(allocation != nullptr, "solve response lacks an allocation");
  const svc::Json* jobs = allocation->find("jobs");
  AMF_REQUIRE(jobs != nullptr && jobs->is_array(),
              "allocation lacks a jobs array");

  std::vector<std::string> header{"job"};
  for (int s = 0; s < problem.sites(); ++s)
    header.push_back("site" + std::to_string(s));
  header.push_back("aggregate");
  util::CsvWriter csv(std::cout, header);
  int j = 0;
  for (const svc::Json& row : jobs->as_array()) {
    const svc::Json* shares = row.find("shares");
    AMF_REQUIRE(shares != nullptr, "allocation row lacks shares");
    auto values =
        svc::number_array(*shares, problem.sites(), "shares");
    std::vector<std::string> out{std::to_string(j++)};
    for (double v : values) out.push_back(util::CsvWriter::format(v));
    out.push_back(
        util::CsvWriter::format(row.number_or("aggregate", 0.0)));
    csv.row(out);
  }
  return 0;
}

int run_raw(amf::svc::Client& client) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << client.call_line(line) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  std::string unix_path, host;
  int port = -1;
  std::vector<svc::Endpoint> endpoints;
  svc::RetryPolicy retry;
  bool trace = false, verbose = false;
  // Connection options are accepted on either side of the mode word, so
  // this matcher runs in both argument loops.
  auto connection_flag = [&](int* idx) {
    int k = *idx;
    if (std::strcmp(argv[k], "--retries") == 0 && k + 1 < argc) {
      retry.max_attempts = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--endpoints") == 0 && k + 1 < argc) {
      std::string list = argv[++k];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string spec =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!spec.empty()) {
          try {
            endpoints.push_back(svc::parse_endpoint(spec));
          } catch (const std::exception& e) {
            std::cerr << "amf_client: " << e.what() << "\n";
            std::exit(2);
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (std::strcmp(argv[k], "--read-timeout-ms") == 0 &&
               k + 1 < argc) {
      retry.read_timeout_ms = std::atof(argv[++k]);
      if (retry.connect_timeout_ms <= 0.0)
        retry.connect_timeout_ms = retry.read_timeout_ms;
    } else if (std::strcmp(argv[k], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[k], "--verbose") == 0) {
      verbose = true;
    } else {
      return false;
    }
    *idx = k;
    return true;
  };
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 2 < argc) {
      host = argv[++i];
      port = std::atoi(argv[++i]);
    } else if (connection_flag(&i)) {
      continue;
    } else {
      break;
    }
  }
  if (i >= argc) return usage();
  if (unix_path.empty() && port < 0 && endpoints.empty()) return usage();
  const std::string mode = argv[i++];

  std::string session = "cli", policy = "amf", stats_format = "json";
  double budget_ms = 0.0, batch_window_ms = 0.0;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--session") == 0 && i + 1 < argc) {
      session = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy = argv[++i];
    } else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--batch-window-ms") == 0 &&
               i + 1 < argc) {
      batch_window_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--prometheus") == 0) {
      stats_format = "prometheus";
    } else if (connection_flag(&i)) {
      continue;
    } else {
      return usage();
    }
  }
  if (retry.max_attempts < 1) return usage();

  try {
    if (!unix_path.empty()) {
      svc::Endpoint ep;
      ep.unix_path = unix_path;
      endpoints.insert(endpoints.begin(), ep);
    } else if (port >= 0) {
      svc::Endpoint ep;
      ep.host = host;
      ep.port = port;
      endpoints.insert(endpoints.begin(), ep);
    }
    svc::Client client = svc::Client::connect_endpoints(endpoints, retry);
    client.set_tracing(trace);
    // Counters print even when the op throws below, so a failed run still
    // shows how much retrying it did.
    struct Verbose {
      svc::Client* client;
      bool on;
      ~Verbose() {
        if (!on) return;
        const svc::ClientStats& s = client->client_stats();
        std::cerr << "amf_client: calls=" << s.calls
                  << " retries=" << s.retries
                  << " reconnects=" << s.reconnects
                  << " timeouts=" << s.timeouts
                  << " failovers=" << s.failovers
                  << " backoff_ms=" << s.backoff_ms;
        if (client->last_trace() != 0)
          std::cerr << " last_trace=" << client->last_trace();
        std::cerr << "\n";
      }
    } verbose_guard{&client, verbose};
    if (mode == "solve")
      return run_solve(client, session, policy, budget_ms, batch_window_ms);
    if (mode == "raw") return run_raw(client);
    if (mode == "stats") {
      svc::Json response = client.stats(stats_format);
      if (stats_format == "prometheus") {
        std::cout << response.string_or("text", "");
      } else {
        const svc::Json* metrics = response.find("metrics");
        std::cout << (metrics != nullptr ? metrics->dump() : "{}") << "\n";
      }
      return 0;
    }
    if (mode == "drain") {
      client.drain();
      std::cout << "draining\n";
      return 0;
    }
    if (mode == "ping") {
      std::cout << (client.ping() ? "pong" : "no pong") << "\n";
      return 0;
    }
    if (mode == "promote") {
      svc::Json response = client.promote();
      std::cout << "role=" << response.string_or("role", "?")
                << " epoch=" << static_cast<long long>(
                       response.number_or("epoch", 0.0))
                << " promoted="
                << (response.bool_or("promoted", false) ? "true" : "false")
                << "\n";
      return 0;
    }
    return usage();
  } catch (const svc::SvcError& e) {
    std::cerr << "amf_client: [" << svc::to_string(e.code()) << "] "
              << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "amf_client: " << e.what() << "\n";
    return 1;
  }
}
