// amf_route — the session-sharding router daemon (DESIGN.md §16).
//
//   amf_route (--unix PATH | --tcp PORT) --shard ADDR [--shard ADDR ...]
//
// Listens on the amf_serve line-JSON protocol and partitions sessions
// across the named backend shards by a stable hash of the session name.
// Session requests and responses pass through byte-identically; `stats`
// aggregates across shards; the router-only `move_session` op performs
// a snapshot-based shard handoff. SIGTERM/SIGINT drain the router
// (the backend shards keep running; a `drain` op through the router
// drains them too).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "router/router.hpp"
#include "util/log.hpp"

namespace {

int usage(bool help = false) {
  (help ? std::cout : std::cerr)
      << "usage: amf_route (--unix PATH | --tcp PORT) --shard ADDR "
         "[--shard ADDR ...]\n"
         "                 [--backlog N] [--connect-timeout-ms T] "
         "[--read-timeout-ms T] [--log-level L]\n"
         "  --unix PATH            listen on a Unix-domain socket at PATH\n"
         "  --tcp PORT             listen on loopback TCP (0 = ephemeral; "
         "the bound port is printed)\n"
         "  --shard ADDR           a backend amf_serve endpoint "
         "(unix:PATH, HOST:PORT, or PORT);\n"
         "                         repeat once per shard — order defines "
         "shard indices\n"
         "  --backlog N            listen(2) backlog (0 = SOMAXCONN, the "
         "default)\n"
         "  --connect-timeout-ms T bound on each upstream connect "
         "(default 2000)\n"
         "  --read-timeout-ms T    bound on each upstream response wait "
         "(0 = block, the default)\n"
         "  --log-level L          structured log threshold: debug, info, "
         "warn (default), error, off\n";
  return help ? 0 : 2;
}

amf::router::Router* g_router = nullptr;

void on_signal(int) {
  if (g_router != nullptr) g_router->trigger_drain();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  router::RouterConfig config;
  config.tcp_port = -1;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--unix") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.unix_path = v;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.tcp_port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      try {
        config.shards.push_back(svc::parse_endpoint(v));
      } catch (const std::exception& e) {
        std::cerr << "amf_route: " << e.what() << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.backlog = std::atoi(v);
      if (config.backlog < 0) return usage();
    } else if (std::strcmp(argv[i], "--connect-timeout-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.connect_timeout_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--read-timeout-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.read_timeout_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      try {
        util::Logger::global().set_level(util::parse_log_level(v));
      } catch (const std::exception&) {
        return usage();
      }
    } else {
      return usage();
    }
  }
  if (config.unix_path.empty() && config.tcp_port < 0) return usage();
  if (config.shards.empty()) return usage();

  try {
    router::Router router(std::move(config));
    g_router = &router;
    struct sigaction sa {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    router.start();
    if (!router.unix_path().empty())
      std::cerr << "amf_route: listening on unix:" << router.unix_path()
                << " (" << router.shards() << " shard(s))\n";
    else
      std::cerr << "amf_route: listening on 127.0.0.1:" << router.tcp_port()
                << " (" << router.shards() << " shard(s))\n";
    router.wait_drained();
    g_router = nullptr;
    std::cerr << "amf_route: drained\n";
  } catch (const std::exception& e) {
    std::cerr << "amf_route: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
