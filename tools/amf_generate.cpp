// amf_generate — synthetic instance/trace generator for the CLI suite.
//
//   amf_generate problem [--jobs N] [--sites M] [--skew Z] [--seed S]
//                        [--demand-model uncapped|proportional]
//   amf_generate trace   [--jobs N] [--sites M] [--skew Z] [--seed S]
//                        [--load L]
//
// Writes the instance (AllocationProblem CSV) or trace (trace CSV) to
// stdout, in the formats read by amf_solve and accepted by
// workload::load_trace — completing the generate → solve → simulate
// pipeline from the shell.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "amf.hpp"

namespace {

int usage(bool help = false) {
  (help ? std::cout : std::cerr)
      << "usage: amf_generate problem|trace [--jobs N] [--sites M] "
         "[--resources R] [--skew Z] [--seed S] [--load L] "
         "[--demand-model uncapped|proportional]\n"
         "  --resources R  draw R-resource instances (vector capacities,\n"
         "                 Leontief job profiles); 1 = classic scalar\n";
  return help ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  if (argc < 2) return usage();
  std::string mode = argv[1];
  if (mode == "--help" || mode == "-h") return usage(true);
  if (mode != "problem" && mode != "trace") return usage();

  int jobs = 100, sites = 10, resources = 1;
  double skew = 1.0, load = 0.8;
  std::uint64_t seed = 42;
  auto demand_model = workload::DemandModel::kUncapped;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double v = 0.0;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && next(&v)) {
      jobs = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--sites") == 0 && next(&v)) {
      sites = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--resources") == 0 && next(&v)) {
      resources = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--skew") == 0 && next(&v)) {
      skew = v;
    } else if (std::strcmp(argv[i], "--load") == 0 && next(&v)) {
      load = v;
    } else if (std::strcmp(argv[i], "--seed") == 0 && next(&v)) {
      seed = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--demand-model") == 0 && i + 1 < argc) {
      std::string model = argv[++i];
      if (model == "uncapped")
        demand_model = workload::DemandModel::kUncapped;
      else if (model == "proportional")
        demand_model = workload::DemandModel::kProportionalToWork;
      else
        return usage();
    } else {
      return usage();
    }
  }

  try {
    auto cfg = workload::paper_default(skew, seed);
    cfg.jobs = jobs;
    cfg.sites = sites;
    cfg.sites_per_job_max = std::min(cfg.sites_per_job_max, sites);
    cfg.resources = resources;
    cfg.demand_model = demand_model;
    workload::Generator generator(cfg);
    if (mode == "problem") {
      generator.generate().save(std::cout);
    } else {
      auto trace = workload::generate_trace(generator, load, jobs);
      workload::save_trace(trace, std::cout);
    }
  } catch (const std::exception& e) {
    std::cerr << "amf_generate: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
