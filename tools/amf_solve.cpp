// amf_solve — command-line allocator.
//
//   amf_solve [--policy amf|eamf|psmf] [--addon] [--report] [--explain]
//             < problem.csv
//
// Reads an AllocationProblem in the library's CSV format (see
// AllocationProblem::save: a `jobs,sites,has_workloads` header, demand
// rows, capacity row, optional workload rows, weight row) from stdin and
// prints the allocation matrix as CSV to stdout. `--report` appends
// fairness/property diagnostics as '#' comment lines on stderr-free
// stdout, so the matrix remains machine-readable.
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "amf.hpp"
#include "util/csv.hpp"

namespace {

int usage(bool help = false) {
  (help ? std::cout : std::cerr)
      << "usage: amf_solve [--policy amf|eamf|psmf] [--addon] "
         "[--report] [--explain] < problem.csv\n"
         "  problem.csv: AllocationProblem CSV "
         "(header jobs,sites,has_workloads; demand rows; capacities; "
         "optional workloads; weights)\n";
  return help ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  std::string policy_name = "amf";
  bool use_addon = false, report = false, explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy_name = argv[++i];
    } else if (std::strcmp(argv[i], "--addon") == 0) {
      use_addon = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      return usage();
    }
  }

  std::unique_ptr<core::Allocator> policy;
  core::AmfAllocator* amf_for_trace = nullptr;
  if (policy_name == "amf") {
    auto amf = std::make_unique<core::AmfAllocator>();
    amf_for_trace = amf.get();
    policy = std::move(amf);
  } else if (policy_name == "eamf")
    policy = std::make_unique<core::EnhancedAmfAllocator>();
  else if (policy_name == "psmf")
    policy = std::make_unique<core::PerSiteMaxMin>();
  else
    return usage();

  try {
    auto problem = core::AllocationProblem::load(std::cin);
    core::SolveReport amf_report;
    auto allocation =
        amf_for_trace != nullptr
            ? amf_for_trace->allocate_with_report(problem, amf_report)
            : policy->allocate(problem);
    if (use_addon) {
      if (!problem.has_workloads()) {
        std::cerr << "amf_solve: --addon requires workloads in the input\n";
        return 1;
      }
      core::JctAddon addon;
      allocation = addon.optimize(problem, allocation);
    }

    // Allocation matrix, one row per job, plus the aggregate column.
    std::vector<std::string> header{"job"};
    for (int s = 0; s < problem.sites(); ++s)
      header.push_back("site" + std::to_string(s));
    header.push_back("aggregate");
    util::CsvWriter csv(std::cout, header);
    for (int j = 0; j < problem.jobs(); ++j) {
      std::vector<std::string> row{std::to_string(j)};
      for (int s = 0; s < problem.sites(); ++s)
        row.push_back(util::CsvWriter::format(allocation.share(j, s)));
      row.push_back(util::CsvWriter::format(allocation.aggregate(j)));
      csv.row(row);
    }

    if (report) {
      auto fairness = core::fairness_report(problem, allocation);
      std::cout << "# policy " << allocation.policy() << "\n"
                << "# jain " << fairness.jain << " min_max "
                << fairness.min_max << " utilization "
                << fairness.utilization << "\n"
                << "# pareto_efficient "
                << core::is_pareto_efficient(problem, allocation)
                << " envy_free " << core::is_envy_free(problem, allocation)
                << " sharing_incentive "
                << core::satisfies_sharing_incentive(problem, allocation)
                << "\n"
                << "# max_min_fair_aggregates "
                << core::is_max_min_fair(problem, allocation.aggregates())
                << "\n";
      if (problem.has_workloads()) {
        auto jct = core::jct_report(problem, allocation);
        std::cout << "# jct_mean " << jct.mean << " jct_p95 " << jct.p95
                  << " jct_unbounded " << jct.unbounded << "\n";
      }
    }

    if (explain) {
      if (amf_for_trace == nullptr) {
        std::cerr << "amf_solve: --explain is only available for "
                     "--policy amf\n";
        return 1;
      }
      const auto& trace = amf_report.trace;
      std::cout << "# explanation: freeze round and water level per job "
                   "(same round = same bottleneck)\n";
      for (int j = 0; j < problem.jobs(); ++j)
        std::cout << "# job " << j << " round "
                  << trace.freeze_round[static_cast<std::size_t>(j)]
                  << " level "
                  << trace.freeze_level[static_cast<std::size_t>(j)]
                  << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "amf_solve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
