// amf_simulate — command-line trace simulator.
//
//   amf_simulate [--policy amf|eamf|psmf] [--addon] [--jobs N]
//                [--sites M] [--skew Z] [--load L] [--seed S] [--batch]
//                [--faults] [--mtbf T] [--mttr T] [--loss F]
//                [--threads N] [--cold]
//
// Generates a synthetic arrival trace with the library's workload
// generator, executes it through the discrete-event simulator under the
// chosen policy, and prints one CSV row per job (arrival, completion,
// JCT, work) followed by '#' summary lines.
//
// With --faults, a seeded MTBF/MTTR fault schedule is injected into the
// trace (site outages and recoveries), the policy runs inside the
// RobustAllocator graceful-degradation chain, and the summary reports
// work lost, availability-weighted utilization, recovery latency and
// which fallback tier served the allocation events.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "amf.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace {

int usage() {
  std::cerr << "usage: amf_simulate [--policy amf|eamf|psmf] [--addon] "
               "[--jobs N] [--sites M] [--skew Z] [--load L] [--seed S] "
               "[--batch] [--faults] [--mtbf T] [--mttr T] [--loss F] "
               "[--threads N] [--cold]\n"
               "  --threads N  size of the shared worker pool "
               "(0 = hardware concurrency)\n"
               "  --cold       rebuild the allocation problem and flow "
               "network at every event\n"
               "               instead of the incremental delta pipeline "
               "(identical results)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  std::string policy_name = "amf";
  bool use_addon = false, batch = false, faults = false, cold = false;
  int jobs = 100, sites = 10, threads = 1;
  double skew = 1.0, load = 0.8;
  double mtbf = 200.0, mttr = 20.0, loss = 1.0;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy_name = argv[++i];
    } else if (std::strcmp(argv[i], "--addon") == 0) {
      use_addon = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      double v;
      if (!next(&v)) return usage();
      jobs = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--sites") == 0) {
      double v;
      if (!next(&v)) return usage();
      sites = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      if (!next(&skew)) return usage();
    } else if (std::strcmp(argv[i], "--load") == 0) {
      if (!next(&load)) return usage();
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--mtbf") == 0) {
      if (!next(&mtbf)) return usage();
    } else if (std::strcmp(argv[i], "--mttr") == 0) {
      if (!next(&mttr)) return usage();
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      if (!next(&loss)) return usage();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      double v;
      if (!next(&v)) return usage();
      seed = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      double v;
      if (!next(&v) || v < 0) return usage();
      threads = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--cold") == 0) {
      cold = true;
    } else {
      return usage();
    }
  }

  std::unique_ptr<core::Allocator> policy;
  if (policy_name == "amf")
    policy = std::make_unique<core::AmfAllocator>();
  else if (policy_name == "eamf")
    policy = std::make_unique<core::EnhancedAmfAllocator>();
  else if (policy_name == "psmf")
    policy = std::make_unique<core::PerSiteMaxMin>();
  else
    return usage();

  // Size the process-wide pool before anything touches it. The single
  // trace run here is serial either way; the flag exists so scripted
  // sweeps spawning this tool inherit a predictable thread budget.
  util::ThreadPool::set_shared_threads(static_cast<std::size_t>(threads));

  try {
    auto cfg = workload::paper_default(skew, seed);
    cfg.sites = sites;
    cfg.sites_per_job_max = std::min(cfg.sites_per_job_max, sites);
    workload::Generator generator(cfg);
    auto trace = workload::generate_trace(generator, load, jobs);
    if (batch)
      for (auto& j : trace.jobs) j.arrival = 0.0;
    if (faults) {
      workload::FaultInjectorConfig fault_cfg;
      fault_cfg.mtbf = mtbf;
      fault_cfg.mttr = mttr;
      fault_cfg.seed = seed + 0x5eed;
      workload::FaultInjector injector(fault_cfg);
      injector.inject(trace);
    }

    sim::SimulatorConfig sim_cfg;
    sim_cfg.use_jct_addon = use_addon;
    sim_cfg.loss_factor = loss;
    sim_cfg.incremental = !cold;
    // Under faults the allocator runs inside the graceful-degradation
    // chain: a solver corner case must never kill the whole simulation.
    core::RobustAllocator robust(*policy);
    const core::Allocator& active_policy =
        faults ? static_cast<const core::Allocator&>(robust) : *policy;
    sim::Simulator simulator(active_policy, sim_cfg);
    auto records = simulator.run(trace);

    util::CsvWriter csv(std::cout,
                        {"job", "arrival", "completion", "jct", "work"});
    std::vector<double> jct;
    jct.reserve(records.size());
    for (const auto& r : records) {
      csv.row_numeric({static_cast<double>(r.id), r.arrival, r.completion,
                       r.jct(), r.total_work});
      jct.push_back(r.jct());
    }
    if (!jct.empty()) {
      double mean = 0.0;
      for (double t : jct) mean += t;
      mean /= static_cast<double>(jct.size());
      std::cout << "# policy " << policy_name << (use_addon ? "+addon" : "")
                << " jobs " << jobs << " load " << load << " skew " << skew
                << "\n"
                << "# mean_jct " << mean << " p95_jct "
                << util::percentile(jct, 95.0) << " makespan "
                << simulator.stats().makespan << " events "
                << simulator.stats().events << " avg_utilization "
                << simulator.stats().avg_utilization << "\n";
      if (faults) {
        const auto& st = simulator.stats();
        std::cout << "# faults mtbf " << mtbf << " mttr " << mttr << " loss "
                  << loss << " fault_events " << st.fault_events
                  << " work_lost " << st.work_lost << " recoveries "
                  << st.recoveries << " mean_recovery_latency "
                  << st.mean_recovery_latency << " avail_utilization "
                  << st.avail_utilization << "\n";
        const auto& fb = robust.fallback_stats();
        std::cout << "# fallback";
        for (int t = 0; t < core::kFallbackTierCount; ++t)
          std::cout << ' '
                    << core::to_string(static_cast<core::FallbackTier>(t))
                    << ' ' << fb.served[static_cast<std::size_t>(t)];
        std::cout << " degraded_calls " << fb.degraded_calls() << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "amf_simulate: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
