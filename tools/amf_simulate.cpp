// amf_simulate — command-line trace simulator.
//
//   amf_simulate [--policy amf|eamf|psmf] [--addon] [--jobs N]
//                [--sites M] [--resources R] [--skew Z] [--load L]
//                [--seed S] [--batch]
//                [--faults] [--mtbf T] [--mttr T] [--loss F]
//                [--budget-ms B] [--threads N] [--cold] [--trace-out F]
//                [--metrics-out F] [--prom-out F]
//
// Generates a synthetic arrival trace with the library's workload
// generator, executes it through the discrete-event simulator under the
// chosen policy, and prints one CSV row per job (arrival, completion,
// JCT, work) followed by '#' summary lines.
//
// With --faults, a seeded MTBF/MTTR fault schedule is injected into the
// trace (site outages and recoveries), the policy runs inside the
// RobustAllocator graceful-degradation chain, and the summary reports
// work lost, availability-weighted utilization, recovery latency and
// which fallback tier served the allocation events.
//
// With --budget-ms B, every reallocation event runs under a B-millisecond
// wall-clock budget: the policy is wrapped in the RobustAllocator chain
// (which splits the budget across its tiers and salvages interrupted
// solves) and the engine installs the same deadline ambiently around each
// allocate call. A '# deadline' summary line reports how many events
// overran the budget and the worst salvage fairness gap.
//
// Observability outputs: --trace-out enables scoped-span tracing and
// writes a Chrome trace-event JSON (open in Perfetto / chrome://tracing);
// --metrics-out writes the metric registry snapshot as JSON, including a
// per-event series (time, solver latency, warm flag, serving tier);
// --prom-out writes the same snapshot in Prometheus text format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include "amf.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace {

int usage(bool help = false) {
  (help ? std::cout : std::cerr)
      << "usage: amf_simulate [--policy amf|eamf|psmf] [--addon] "
               "[--jobs N] [--sites M] [--resources R] [--skew Z] "
               "[--load L] [--seed S] "
               "[--batch] [--faults] [--mtbf T] [--mttr T] [--loss F] "
               "[--budget-ms B] [--threads N] [--cold] [--trace-out F] "
               "[--metrics-out F] [--prom-out F]\n"
               "  --budget-ms B  per-event wall-clock budget (ms): wraps "
               "the policy in the\n"
               "               robust chain and bounds every allocate call "
               "(0 = unbudgeted)\n"
               "  --threads N  size of the shared worker pool "
               "(0 = hardware concurrency)\n"
               "  --cold       rebuild the allocation problem and flow "
               "network at every event\n"
               "               instead of the incremental delta pipeline "
               "(identical results)\n"
               "  --trace-out F    enable span tracing, write Chrome "
               "trace-event JSON to F\n"
               "  --metrics-out F  write the metric registry snapshot "
               "(JSON, with per-event series) to F\n"
               "  --prom-out F     write the snapshot in Prometheus text "
               "format to F\n";
  return help ? 0 : 2;
}

/// The per-event series spliced into the metrics JSON: one object per
/// reallocation point, in event order.
std::string event_series_json(const std::vector<amf::sim::EventSample>& s) {
  std::string out = "\"events\": [";
  char buf[64];
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"index\": ";
    out += std::to_string(i);
    std::snprintf(buf, sizeof buf, ", \"time\": %.17g", s[i].time);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"alloc_ms\": %.6g", s[i].alloc_ms);
    out += buf;
    out += ", \"warm\": ";
    out += s[i].warm ? "true" : "false";
    out += ", \"tier\": ";
    out += std::to_string(s[i].tier);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  std::string policy_name = "amf";
  bool use_addon = false, batch = false, faults = false, cold = false;
  int jobs = 100, sites = 10, resources = 1, threads = 1;
  double skew = 1.0, load = 0.8;
  double mtbf = 200.0, mttr = 20.0, loss = 1.0, budget_ms = 0.0;
  std::uint64_t seed = 42;
  std::string trace_out, metrics_out, prom_out;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy_name = argv[++i];
    } else if (std::strcmp(argv[i], "--addon") == 0) {
      use_addon = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      double v;
      if (!next(&v)) return usage();
      jobs = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--sites") == 0) {
      double v;
      if (!next(&v)) return usage();
      sites = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--resources") == 0) {
      double v;
      if (!next(&v)) return usage();
      resources = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      if (!next(&skew)) return usage();
    } else if (std::strcmp(argv[i], "--load") == 0) {
      if (!next(&load)) return usage();
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--mtbf") == 0) {
      if (!next(&mtbf)) return usage();
    } else if (std::strcmp(argv[i], "--mttr") == 0) {
      if (!next(&mttr)) return usage();
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      if (!next(&loss)) return usage();
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      if (!next(&budget_ms) || !(budget_ms >= 0.0)) return usage();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      double v;
      if (!next(&v)) return usage();
      seed = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      double v;
      if (!next(&v) || v < 0) return usage();
      threads = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--cold") == 0) {
      cold = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--prom-out") == 0 && i + 1 < argc) {
      prom_out = argv[++i];
    } else {
      return usage();
    }
  }

  std::unique_ptr<core::Allocator> policy;
  if (policy_name == "amf")
    policy = std::make_unique<core::AmfAllocator>();
  else if (policy_name == "eamf")
    policy = std::make_unique<core::EnhancedAmfAllocator>();
  else if (policy_name == "psmf")
    policy = std::make_unique<core::PerSiteMaxMin>();
  else
    return usage();

  // Size the process-wide pool before anything touches it. The single
  // trace run here is serial either way; the flag exists so scripted
  // sweeps spawning this tool inherit a predictable thread budget.
  util::ThreadPool::set_shared_threads(static_cast<std::size_t>(threads));

  try {
    auto cfg = workload::paper_default(skew, seed);
    cfg.sites = sites;
    cfg.sites_per_job_max = std::min(cfg.sites_per_job_max, sites);
    cfg.resources = resources;
    workload::Generator generator(cfg);
    auto trace = workload::generate_trace(generator, load, jobs);
    if (batch)
      for (auto& j : trace.jobs) j.arrival = 0.0;
    if (faults) {
      workload::FaultInjectorConfig fault_cfg;
      fault_cfg.mtbf = mtbf;
      fault_cfg.mttr = mttr;
      fault_cfg.seed = seed + 0x5eed;
      workload::FaultInjector injector(fault_cfg);
      injector.inject(trace);
    }

    sim::SimulatorConfig sim_cfg;
    sim_cfg.use_jct_addon = use_addon;
    sim_cfg.loss_factor = loss;
    sim_cfg.incremental = !cold;
    sim_cfg.event_budget_ms = budget_ms;
    // Under faults or a time budget the allocator runs inside the
    // graceful-degradation chain: a solver corner case (or an interrupted
    // solve) must never kill the whole simulation.
    core::RobustConfig robust_cfg;
    robust_cfg.time_budget_ms = budget_ms;
    core::RobustAllocator robust(*policy, robust_cfg);
    const core::Allocator& active_policy =
        faults || budget_ms > 0.0 ? static_cast<const core::Allocator&>(robust)
                                  : *policy;
    sim::Simulator simulator(active_policy, sim_cfg);
    if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);
    auto records = simulator.run(trace);

    if (!trace_out.empty()) {
      obs::Tracer::global().set_enabled(false);
      auto spans = obs::Tracer::global().drain();
      if (!obs::write_text_file(trace_out, obs::to_chrome_trace(spans))) {
        std::cerr << "amf_simulate: cannot write " << trace_out << "\n";
        return 1;
      }
    }
    if (!metrics_out.empty() || !prom_out.empty()) {
      const auto snap = obs::Registry::global().snapshot();
      if (!metrics_out.empty() &&
          !obs::write_text_file(
              metrics_out,
              obs::to_metrics_json(
                  snap, event_series_json(simulator.event_series())))) {
        std::cerr << "amf_simulate: cannot write " << metrics_out << "\n";
        return 1;
      }
      if (!prom_out.empty() &&
          !obs::write_text_file(prom_out, obs::to_prometheus_text(snap))) {
        std::cerr << "amf_simulate: cannot write " << prom_out << "\n";
        return 1;
      }
    }

    util::CsvWriter csv(std::cout,
                        {"job", "arrival", "completion", "jct", "work"});
    std::vector<double> jct;
    jct.reserve(records.size());
    for (const auto& r : records) {
      csv.row_numeric({static_cast<double>(r.id), r.arrival, r.completion,
                       r.jct(), r.total_work});
      jct.push_back(r.jct());
    }
    if (!jct.empty()) {
      double mean = 0.0;
      for (double t : jct) mean += t;
      mean /= static_cast<double>(jct.size());
      std::cout << "# policy " << policy_name << (use_addon ? "+addon" : "")
                << " jobs " << jobs << " load " << load << " skew " << skew;
      // Only printed off the scalar default so R=1 output stays
      // byte-identical to the pre-lift tool.
      if (resources > 1) std::cout << " resources " << resources;
      std::cout << "\n"
                << "# mean_jct " << mean << " p95_jct "
                << util::percentile(jct, 95.0) << " makespan "
                << simulator.stats().makespan << " events "
                << simulator.stats().events << " avg_utilization "
                << simulator.stats().avg_utilization << "\n";
      // Wall-clock solver time would break the byte-identical determinism
      // contract of the default output, so the obs summary only appears
      // when an observability export was asked for.
      if (!trace_out.empty() || !metrics_out.empty() || !prom_out.empty()) {
        std::cout << "# obs alloc_ms " << simulator.stats().alloc_ms
                  << " spans " << simulator.stats().spans_recorded
                  << " dropped " << simulator.stats().spans_dropped << "\n";
      }
      if (faults) {
        const auto& st = simulator.stats();
        std::cout << "# faults mtbf " << mtbf << " mttr " << mttr << " loss "
                  << loss << " fault_events " << st.fault_events
                  << " work_lost " << st.work_lost << " recoveries "
                  << st.recoveries << " mean_recovery_latency "
                  << st.mean_recovery_latency << " avail_utilization "
                  << st.avail_utilization << "\n";
        std::cout << "# fallback " << robust.fallback_stats().summary()
                  << "\n";
      }
      // Wall-clock budgets make the run timing-dependent anyway, so this
      // line never appears in the byte-identical default output.
      if (budget_ms > 0.0) {
        const auto ds = robust.deadline_stats();
        std::cout << "# deadline budget_ms " << budget_ms
                  << " events_over_budget "
                  << simulator.stats().events_over_budget
                  << " deadline_events " << ds.deadline_events
                  << " worst_salvage_gap " << ds.worst_salvage_gap << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "amf_simulate: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
