// amf_serve — the allocation service daemon.
//
//   amf_serve (--unix PATH | --tcp PORT) [options]
//
// Listens on a Unix-domain socket or loopback TCP port and speaks the
// line-delimited JSON protocol of DESIGN.md §11: named sessions hold one
// allocation problem each, mutated through delta requests and re-solved
// incrementally, with request batching and typed admission control.
// SIGTERM/SIGINT trigger a graceful drain: queued work is served, the
// session snapshot is written (--snapshot-out), new work is refused.
//
// With --journal DIR every session keeps a write-ahead log in DIR; after
// a crash (kill -9, power loss) the same flag replays the logs on
// startup and the recovered sessions are bit-identical to the uncrashed
// server's ACKed state (see DESIGN.md §12).
//
// High availability (DESIGN.md §15): --replicate-to streams every journal
// record to a warm standby started with --standby; SIGUSR1 (or the
// `promote` op) promotes the standby to primary under a higher epoch.
#include <sys/stat.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "svc/http.hpp"
#include "svc/server.hpp"
#include "util/log.hpp"

namespace {

int usage(bool help = false) {
  (help ? std::cout : std::cerr)
      << "usage: amf_serve (--unix PATH | --tcp PORT) "
         "[--batch-window-ms W] [--max-queue-depth N]\n"
         "                 [--max-queue-age-ms A] [--default-budget-ms B] "
         "[--policy amf|eamf|psmf]\n"
         "                 [--snapshot-out F] [--restore F] [--journal DIR] "
         "[--fsync always|batch|off]\n"
         "                 [--dedup-window N] [--journal-compact-every N] "
         "[--http ADDR] [--log-level L]\n"
         "                 [--slow-solve-ms T] [--slo-window-s W] "
         "[--slo-p99-ms T] [--slo-budget B]\n"
         "                 [--replicate-to ADDR] [--repl-ack] "
         "[--repl-ack-timeout-ms T] [--standby PORT]\n"
         "                 [--io-model epoll|threads] [--io-threads N] "
         "[--executor 0|1]\n"
         "                 [--executor-threads N] [--backlog N]\n"
         "  --unix PATH          listen on a Unix-domain socket at PATH\n"
         "  --tcp PORT           listen on loopback TCP (0 = ephemeral; "
         "the bound port is printed)\n"
         "  --batch-window-ms W  per-session request coalescing window "
         "(default 0 = serve immediately)\n"
         "  --max-queue-depth N  bounded per-session queue; beyond it "
         "requests are shed\n"
         "                       with typed `overloaded` errors "
         "(default 256)\n"
         "  --max-queue-age-ms A shed solves that waited longer than A "
         "before serving (0 = off)\n"
         "  --default-budget-ms B  time budget for solves that carry "
         "none (0 = unbudgeted)\n"
         "  --policy P           default allocation policy for new "
         "sessions (default amf)\n"
         "  --snapshot-out F     write the sessions snapshot to F on "
         "graceful drain\n"
         "  --restore F          reload sessions from a drain snapshot "
         "before listening\n"
         "  --journal DIR        write-ahead journal per session in DIR "
         "(created if missing);\n"
         "                       crashed sessions are replayed from it on "
         "startup\n"
         "  --fsync P            journal durability: always (fsync per "
         "ACK), batch (per\n"
         "                       batch window, the default), off\n"
         "  --dedup-window N     per-session retried-rid window "
         "(default 1024; 0 = off)\n"
         "  --journal-compact-every N  compact a quiescent session's "
         "journal once it\n"
         "                       holds N records (default 4096; 0 = "
         "never)\n"
         "  --http ADDR          serve GET /metrics, /healthz, /tracez, "
         "/slo on loopback\n"
         "                       HTTP (ADDR = port, :port, or "
         "127.0.0.1:port; 0 = ephemeral,\n"
         "                       the bound port is printed)\n"
         "  --log-level L        structured log threshold: debug, info, "
         "warn (default),\n"
         "                       error, off — JSON lines on stderr\n"
         "  --slow-solve-ms T    warn-log solves slower than T ms "
         "(0 = off)\n"
         "  --slo-window-s W     rolling SLO window width in seconds "
         "(default 10)\n"
         "  --slo-p99-ms T       turnaround p99 target backing the burn "
         "rate (default 50)\n"
         "  --slo-budget B       error budget as a fraction of requests "
         "(default 0.01)\n"
         "  --replicate-to ADDR  stream journal records to a warm standby "
         "at host:port or\n"
         "                       port (loopback); requires --journal\n"
         "  --repl-ack           withhold delta ACKs until the standby "
         "confirms the append\n"
         "                       (default: async replication)\n"
         "  --repl-ack-timeout-ms T  bound on each standby confirmation "
         "wait (default 5000)\n"
         "  --standby PORT       run as a warm standby: receive a "
         "primary's replication\n"
         "                       stream on loopback PORT (0 = ephemeral; "
         "the bound port is\n"
         "                       printed). Session work is refused with "
         "`not_primary` until\n"
         "                       SIGUSR1 or the `promote` op promotes "
         "this server\n"
         "  --io-model M         connection layer: epoll (event-driven "
         "reactors, the\n"
         "                       default) or threads (legacy "
         "thread-per-connection)\n"
         "  --io-threads N       epoll reactor threads (0 = auto, "
         "min(4, cores))\n"
         "  --executor 0|1       shared work-stealing session executor "
         "(default 1;\n"
         "                       0 = legacy worker thread per session)\n"
         "  --executor-threads N executor pool size (0 = auto, "
         "max(2, cores))\n"
         "  --backlog N          listen(2) backlog (0 = SOMAXCONN, the "
         "default)\n";
  return help ? 0 : 2;
}

amf::svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->trigger_drain();
}

void on_promote(int) {
  if (g_server != nullptr) g_server->trigger_promote();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amf;
  svc::ServerConfig config;
  config.tcp_port = -1;
  std::string restore;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return usage(true);
    } else if (std::strcmp(argv[i], "--unix") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.unix_path = v;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.tcp_port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--batch-window-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.batch_window_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--max-queue-depth") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.max_queue_depth =
          static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--max-queue-age-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.max_queue_age_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--default-budget-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.default_budget_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.policy = v;
    } else if (std::strcmp(argv[i], "--snapshot-out") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.snapshot_path = v;
    } else if (std::strcmp(argv[i], "--restore") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      restore = v;
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.journal_dir = v;
    } else if (std::strcmp(argv[i], "--fsync") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      try {
        config.fsync = svc::parse_fsync_policy(v);
      } catch (const std::exception&) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--dedup-window") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.dedup_window = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--journal-compact-every") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.journal_compact_every = std::atoll(v);
    } else if (std::strcmp(argv[i], "--http") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      try {
        config.http_port = svc::parse_http_addr(v);
      } catch (const std::exception& e) {
        std::cerr << "amf_serve: " << e.what() << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      try {
        util::Logger::global().set_level(util::parse_log_level(v));
      } catch (const std::exception&) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--slow-solve-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.session.slow_solve_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--slo-window-s") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.slo.window_s = std::atof(v);
    } else if (std::strcmp(argv[i], "--slo-p99-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.slo.p99_target_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--slo-budget") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.slo.error_budget = std::atof(v);
    } else if (std::strcmp(argv[i], "--replicate-to") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.replicate_to = v;
    } else if (std::strcmp(argv[i], "--repl-ack") == 0) {
      config.repl_ack = true;
    } else if (std::strcmp(argv[i], "--repl-ack-timeout-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.repl_ack_timeout_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--io-model") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "epoll") == 0)
        config.io_model = svc::IoModel::kEpoll;
      else if (std::strcmp(v, "threads") == 0)
        config.io_model = svc::IoModel::kThreads;
      else
        return usage();
    } else if (std::strcmp(argv[i], "--io-threads") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.io_threads = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--executor") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.executor = std::atoi(v) != 0;
    } else if (std::strcmp(argv[i], "--executor-threads") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.executor_threads = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.backlog = std::atoi(v);
      if (config.backlog < 0) return usage();
    } else if (std::strcmp(argv[i], "--standby") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      config.standby_port = std::atoi(v);
      if (config.standby_port < 0) return usage();
    } else {
      return usage();
    }
  }
  if (config.unix_path.empty() && config.tcp_port < 0) return usage();
  if (config.session.batch_window_ms < 0.0 ||
      config.session.max_queue_age_ms < 0.0 ||
      config.session.default_budget_ms < 0.0 ||
      config.session.max_queue_depth < 1)
    return usage();

  try {
    const std::string journal_dir = config.journal_dir;
    if (!journal_dir.empty() && ::mkdir(journal_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      std::cerr << "amf_serve: cannot create journal dir " << journal_dir
                << ": " << std::strerror(errno) << "\n";
      return 1;
    }
    svc::Server server(std::move(config));
    if (!restore.empty()) server.restore_from_file(restore);
    if (!journal_dir.empty()) {
      const svc::RecoveryReport report = server.recover_from_journal();
      for (const std::string& warning : report.warnings)
        std::cerr << "amf_serve: journal: " << warning << "\n";
      if (report.sessions > 0)
        std::cerr << "amf_serve: recovered " << report.sessions
                  << " session(s), " << report.deltas
                  << " journaled delta(s)\n";
    }
    g_server = &server;
    struct sigaction sa {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    struct sigaction sp {};
    sp.sa_handler = on_promote;
    sigaction(SIGUSR1, &sp, nullptr);
    server.start();
    if (!server.unix_path().empty())
      std::cerr << "amf_serve: listening on unix:" << server.unix_path()
                << "\n";
    else
      std::cerr << "amf_serve: listening on 127.0.0.1:" << server.tcp_port()
                << "\n";
    if (server.http_port() >= 0)
      std::cerr << "amf_serve: http on 127.0.0.1:" << server.http_port()
                << "\n";
    if (server.repl_port() >= 0)
      std::cerr << "amf_serve: standby repl on 127.0.0.1:"
                << server.repl_port() << "\n";
    server.wait_drained();
    g_server = nullptr;
    std::cerr << "amf_serve: drained\n";
  } catch (const std::exception& e) {
    std::cerr << "amf_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
