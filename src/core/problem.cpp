#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace amf::core {

namespace {

double row_max(const std::vector<double>& row) {
  double g = 0.0;
  for (double v : row) g = v > g ? v : g;
  return g;
}

}  // namespace

AllocationProblem::AllocationProblem(Matrix demands,
                                     std::vector<double> capacities,
                                     Matrix workloads,
                                     std::vector<double> weights)
    : demands_(std::move(demands)),
      capacities_(std::move(capacities)),
      workloads_(std::move(workloads)),
      weights_(std::move(weights)) {
  if (weights_.empty()) weights_.assign(demands_.size(), 1.0);
  validate();
}

AllocationProblem AllocationProblem::multi(Matrix demands,
                                           Matrix capacity_matrix,
                                           Matrix profiles, Matrix workloads,
                                           std::vector<double> weights) {
  AllocationProblem p;
  p.demands_ = std::move(demands);
  p.workloads_ = std::move(workloads);
  p.weights_ = std::move(weights);
  p.capacity_matrix_ = std::move(capacity_matrix);
  p.profiles_ = std::move(profiles);
  AMF_REQUIRE(!p.capacity_matrix_.empty(), "problem needs at least one site");
  AMF_REQUIRE(!p.capacity_matrix_.front().empty(),
              "capacity rows need at least one resource");
  if (p.profiles_.empty())
    p.profiles_.assign(
        p.demands_.size(),
        std::vector<double>(p.capacity_matrix_.front().size(), 1.0));
  if (p.weights_.empty()) p.weights_.assign(p.demands_.size(), 1.0);
  p.validate();
  p.rebuild_effective();
  return p;
}

void AllocationProblem::validate() const {
  if (multi_resource()) {
    const auto n = demands_.size();
    const auto m = capacity_matrix_.size();
    const auto r = capacity_matrix_.front().size();
    for (std::size_t s = 0; s < m; ++s) {
      AMF_REQUIRE(capacity_matrix_[s].size() == r,
                  "ragged capacity matrix (row " + std::to_string(s) + ")");
      for (double c : capacity_matrix_[s])
        AMF_REQUIRE(c >= 0.0 && std::isfinite(c),
                    "capacities must be finite, >= 0");
    }
    AMF_REQUIRE(profiles_.size() == n, "profile matrix height != job count");
    for (std::size_t j = 0; j < n; ++j) {
      AMF_REQUIRE(profiles_[j].size() == r,
                  "profile row width != resource count (job " +
                      std::to_string(j) + ")");
      bool any = false;
      for (double p : profiles_[j]) {
        AMF_REQUIRE(p >= 0.0 && std::isfinite(p),
                    "profiles must be finite, >= 0");
        any = any || p > 0.0;
      }
      AMF_REQUIRE(any, "each job profile needs a positive entry (job " +
                           std::to_string(j) + ")");
    }
    for (const auto& row : demands_) {
      AMF_REQUIRE(row.size() == m, "demand matrix width != site count");
      for (double d : row)
        AMF_REQUIRE(d >= 0.0 && std::isfinite(d),
                    "demands must be finite, >= 0");
    }
    if (!workloads_.empty()) {
      AMF_REQUIRE(workloads_.size() == n, "workload matrix height != job count");
      for (std::size_t j = 0; j < n; ++j) {
        AMF_REQUIRE(workloads_[j].size() == m,
                    "workload matrix width != site count");
        for (std::size_t s = 0; s < m; ++s) {
          double w = workloads_[j][s];
          AMF_REQUIRE(w >= 0.0 && std::isfinite(w),
                      "workloads must be finite, >= 0");
          AMF_REQUIRE(w == 0.0 || demands_[j][s] > 0.0,
                      "positive workload requires positive demand cap");
        }
      }
    }
    AMF_REQUIRE(weights_.size() == n, "weight vector length != job count");
    for (double w : weights_)
      AMF_REQUIRE(w > 0.0 && std::isfinite(w), "weights must be finite, > 0");
    return;
  }
  AMF_REQUIRE(!capacities_.empty(), "problem needs at least one site");
  const auto n = demands_.size();
  const auto m = capacities_.size();
  for (double c : capacities_)
    AMF_REQUIRE(c >= 0.0 && std::isfinite(c), "capacities must be finite, >= 0");
  for (const auto& row : demands_) {
    AMF_REQUIRE(row.size() == m, "demand matrix width != site count");
    for (double d : row)
      AMF_REQUIRE(d >= 0.0 && std::isfinite(d), "demands must be finite, >= 0");
  }
  if (!workloads_.empty()) {
    AMF_REQUIRE(workloads_.size() == n, "workload matrix height != job count");
    for (std::size_t j = 0; j < n; ++j) {
      AMF_REQUIRE(workloads_[j].size() == m,
                  "workload matrix width != site count");
      for (std::size_t s = 0; s < m; ++s) {
        double w = workloads_[j][s];
        AMF_REQUIRE(w >= 0.0 && std::isfinite(w),
                    "workloads must be finite, >= 0");
        AMF_REQUIRE(w == 0.0 || demands_[j][s] > 0.0,
                    "positive workload requires positive demand cap");
      }
    }
  }
  AMF_REQUIRE(weights_.size() == n, "weight vector length != job count");
  for (double w : weights_)
    AMF_REQUIRE(w > 0.0 && std::isfinite(w), "weights must be finite, > 0");
}

void AllocationProblem::rebuild_effective() {
  const auto n = demands_.size();
  const auto m = capacity_matrix_.size();
  capacities_.resize(m);
  for (std::size_t s = 0; s < m; ++s)
    capacities_[s] = flow::binding_min(capacity_matrix_[s]);
  gammas_.resize(n);
  eff_demands_.resize(n);
  eff_workloads_.resize(workloads_.size());
  for (std::size_t j = 0; j < n; ++j) refresh_job_effective(j);
}

void AllocationProblem::refresh_job_effective(std::size_t job) {
  const double g = row_max(profiles_[job]);
  gammas_[job] = g;
  const auto& d = demands_[job];
  auto& ed = eff_demands_[job];
  ed.resize(d.size());
  for (std::size_t s = 0; s < d.size(); ++s) ed[s] = d[s] * g;
  if (!workloads_.empty()) {
    const auto& w = workloads_[job];
    auto& ew = eff_workloads_[job];
    ew.resize(w.size());
    for (std::size_t s = 0; s < w.size(); ++s) ew[s] = w[s] * g;
  }
}

double AllocationProblem::demand(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return demands()[static_cast<std::size_t>(job)]
                  [static_cast<std::size_t>(site)];
}

double AllocationProblem::workload(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  if (workloads_.empty()) return 0.0;
  return workloads()[static_cast<std::size_t>(job)]
                    [static_cast<std::size_t>(site)];
}

double AllocationProblem::task_demand(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return demands_[static_cast<std::size_t>(job)]
                 [static_cast<std::size_t>(site)];
}

double AllocationProblem::task_workload(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  if (workloads_.empty()) return 0.0;
  return workloads_[static_cast<std::size_t>(job)]
                   [static_cast<std::size_t>(site)];
}

double AllocationProblem::capacity(int site) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return capacities_[static_cast<std::size_t>(site)];
}

double AllocationProblem::capacity(int site, int resource) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  if (!multi_resource()) return capacities_[static_cast<std::size_t>(site)];
  return capacity_matrix_[static_cast<std::size_t>(site)]
                         [static_cast<std::size_t>(resource)];
}

double AllocationProblem::profile(int job, int resource) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  if (!multi_resource()) return 1.0;
  return profiles_[static_cast<std::size_t>(job)]
                  [static_cast<std::size_t>(resource)];
}

double AllocationProblem::gamma(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  if (!multi_resource()) return 1.0;
  return gammas_[static_cast<std::size_t>(job)];
}

double AllocationProblem::weight(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  return weights_[static_cast<std::size_t>(job)];
}

double AllocationProblem::solo_ceiling(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  double total = 0.0;
  for (int s = 0; s < sites(); ++s)
    total += std::min(demand(job, s), capacity(s));
  return total;
}

double AllocationProblem::total_work(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  if (workloads_.empty()) return 0.0;
  const auto& row = workloads()[static_cast<std::size_t>(job)];
  return std::accumulate(row.begin(), row.end(), 0.0);
}

double AllocationProblem::total_capacity() const {
  return std::accumulate(capacities_.begin(), capacities_.end(), 0.0);
}

double AllocationProblem::scale() const {
  double s = 1.0;
  for (double c : capacities_) s = std::max(s, c);
  for (const auto& row : demands())
    for (double d : row) s = std::max(s, d);
  return s;
}

double AllocationProblem::equal_split_share(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  double weight_total =
      std::accumulate(weights_.begin(), weights_.end(), 0.0);
  double share = 0.0;
  for (int s = 0; s < sites(); ++s)
    share += std::min(demand(job, s),
                      capacity(s) * weight(job) / weight_total);
  return share;
}

AllocationProblem AllocationProblem::with_reported_demands(
    int job, const std::vector<double>& reported) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(static_cast<int>(reported.size()) == sites(),
              "reported demand vector length != site count");
  Matrix d = demands_;
  d[static_cast<std::size_t>(job)] = reported;
  // Workloads describe true work; a misreport does not change them, but a
  // reported zero demand where true work exists would fail validation, so
  // the probe copy drops workload information.
  if (multi_resource())
    return AllocationProblem::multi(std::move(d), capacity_matrix_, profiles_,
                                    {}, weights_);
  return AllocationProblem(std::move(d), capacities_, {}, weights_);
}

AllocationProblem AllocationProblem::subset(
    const std::vector<int>& job_indices) const {
  Matrix d, w, p;
  std::vector<double> wt;
  d.reserve(job_indices.size());
  wt.reserve(job_indices.size());
  for (int j : job_indices) {
    AMF_REQUIRE(j >= 0 && j < jobs(), "job index out of range");
    d.push_back(demands_[static_cast<std::size_t>(j)]);
    if (!workloads_.empty())
      w.push_back(workloads_[static_cast<std::size_t>(j)]);
    if (multi_resource()) p.push_back(profiles_[static_cast<std::size_t>(j)]);
    wt.push_back(weights_[static_cast<std::size_t>(j)]);
  }
  if (multi_resource())
    return AllocationProblem::multi(std::move(d), capacity_matrix_,
                                    std::move(p), std::move(w), std::move(wt));
  return AllocationProblem(std::move(d), capacities_, std::move(w),
                           std::move(wt));
}

ProblemDelta ProblemDelta::job_arrived(std::vector<double> demands,
                                       std::vector<double> workloads,
                                       double weight,
                                       std::vector<double> ceiling,
                                       std::vector<double> profile) {
  ProblemDelta d;
  d.kind = Kind::kJobArrived;
  d.demand_row = std::move(demands);
  d.workload_row = std::move(workloads);
  d.demand_ceiling = std::move(ceiling);
  d.profile_row = std::move(profile);
  d.weight = weight;
  return d;
}

ProblemDelta ProblemDelta::job_departed(int job) {
  ProblemDelta d;
  d.kind = Kind::kJobDeparted;
  d.job = job;
  return d;
}

ProblemDelta ProblemDelta::site_capacity(int site, double value) {
  ProblemDelta d;
  d.kind = Kind::kSiteCapacity;
  d.site = site;
  d.value = value;
  return d;
}

ProblemDelta ProblemDelta::demand_set(int job, int site, double value) {
  ProblemDelta d;
  d.kind = Kind::kDemandSet;
  d.job = job;
  d.site = site;
  d.value = value;
  return d;
}

ProblemDelta ProblemDelta::workload_set(int job, int site, double value) {
  ProblemDelta d;
  d.kind = Kind::kWorkloadSet;
  d.job = job;
  d.site = site;
  d.value = value;
  return d;
}

ProblemDelta ProblemDelta::set_capacity_vec(int site,
                                            std::vector<double> row) {
  ProblemDelta d;
  d.kind = Kind::kCapacityVec;
  d.site = site;
  d.capacity_row = std::move(row);
  return d;
}

ProblemDelta ProblemDelta::set_profile(int job, std::vector<double> row) {
  ProblemDelta d;
  d.kind = Kind::kProfileSet;
  d.job = job;
  d.profile_row = std::move(row);
  return d;
}

AllocationProblem AllocationProblem::apply(const ProblemDelta& delta) const& {
  AllocationProblem copy = *this;
  return std::move(copy).apply(delta);
}

AllocationProblem AllocationProblem::apply(const ProblemDelta& delta) && {
  // The instance was valid on entry; each branch re-validates exactly the
  // entries it touches, so the result is valid without an O(n·m) pass.
  const auto m = capacities_.size();
  switch (delta.kind) {
    case ProblemDelta::Kind::kJobArrived: {
      AMF_REQUIRE(delta.demand_row.size() == m,
                  "delta demand row width != site count");
      for (double d : delta.demand_row)
        AMF_REQUIRE(d >= 0.0 && std::isfinite(d),
                    "demands must be finite, >= 0");
      AMF_REQUIRE(delta.weight > 0.0 && std::isfinite(delta.weight),
                  "weights must be finite, > 0");
      const bool track_work = !workloads_.empty() || demands_.empty();
      if (!delta.workload_row.empty()) {
        AMF_REQUIRE(delta.workload_row.size() == m,
                    "delta workload row width != site count");
        AMF_REQUIRE(track_work,
                    "workload row for a problem without workloads");
        for (std::size_t s = 0; s < m; ++s) {
          double w = delta.workload_row[s];
          AMF_REQUIRE(w >= 0.0 && std::isfinite(w),
                      "workloads must be finite, >= 0");
          AMF_REQUIRE(w == 0.0 || delta.demand_row[s] > 0.0,
                      "positive workload requires positive demand cap");
        }
        workloads_.push_back(delta.workload_row);
      } else if (!workloads_.empty()) {
        workloads_.emplace_back(m, 0.0);
      }
      if (multi_resource()) {
        const auto r = static_cast<std::size_t>(resources());
        std::vector<double> profile = delta.profile_row;
        if (profile.empty()) profile.assign(r, 1.0);
        AMF_REQUIRE(profile.size() == r,
                    "delta profile row width != resource count");
        bool any = false;
        for (double p : profile) {
          AMF_REQUIRE(p >= 0.0 && std::isfinite(p),
                      "profiles must be finite, >= 0");
          any = any || p > 0.0;
        }
        AMF_REQUIRE(any, "each job profile needs a positive entry");
        profiles_.push_back(std::move(profile));
        demands_.push_back(delta.demand_row);
        weights_.push_back(delta.weight);
        gammas_.push_back(0.0);
        eff_demands_.emplace_back();
        if (!workloads_.empty()) eff_workloads_.emplace_back();
        refresh_job_effective(demands_.size() - 1);
        break;
      }
      AMF_REQUIRE(delta.profile_row.empty(),
                  "profile row on a single-resource problem");
      demands_.push_back(delta.demand_row);
      weights_.push_back(delta.weight);
      break;
    }
    case ProblemDelta::Kind::kJobDeparted: {
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      const auto j = static_cast<std::size_t>(delta.job);
      demands_.erase(demands_.begin() + static_cast<std::ptrdiff_t>(j));
      if (!workloads_.empty())
        workloads_.erase(workloads_.begin() + static_cast<std::ptrdiff_t>(j));
      weights_.erase(weights_.begin() + static_cast<std::ptrdiff_t>(j));
      if (multi_resource()) {
        profiles_.erase(profiles_.begin() + static_cast<std::ptrdiff_t>(j));
        gammas_.erase(gammas_.begin() + static_cast<std::ptrdiff_t>(j));
        eff_demands_.erase(eff_demands_.begin() +
                           static_cast<std::ptrdiff_t>(j));
        if (!eff_workloads_.empty())
          eff_workloads_.erase(eff_workloads_.begin() +
                               static_cast<std::ptrdiff_t>(j));
      }
      break;
    }
    case ProblemDelta::Kind::kSiteCapacity: {
      AMF_REQUIRE(!multi_resource(),
                  "scalar capacity delta on a multi-resource problem "
                  "(use set_capacity_vec)");
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.value >= 0.0 && std::isfinite(delta.value),
                  "capacities must be finite, >= 0");
      capacities_[static_cast<std::size_t>(delta.site)] = delta.value;
      break;
    }
    case ProblemDelta::Kind::kCapacityVec: {
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.capacity_row.size() ==
                      static_cast<std::size_t>(resources()),
                  "delta capacity row width != resource count");
      for (double c : delta.capacity_row)
        AMF_REQUIRE(c >= 0.0 && std::isfinite(c),
                    "capacities must be finite, >= 0");
      const auto s = static_cast<std::size_t>(delta.site);
      if (multi_resource()) {
        capacity_matrix_[s] = delta.capacity_row;
        capacities_[s] = flow::binding_min(capacity_matrix_[s]);
      } else {
        capacities_[s] = delta.capacity_row.front();
      }
      break;
    }
    case ProblemDelta::Kind::kDemandSet: {
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.value >= 0.0 && std::isfinite(delta.value),
                  "demands must be finite, >= 0");
      AMF_REQUIRE(delta.value > 0.0 || workloads_.empty() ||
                      workloads_[static_cast<std::size_t>(delta.job)]
                                [static_cast<std::size_t>(delta.site)] == 0.0,
                  "positive workload requires positive demand cap");
      demands_[static_cast<std::size_t>(delta.job)]
              [static_cast<std::size_t>(delta.site)] = delta.value;
      if (multi_resource())
        eff_demands_[static_cast<std::size_t>(delta.job)]
                    [static_cast<std::size_t>(delta.site)] =
            delta.value * gammas_[static_cast<std::size_t>(delta.job)];
      break;
    }
    case ProblemDelta::Kind::kWorkloadSet: {
      AMF_REQUIRE(!workloads_.empty(),
                  "workload delta on a problem without workloads");
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.value >= 0.0 && std::isfinite(delta.value),
                  "workloads must be finite, >= 0");
      AMF_REQUIRE(delta.value == 0.0 ||
                      demands_[static_cast<std::size_t>(delta.job)]
                              [static_cast<std::size_t>(delta.site)] > 0.0,
                  "positive workload requires positive demand cap");
      workloads_[static_cast<std::size_t>(delta.job)]
                [static_cast<std::size_t>(delta.site)] = delta.value;
      if (multi_resource())
        eff_workloads_[static_cast<std::size_t>(delta.job)]
                      [static_cast<std::size_t>(delta.site)] =
            delta.value * gammas_[static_cast<std::size_t>(delta.job)];
      break;
    }
    case ProblemDelta::Kind::kProfileSet: {
      AMF_REQUIRE(multi_resource(),
                  "profile delta on a single-resource problem");
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      AMF_REQUIRE(delta.profile_row.size() ==
                      static_cast<std::size_t>(resources()),
                  "delta profile row width != resource count");
      bool any = false;
      for (double p : delta.profile_row) {
        AMF_REQUIRE(p >= 0.0 && std::isfinite(p),
                    "profiles must be finite, >= 0");
        any = any || p > 0.0;
      }
      AMF_REQUIRE(any, "each job profile needs a positive entry");
      profiles_[static_cast<std::size_t>(delta.job)] = delta.profile_row;
      refresh_job_effective(static_cast<std::size_t>(delta.job));
      break;
    }
  }
  return std::move(*this);
}

void AllocationProblem::save(std::ostream& out) const {
  using util::CsvWriter;
  auto emit_row = [&out](const std::vector<double>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << CsvWriter::format(row[i]);
    }
    out << '\n';
  };
  if (multi_resource()) {
    out << jobs() << ',' << sites() << ',' << (has_workloads() ? 1 : 0) << ','
        << resources() << '\n';
    for (const auto& row : demands_) emit_row(row);
    for (const auto& row : capacity_matrix_) emit_row(row);
    for (const auto& row : profiles_) emit_row(row);
    if (has_workloads())
      for (const auto& row : workloads_) emit_row(row);
    emit_row(weights_);
    return;
  }
  out << jobs() << ',' << sites() << ',' << (has_workloads() ? 1 : 0) << '\n';
  for (const auto& row : demands_) emit_row(row);
  emit_row(capacities_);
  if (has_workloads())
    for (const auto& row : workloads_) emit_row(row);
  emit_row(weights_);
}

AllocationProblem AllocationProblem::load(std::istream& in) {
  auto read_line = [&in] {
    std::string line;
    AMF_REQUIRE(static_cast<bool>(std::getline(in, line)),
                "truncated problem file");
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
    return row;
  };
  auto read_row = [&read_line](std::size_t expected) {
    std::vector<double> row = read_line();
    AMF_REQUIRE(row.size() == expected, "problem file row width mismatch");
    return row;
  };
  auto header = read_line();
  AMF_REQUIRE(header.size() == 3 || header.size() == 4,
              "problem file row width mismatch");
  auto n = static_cast<std::size_t>(header[0]);
  auto m = static_cast<std::size_t>(header[1]);
  bool has_work = header[2] != 0.0;
  Matrix d(n), w;
  for (auto& row : d) row = read_row(m);
  if (header.size() == 4) {
    auto r = static_cast<std::size_t>(header[3]);
    AMF_REQUIRE(r >= 1, "problem file needs at least one resource");
    Matrix caps(m), profiles(n);
    for (auto& row : caps) row = read_row(r);
    for (auto& row : profiles) row = read_row(r);
    if (has_work) {
      w.resize(n);
      for (auto& row : w) row = read_row(m);
    }
    std::vector<double> weights = read_row(n);
    return AllocationProblem::multi(std::move(d), std::move(caps),
                                    std::move(profiles), std::move(w),
                                    std::move(weights));
  }
  std::vector<double> caps = read_row(m);
  if (has_work) {
    w.resize(n);
    for (auto& row : w) row = read_row(m);
  }
  std::vector<double> weights = read_row(n);
  return AllocationProblem(std::move(d), std::move(caps), std::move(w),
                           std::move(weights));
}

}  // namespace amf::core
