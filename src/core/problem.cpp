#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace amf::core {

AllocationProblem::AllocationProblem(Matrix demands,
                                     std::vector<double> capacities,
                                     Matrix workloads,
                                     std::vector<double> weights)
    : demands_(std::move(demands)),
      capacities_(std::move(capacities)),
      workloads_(std::move(workloads)),
      weights_(std::move(weights)) {
  if (weights_.empty()) weights_.assign(demands_.size(), 1.0);
  validate();
}

void AllocationProblem::validate() const {
  AMF_REQUIRE(!capacities_.empty(), "problem needs at least one site");
  const auto n = demands_.size();
  const auto m = capacities_.size();
  for (double c : capacities_)
    AMF_REQUIRE(c >= 0.0 && std::isfinite(c), "capacities must be finite, >= 0");
  for (const auto& row : demands_) {
    AMF_REQUIRE(row.size() == m, "demand matrix width != site count");
    for (double d : row)
      AMF_REQUIRE(d >= 0.0 && std::isfinite(d), "demands must be finite, >= 0");
  }
  if (!workloads_.empty()) {
    AMF_REQUIRE(workloads_.size() == n, "workload matrix height != job count");
    for (std::size_t j = 0; j < n; ++j) {
      AMF_REQUIRE(workloads_[j].size() == m,
                  "workload matrix width != site count");
      for (std::size_t s = 0; s < m; ++s) {
        double w = workloads_[j][s];
        AMF_REQUIRE(w >= 0.0 && std::isfinite(w),
                    "workloads must be finite, >= 0");
        AMF_REQUIRE(w == 0.0 || demands_[j][s] > 0.0,
                    "positive workload requires positive demand cap");
      }
    }
  }
  AMF_REQUIRE(weights_.size() == n, "weight vector length != job count");
  for (double w : weights_)
    AMF_REQUIRE(w > 0.0 && std::isfinite(w), "weights must be finite, > 0");
}

double AllocationProblem::demand(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return demands_[static_cast<std::size_t>(job)][static_cast<std::size_t>(site)];
}

double AllocationProblem::workload(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  if (workloads_.empty()) return 0.0;
  return workloads_[static_cast<std::size_t>(job)]
                   [static_cast<std::size_t>(site)];
}

double AllocationProblem::capacity(int site) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return capacities_[static_cast<std::size_t>(site)];
}

double AllocationProblem::weight(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  return weights_[static_cast<std::size_t>(job)];
}

double AllocationProblem::solo_ceiling(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  double total = 0.0;
  for (int s = 0; s < sites(); ++s)
    total += std::min(demand(job, s), capacity(s));
  return total;
}

double AllocationProblem::total_work(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  if (workloads_.empty()) return 0.0;
  const auto& row = workloads_[static_cast<std::size_t>(job)];
  return std::accumulate(row.begin(), row.end(), 0.0);
}

double AllocationProblem::total_capacity() const {
  return std::accumulate(capacities_.begin(), capacities_.end(), 0.0);
}

double AllocationProblem::scale() const {
  double s = 1.0;
  for (double c : capacities_) s = std::max(s, c);
  for (const auto& row : demands_)
    for (double d : row) s = std::max(s, d);
  return s;
}

double AllocationProblem::equal_split_share(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  double weight_total =
      std::accumulate(weights_.begin(), weights_.end(), 0.0);
  double share = 0.0;
  for (int s = 0; s < sites(); ++s)
    share += std::min(demand(job, s),
                      capacity(s) * weight(job) / weight_total);
  return share;
}

AllocationProblem AllocationProblem::with_reported_demands(
    int job, const std::vector<double>& reported) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(static_cast<int>(reported.size()) == sites(),
              "reported demand vector length != site count");
  Matrix d = demands_;
  d[static_cast<std::size_t>(job)] = reported;
  // Workloads describe true work; a misreport does not change them, but a
  // reported zero demand where true work exists would fail validation, so
  // the probe copy drops workload information.
  return AllocationProblem(std::move(d), capacities_, {}, weights_);
}

AllocationProblem AllocationProblem::subset(
    const std::vector<int>& job_indices) const {
  Matrix d, w;
  std::vector<double> wt;
  d.reserve(job_indices.size());
  wt.reserve(job_indices.size());
  for (int j : job_indices) {
    AMF_REQUIRE(j >= 0 && j < jobs(), "job index out of range");
    d.push_back(demands_[static_cast<std::size_t>(j)]);
    if (!workloads_.empty())
      w.push_back(workloads_[static_cast<std::size_t>(j)]);
    wt.push_back(weights_[static_cast<std::size_t>(j)]);
  }
  return AllocationProblem(std::move(d), capacities_, std::move(w),
                           std::move(wt));
}

ProblemDelta ProblemDelta::job_arrived(std::vector<double> demands,
                                       std::vector<double> workloads,
                                       double weight,
                                       std::vector<double> ceiling) {
  ProblemDelta d;
  d.kind = Kind::kJobArrived;
  d.demand_row = std::move(demands);
  d.workload_row = std::move(workloads);
  d.demand_ceiling = std::move(ceiling);
  d.weight = weight;
  return d;
}

ProblemDelta ProblemDelta::job_departed(int job) {
  ProblemDelta d;
  d.kind = Kind::kJobDeparted;
  d.job = job;
  return d;
}

ProblemDelta ProblemDelta::site_capacity(int site, double value) {
  ProblemDelta d;
  d.kind = Kind::kSiteCapacity;
  d.site = site;
  d.value = value;
  return d;
}

ProblemDelta ProblemDelta::demand_set(int job, int site, double value) {
  ProblemDelta d;
  d.kind = Kind::kDemandSet;
  d.job = job;
  d.site = site;
  d.value = value;
  return d;
}

ProblemDelta ProblemDelta::workload_set(int job, int site, double value) {
  ProblemDelta d;
  d.kind = Kind::kWorkloadSet;
  d.job = job;
  d.site = site;
  d.value = value;
  return d;
}

AllocationProblem AllocationProblem::apply(const ProblemDelta& delta) const& {
  AllocationProblem copy = *this;
  return std::move(copy).apply(delta);
}

AllocationProblem AllocationProblem::apply(const ProblemDelta& delta) && {
  // The instance was valid on entry; each branch re-validates exactly the
  // entries it touches, so the result is valid without an O(n·m) pass.
  const auto m = capacities_.size();
  switch (delta.kind) {
    case ProblemDelta::Kind::kJobArrived: {
      AMF_REQUIRE(delta.demand_row.size() == m,
                  "delta demand row width != site count");
      for (double d : delta.demand_row)
        AMF_REQUIRE(d >= 0.0 && std::isfinite(d),
                    "demands must be finite, >= 0");
      AMF_REQUIRE(delta.weight > 0.0 && std::isfinite(delta.weight),
                  "weights must be finite, > 0");
      const bool track_work = !workloads_.empty() || demands_.empty();
      if (!delta.workload_row.empty()) {
        AMF_REQUIRE(delta.workload_row.size() == m,
                    "delta workload row width != site count");
        AMF_REQUIRE(track_work,
                    "workload row for a problem without workloads");
        for (std::size_t s = 0; s < m; ++s) {
          double w = delta.workload_row[s];
          AMF_REQUIRE(w >= 0.0 && std::isfinite(w),
                      "workloads must be finite, >= 0");
          AMF_REQUIRE(w == 0.0 || delta.demand_row[s] > 0.0,
                      "positive workload requires positive demand cap");
        }
        workloads_.push_back(delta.workload_row);
      } else if (!workloads_.empty()) {
        workloads_.emplace_back(m, 0.0);
      }
      demands_.push_back(delta.demand_row);
      weights_.push_back(delta.weight);
      break;
    }
    case ProblemDelta::Kind::kJobDeparted: {
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      const auto j = static_cast<std::size_t>(delta.job);
      demands_.erase(demands_.begin() + static_cast<std::ptrdiff_t>(j));
      if (!workloads_.empty())
        workloads_.erase(workloads_.begin() + static_cast<std::ptrdiff_t>(j));
      weights_.erase(weights_.begin() + static_cast<std::ptrdiff_t>(j));
      break;
    }
    case ProblemDelta::Kind::kSiteCapacity: {
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.value >= 0.0 && std::isfinite(delta.value),
                  "capacities must be finite, >= 0");
      capacities_[static_cast<std::size_t>(delta.site)] = delta.value;
      break;
    }
    case ProblemDelta::Kind::kDemandSet: {
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.value >= 0.0 && std::isfinite(delta.value),
                  "demands must be finite, >= 0");
      AMF_REQUIRE(delta.value > 0.0 || workloads_.empty() ||
                      workloads_[static_cast<std::size_t>(delta.job)]
                                [static_cast<std::size_t>(delta.site)] == 0.0,
                  "positive workload requires positive demand cap");
      demands_[static_cast<std::size_t>(delta.job)]
              [static_cast<std::size_t>(delta.site)] = delta.value;
      break;
    }
    case ProblemDelta::Kind::kWorkloadSet: {
      AMF_REQUIRE(!workloads_.empty(),
                  "workload delta on a problem without workloads");
      AMF_REQUIRE(delta.job >= 0 && delta.job < jobs(),
                  "delta job index out of range");
      AMF_REQUIRE(delta.site >= 0 && delta.site < sites(),
                  "delta site index out of range");
      AMF_REQUIRE(delta.value >= 0.0 && std::isfinite(delta.value),
                  "workloads must be finite, >= 0");
      AMF_REQUIRE(delta.value == 0.0 ||
                      demands_[static_cast<std::size_t>(delta.job)]
                              [static_cast<std::size_t>(delta.site)] > 0.0,
                  "positive workload requires positive demand cap");
      workloads_[static_cast<std::size_t>(delta.job)]
                [static_cast<std::size_t>(delta.site)] = delta.value;
      break;
    }
  }
  return std::move(*this);
}

void AllocationProblem::save(std::ostream& out) const {
  using util::CsvWriter;
  out << jobs() << ',' << sites() << ',' << (has_workloads() ? 1 : 0) << '\n';
  auto emit_row = [&out](const std::vector<double>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << CsvWriter::format(row[i]);
    }
    out << '\n';
  };
  for (const auto& row : demands_) emit_row(row);
  emit_row(capacities_);
  if (has_workloads())
    for (const auto& row : workloads_) emit_row(row);
  emit_row(weights_);
}

AllocationProblem AllocationProblem::load(std::istream& in) {
  auto read_row = [&in](std::size_t expected) {
    std::string line;
    AMF_REQUIRE(static_cast<bool>(std::getline(in, line)),
                "truncated problem file");
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
    AMF_REQUIRE(row.size() == expected, "problem file row width mismatch");
    return row;
  };
  auto header = read_row(3);
  auto n = static_cast<std::size_t>(header[0]);
  auto m = static_cast<std::size_t>(header[1]);
  bool has_work = header[2] != 0.0;
  Matrix d(n), w;
  for (auto& row : d) row = read_row(m);
  std::vector<double> caps = read_row(m);
  if (has_work) {
    w.resize(n);
    for (auto& row : w) row = read_row(m);
  }
  std::vector<double> weights = read_row(n);
  return AllocationProblem(std::move(d), std::move(caps), std::move(w),
                           std::move(weights));
}

}  // namespace amf::core
