// properties.hpp — empirical checkers for the fairness properties the
// paper proves about AMF: Pareto efficiency, envy-freeness,
// strategy-proofness, and the sharing-incentive property (which AMF lacks
// and E-AMF restores). The test suite and bench T1 exercise these across
// thousands of random instances.
#pragma once

#include "core/allocation.hpp"
#include "util/rng.hpp"

namespace amf::core {

/// Pareto efficiency in aggregates: true iff no job's aggregate can be
/// increased without decreasing another's. Decided exactly by a residual
/// reachability query on the transportation network.
bool is_pareto_efficient(const AllocationProblem& problem,
                         const Allocation& allocation, double eps = 1e-7);

/// Envy of job i toward job k: the value (to i) of k's bundle, clipped to
/// i's demand caps and scaled by the weight ratio φ_i/φ_k, minus i's own
/// aggregate. Returns the maximum envy over all ordered pairs; <= 0 means
/// envy-free.
double max_envy(const AllocationProblem& problem,
                const Allocation& allocation);

bool is_envy_free(const AllocationProblem& problem,
                  const Allocation& allocation, double tol = 1e-7);

/// Sharing incentive: job j's aggregate must reach its equal-split share
/// Σ_s min(d[j][s], C[s]·φ_j/Σφ). Returns the maximum shortfall over
/// jobs; <= 0 means the property holds.
double max_sharing_incentive_violation(const AllocationProblem& problem,
                                       const Allocation& allocation);

bool satisfies_sharing_incentive(const AllocationProblem& problem,
                                 const Allocation& allocation,
                                 double tol = 1e-7);

/// Result of a randomized strategy-proofness probe.
struct StrategyProbeResult {
  double max_gain = 0.0;   ///< best true-utility gain any misreport found
  int trials = 0;          ///< number of misreports attempted
  int profitable = 0;      ///< misreports with gain above tolerance
};

/// Attacks the allocator on behalf of `job`: draws `trials` random
/// misreported demand vectors (scalings, site hiding, inflation), re-runs
/// the allocator, and measures the job's *true* usable allocation
/// Σ_s min(a'[job][s], d_true[job][s]) against its truthful aggregate.
/// A strategy-proof policy admits no gain beyond tolerance.
StrategyProbeResult probe_strategy_proofness(const AllocationProblem& problem,
                                             const Allocator& allocator,
                                             int job, int trials,
                                             util::Rng& rng,
                                             double tol = 1e-6);

}  // namespace amf::core
