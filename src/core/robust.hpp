// robust.hpp — graceful degradation for the allocator pipeline.
//
// An online scheduler cannot afford an allocator that throws: every
// reallocation point must produce *some* feasible allocation, even when
// the primary solver hits a numerical corner. RobustAllocator wraps any
// policy in a fixed fallback chain, ordered from highest fidelity to
// unconditional availability:
//
//   1. the wrapped policy itself;
//   2. AMF re-solved with a relaxed flow tolerance (most non-convergence
//      is tolerance-induced degeneracy; loosening eps usually cures it);
//   3. AMF with the bisection level method (slower, but immune to the
//      cut-Newton degeneracies);
//   4. the LP reference solver (sequential leximin on the simplex
//      substrate — shares no code with the flow path);
//   5. per-site max-min (closed-form water-filling; cannot fail).
//
// A tier is rejected when it throws InternalError (solver bug or
// non-convergence), reports a non-converged status, or returns an
// infeasible allocation; ContractError (malformed input) propagates —
// feeding the chain a broken problem is a caller bug, not a solver one.
// Every decision is counted in the obs metric registry
// (amf_core_fallback_served_<tier> / amf_core_fallback_failures_<tier>) on
// a per-instance shard, so operators see which tier served each event both
// globally (Registry::global().snapshot()) and per wrapper
// (fallback_stats(), an exact per-instance view).
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/allocation.hpp"
#include "core/amf.hpp"
#include "core/persite.hpp"
#include "obs/metrics.hpp"

namespace amf::core {

/// The tiers of the degradation chain, in escalation order.
enum class FallbackTier {
  kPrimary = 0,
  kRelaxedEps = 1,
  kBisection = 2,
  kReferenceLp = 3,
  kPerSite = 4,
};
inline constexpr int kFallbackTierCount = 5;

/// Human-readable tier name ("primary", "relaxed-eps", ...).
const char* to_string(FallbackTier tier);

/// Per-tier service/failure counters since construction (or the last
/// reset_stats()).  A value snapshot built from the wrapper's registry
/// shard by fallback_stats() — the counting itself lives in the metric
/// registry, this struct is only the per-instance view of it.
struct FallbackStats {
  std::array<long, kFallbackTierCount> served{};    ///< events served by tier
  std::array<long, kFallbackTierCount> failures{};  ///< tier attempts rejected
  FallbackTier last = FallbackTier::kPrimary;       ///< tier of the last event
  std::string last_error;  ///< what the most recent failing tier reported

  /// Total allocation events served by the chain.
  long calls() const {
    long total = 0;
    for (long s : served) total += s;
    return total;
  }
  /// Events served by any tier below the primary.
  long degraded_calls() const { return calls() - served[0]; }

  /// One-line operator summary: "tier:served/failures ..." for every tier
  /// with activity, plus the serving tier of the last event.  The single
  /// print path shared by tools and benches.
  std::string summary() const;
};

struct RobustConfig {
  /// Flow tolerance of the relaxed-eps and bisection retry tiers.
  double relaxed_eps = 1e-6;
  /// Treat an iteration-capped (but feasible) primary AMF solve as
  /// non-convergence and escalate. Off = accept the lower-confidence
  /// result.
  bool escalate_on_iteration_cap = false;
  /// Relative tolerance of the post-hoc feasibility audit applied to
  /// every tier's output before it is accepted.
  double feasibility_eps = 1e-6;
};

/// Wraps a policy in the fallback chain above. The wrapped policy must
/// outlive the wrapper.
class RobustAllocator final : public Allocator {
 public:
  explicit RobustAllocator(const Allocator& primary, RobustConfig config = {});

  /// Never throws InternalError: walks the chain until a tier produces a
  /// feasible allocation (the per-site tier always does).
  Allocation allocate(const AllocationProblem& problem) const override;

  /// Workspace-aware chain walk. The workspace is invalidated whenever the
  /// serving tier differs from the one that served the previous call, so a
  /// network warmed under one tier's solve parameters is never reused by
  /// another tier.
  Allocation allocate(const AllocationProblem& problem,
                      SolverWorkspace& workspace) const override;

  std::string name() const override;

  /// Exact per-instance snapshot of this wrapper's tier counters (read
  /// from its registry shard).
  FallbackStats fallback_stats() const;

  /// Restarts the per-instance counters from zero.  The shard's values are
  /// folded into the registry's retired base first, so globally scraped
  /// totals stay monotonic.
  void reset_stats();

 private:
  Allocation allocate_impl(const AllocationProblem& problem,
                           SolverWorkspace* workspace) const;

  // Mutable telemetry behind a shared_ptr: allocate() is const (Allocator
  // interface), but counting happens on the pointee, which shared_ptr does
  // not const-propagate to — no `mutable` members needed.  Not thread-safe,
  // matching the allocator itself.
  struct Telemetry {
    std::shared_ptr<obs::Shard> shard;
    FallbackTier last = FallbackTier::kPrimary;
    std::string last_error;
  };

  const Allocator& primary_;
  RobustConfig config_;
  AmfAllocator relaxed_;
  AmfAllocator bisection_;
  PerSiteMaxMin persite_;
  std::shared_ptr<Telemetry> telemetry_;
};

}  // namespace amf::core
