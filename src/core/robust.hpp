// robust.hpp — graceful degradation for the allocator pipeline.
//
// An online scheduler cannot afford an allocator that throws: every
// reallocation point must produce *some* feasible allocation, even when
// the primary solver hits a numerical corner. RobustAllocator wraps any
// policy in a fixed fallback chain, ordered from highest fidelity to
// unconditional availability:
//
//   1. the wrapped policy itself;
//   2. AMF re-solved with a relaxed flow tolerance (most non-convergence
//      is tolerance-induced degeneracy; loosening eps usually cures it);
//   3. AMF with the bisection level method (slower, but immune to the
//      cut-Newton degeneracies);
//   4. the LP reference solver (sequential leximin on the simplex
//      substrate — shares no code with the flow path);
//   5. per-site max-min (closed-form water-filling; cannot fail).
//
// A tier is rejected when it throws InternalError (solver bug or
// non-convergence), reports a non-converged status, or returns an
// infeasible allocation; ContractError (malformed input) propagates —
// feeding the chain a broken problem is a caller bug, not a solver one.
// Every decision is counted in the obs metric registry
// (amf_core_fallback_served_<tier> / amf_core_fallback_failures_<tier>) on
// a per-instance shard, so operators see which tier served each event both
// globally (Registry::global().snapshot()) and per wrapper
// (fallback_stats(), an exact per-instance view).
//
// Deadlines (anytime operation). With `RobustConfig::time_budget_ms` set
// (or an ambient util::StopToken installed around the call), the chain is
// additionally *latency-bounded*: each tier runs under a sub-deadline of
// `tier_budget_share` of the remaining budget — so successive tiers get
// geometrically shrinking slices and some budget always remains for the
// finishing pass — and a tier whose stop token fires is treated like a
// failed tier (counted in amf_core_deadline_exceeded_<tier>). The
// closed-form per-site tier is exempt: it never polls and always
// completes. When the whole budget is exhausted mid-chain, the best
// deadline-interrupted AMF result seen so far (its frozen levels are
// feasible, only partial) is *salvaged* instead of discarded: per-site
// water-filling distributes the residual capacity on the residual
// demands, and the combined allocation is served as the pseudo-tier
// kSalvage. Budget headroom at serve time is recorded in the
// amf_core_budget_remaining_ms histogram.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/allocation.hpp"
#include "core/amf.hpp"
#include "core/persite.hpp"
#include "obs/metrics.hpp"
#include "util/deadline.hpp"

namespace amf::core {

/// The tiers of the degradation chain, in escalation order. kSalvage is
/// not a tier the chain *tries* — it is the serve path used when the time
/// budget runs out and a deadline-interrupted AMF tier left a feasible
/// partial fill worth completing (see the header comment).
enum class FallbackTier {
  kPrimary = 0,
  kRelaxedEps = 1,
  kBisection = 2,
  kReferenceLp = 3,
  kPerSite = 4,
  kSalvage = 5,
};
inline constexpr int kFallbackTierCount = 6;

/// Human-readable tier name ("primary", "relaxed-eps", ...).
const char* to_string(FallbackTier tier);

/// Per-tier service/failure counters since construction (or the last
/// reset_stats()).  A value snapshot built from the wrapper's registry
/// shard by fallback_stats() — the counting itself lives in the metric
/// registry, this struct is only the per-instance view of it.
struct FallbackStats {
  std::array<long, kFallbackTierCount> served{};    ///< events served by tier
  std::array<long, kFallbackTierCount> failures{};  ///< tier attempts rejected
  FallbackTier last = FallbackTier::kPrimary;       ///< tier of the last event
  std::string last_error;  ///< what the most recent failing tier reported

  /// Total allocation events served by the chain.
  long calls() const {
    long total = 0;
    for (long s : served) total += s;
    return total;
  }
  /// Events served by any tier below the primary.
  long degraded_calls() const { return calls() - served[0]; }

  /// One-line operator summary: "tier:served/failures ..." for every tier
  /// with activity, plus the serving tier of the last event.  The single
  /// print path shared by tools and benches.
  std::string summary() const;
};

struct RobustConfig {
  /// Flow tolerance of the relaxed-eps and bisection retry tiers.
  double relaxed_eps = 1e-6;
  /// Treat an iteration-capped (but feasible) primary AMF solve as
  /// non-convergence and escalate. Off = accept the lower-confidence
  /// result.
  bool escalate_on_iteration_cap = false;
  /// Relative tolerance of the post-hoc feasibility audit applied to
  /// every tier's output before it is accepted.
  double feasibility_eps = 1e-6;
  /// Wall-clock budget for one allocate() call, in milliseconds. Zero =
  /// unbudgeted (an ambient util::StopToken, if any, still applies). The
  /// closed-form tiers always complete, so the serve latency can exceed
  /// the budget by their (small, polling-free) cost.
  double time_budget_ms = 0.0;
  /// Fraction of the *remaining* budget granted to each budgeted tier, in
  /// (0, 1]. 0.5 gives the primary half the budget, the relaxed retry a
  /// quarter, and so on — later tiers are cheaper to interrupt and some
  /// budget always survives for salvage.
  double tier_budget_share = 0.5;
  /// Optional external cancellation handle; when valid and cancelled, the
  /// chain stops at the next poll exactly like an expired deadline.
  util::CancelToken cancel;

  /// Throws ContractError on non-finite or non-positive eps values, a
  /// negative or non-finite budget, or a share outside (0, 1].
  void validate() const;
};

/// Per-instance deadline telemetry (snapshot, like FallbackStats).
struct DeadlineStats {
  /// Tier attempts interrupted by the stop token, by tier.
  std::array<long, kFallbackTierCount> deadline_exceeded{};
  /// Events in which at least one tier was deadline-interrupted.
  long deadline_events = 0;
  /// Worst relative fairness gap of a served salvage allocation: how far
  /// the minimum served level fell below the interrupted tier's last
  /// frozen level, in [0, 1]. Zero when no salvage was ever served.
  double worst_salvage_gap = 0.0;
};

/// Wraps a policy in the fallback chain above. The wrapped policy must
/// outlive the wrapper.
class RobustAllocator final : public Allocator {
 public:
  explicit RobustAllocator(const Allocator& primary, RobustConfig config = {});

  /// Never throws InternalError: walks the chain until a tier produces a
  /// feasible allocation (the per-site tier always does).
  Allocation allocate(const AllocationProblem& problem) const override;

  /// Workspace-aware chain walk. The workspace is invalidated whenever the
  /// serving tier differs from the one that served the previous call, so a
  /// network warmed under one tier's solve parameters is never reused by
  /// another tier.
  Allocation allocate(const AllocationProblem& problem,
                      SolverWorkspace& workspace) const override;

  std::string name() const override;

  /// Exact per-instance snapshot of this wrapper's tier counters (read
  /// from its registry shard).
  FallbackStats fallback_stats() const;

  /// Exact per-instance snapshot of the deadline telemetry.
  DeadlineStats deadline_stats() const;

  /// Restarts the per-instance counters from zero.  The shard's values are
  /// folded into the registry's retired base first, so globally scraped
  /// totals stay monotonic.
  void reset_stats();

 private:
  Allocation allocate_impl(const AllocationProblem& problem,
                           SolverWorkspace* workspace) const;

  // Mutable telemetry behind a shared_ptr: allocate() is const (Allocator
  // interface), but counting happens on the pointee, which shared_ptr does
  // not const-propagate to — no `mutable` members needed.  Not thread-safe,
  // matching the allocator itself.
  struct Telemetry {
    std::shared_ptr<obs::Shard> shard;
    FallbackTier last = FallbackTier::kPrimary;
    std::string last_error;
    long deadline_events = 0;
    double worst_salvage_gap = 0.0;
  };

  const Allocator& primary_;
  RobustConfig config_;
  AmfAllocator relaxed_;
  AmfAllocator bisection_;
  PerSiteMaxMin persite_;
  std::shared_ptr<Telemetry> telemetry_;
};

}  // namespace amf::core
