// stability.hpp — placement stability under AMF: minimize reallocation
// churn.
//
// In online execution the allocator runs at every arrival/completion.
// The AMF aggregate vector moves smoothly, but the max-flow realization
// is an arbitrary vertex of the transportation polytope — consecutive
// events can reshuffle placements wholesale even when aggregates barely
// change, and in a real cluster every reshuffled unit is preemption and
// data-transfer cost. This add-on picks, among the allocations realizing
// the target aggregates exactly, one minimizing the total L1 distance to
// the previous allocation — a small linear program over the placement
// polytope (solved with the bundled simplex).
#pragma once

#include "core/allocation.hpp"

namespace amf::core {

/// Churn-minimizing redistribution with aggregates pinned.
class StabilityAddon {
 public:
  /// Two interchangeable solvers compute the same optimum:
  /// kMinCostFlow (default) — "keep" arcs rewarded, "change" arcs
  /// charged, one min-cost max-flow; scales to simulator use.
  /// kLp — the direct linear program over the placement polytope;
  /// retained as an independent cross-check (see stability tests).
  enum class Backend { kMinCostFlow, kLp };

  explicit StabilityAddon(double eps = 1e-9,
                          Backend backend = Backend::kMinCostFlow);

  /// Returns an allocation with `target`'s aggregates (exactly) whose
  /// per-site shares are as close as possible (total L1) to `previous`.
  /// `previous` must have the same shape; pass a zero allocation for the
  /// first event. The result's policy name is target.policy() + "+stable".
  Allocation optimize(const AllocationProblem& problem,
                      const Allocation& target,
                      const Allocation& previous) const;

  /// Total L1 distance between two allocations of the same shape.
  static double churn(const Allocation& a, const Allocation& b);

 private:
  Allocation optimize_lp(const AllocationProblem& problem,
                         const Allocation& target,
                         const Allocation& previous,
                         const std::string& policy) const;
  Allocation optimize_mcmf(const AllocationProblem& problem,
                           const Allocation& target,
                           const Allocation& previous,
                           const std::string& policy) const;

  double eps_;
  Backend backend_;
};

}  // namespace amf::core
