// report.hpp — per-call solver instrumentation.
//
// Allocators are const and thread-safe: they never store per-call state in
// members. Callers that want diagnostics (solve counts, convergence
// status, the filling trace) pass a SolveReport — either directly via
// AmfAllocator::allocate_with_report or through a SolverWorkspace — and
// read it after the call.
#pragma once

#include <vector>

#include "flow/parametric.hpp"

namespace amf::core {

/// Diagnostic trace of one progressive-filling run: which round froze
/// each job and at what weight-normalized water level — the "why did my
/// job get exactly this much" explanation. Jobs frozen in the same round
/// share a bottleneck (a tight set of sites); later rounds freeze at
/// weakly higher levels.
struct FillTrace {
  std::vector<int> freeze_round;     ///< per job; 0 = structurally zero
  std::vector<double> freeze_level;  ///< per job: aggregate / weight
  int rounds = 0;                    ///< total filling rounds executed
};

/// Everything one allocate() call reports about itself.
struct SolveReport {
  int flow_solves = 0;  ///< max-flow computations performed
  /// Worst level-solve status observed. kIterationCapped results are
  /// feasible but lower-confidence — a resilience wrapper may re-solve.
  flow::LevelStatus status = flow::LevelStatus::kConverged;
  FillTrace trace;   ///< progressive-filling explanation (AMF/E-AMF)
  bool warm = false; ///< served from a primed workspace network

  void reset() { *this = SolveReport{}; }
};

}  // namespace amf::core
