// amf.hpp — Aggregate Max-min Fairness (the paper's primary contribution).
//
// AMF requires the vector of *aggregate* allocations A[j] = Σ_s a[j][s] to
// be (weighted) lexicographically max-min fair over the whole feasible
// region — capacity is shifted between sites on a job's behalf whenever
// that lets a worse-off job catch up. The feasible aggregate set is a
// polymatroid (its rank function is the max flow of the job→site
// transportation network), so progressive filling computes the unique
// max-min fair aggregate vector: raise every unfrozen job's aggregate at a
// common weighted rate, freeze the jobs that hit a tight cut, repeat.
#pragma once

#include "core/allocation.hpp"
#include "flow/parametric.hpp"

namespace amf::core {

/// Diagnostic trace of one progressive-filling run: which round froze
/// each job and at what weight-normalized water level — the "why did my
/// job get exactly this much" explanation. Jobs frozen in the same round
/// share a bottleneck (a tight set of sites); later rounds freeze at
/// weakly higher levels.
struct FillTrace {
  std::vector<int> freeze_round;     ///< per job; 0 = structurally zero
  std::vector<double> freeze_level;  ///< per job: aggregate / weight
  int rounds = 0;                    ///< total filling rounds executed
};

/// The AMF allocator.
///
/// Aggregates are the unique (weighted) lex max-min fair vector; the
/// per-site split returned is the one realized by the final max-flow
/// (combine with JctAddon to pick a completion-time-optimized split for
/// the same aggregates).
class AmfAllocator final : public Allocator {
 public:
  /// `eps`: relative tolerance of all flow computations; `method`:
  /// critical-level search (cut-Newton default; bisection kept for the
  /// ablation study).
  explicit AmfAllocator(double eps = 1e-9,
                        flow::LevelMethod method =
                            flow::LevelMethod::kCutNewton)
      : eps_(eps), method_(method) {}

  Allocation allocate(const AllocationProblem& problem) const override;
  std::string name() const override { return "AMF"; }

  /// Max-flow solve count of the last allocate() call (instrumentation
  /// for the F10 ablation; not thread-safe across concurrent calls).
  int last_flow_solves() const { return last_flow_solves_; }

  /// Explanation of the last allocate() call (same thread-safety caveat).
  const FillTrace& last_fill_trace() const { return last_trace_; }

  /// Worst level-solve status observed during the last allocate() call.
  /// kIterationCapped results are feasible but lower-confidence — a
  /// resilience wrapper may choose to re-solve (same caveat as above).
  flow::LevelStatus last_status() const { return last_status_; }

 private:
  double eps_;
  flow::LevelMethod method_;
  mutable int last_flow_solves_ = 0;
  mutable FillTrace last_trace_;
  mutable flow::LevelStatus last_status_ = flow::LevelStatus::kConverged;
};

/// Progressive-filling engine shared by AMF and E-AMF.
///
/// Computes the weighted lex max-min fair aggregates subject to per-job
/// lower floors (each job's aggregate is at least its floor). `floors`
/// must be jointly feasible — equal-split floors always are; pass zeros
/// for plain AMF. Returns the allocation realizing the fair aggregates.
Allocation progressive_fill(
    const AllocationProblem& problem, const std::vector<double>& floors,
    const std::string& policy_name, double eps,
    flow::LevelMethod method = flow::LevelMethod::kCutNewton,
    flow::LevelSolveStats* stats = nullptr, FillTrace* trace = nullptr);

}  // namespace amf::core
