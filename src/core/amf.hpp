// amf.hpp — Aggregate Max-min Fairness (the paper's primary contribution).
//
// AMF requires the vector of *aggregate* allocations A[j] = Σ_s a[j][s] to
// be (weighted) lexicographically max-min fair over the whole feasible
// region — capacity is shifted between sites on a job's behalf whenever
// that lets a worse-off job catch up. The feasible aggregate set is a
// polymatroid (its rank function is the max flow of the job→site
// transportation network), so progressive filling computes the unique
// max-min fair aggregate vector: raise every unfrozen job's aggregate at a
// common weighted rate, freeze the jobs that hit a tight cut, repeat.
#pragma once

#include "core/allocation.hpp"
#include "core/report.hpp"
#include "flow/parametric.hpp"

namespace amf::core {

/// The AMF allocator.
///
/// Aggregates are the unique (weighted) lex max-min fair vector; the
/// per-site split returned is the one realized by the final max-flow
/// (combine with JctAddon to pick a completion-time-optimized split for
/// the same aggregates).
///
/// Instances are const and thread-safe: per-call diagnostics go into a
/// caller-owned SolveReport (allocate_with_report) or the workspace's
/// report, never into allocator members.
class AmfAllocator final : public Allocator {
 public:
  /// `eps`: relative tolerance of all flow computations; `method`:
  /// critical-level search (cut-Newton default; bisection kept for the
  /// ablation study).
  explicit AmfAllocator(double eps = 1e-9,
                        flow::LevelMethod method =
                            flow::LevelMethod::kCutNewton)
      : eps_(eps), method_(method) {}

  Allocation allocate(const AllocationProblem& problem) const override;

  /// Warm path: reuses the workspace's persistent network (priming it
  /// from `problem` if needed) and fills workspace.report(). Bit-for-bit
  /// identical to the stateless overload.
  Allocation allocate(const AllocationProblem& problem,
                      SolverWorkspace& workspace) const override;

  /// Stateless solve with instrumentation: fills `report` with the solve
  /// count, convergence status and filling trace of this call.
  Allocation allocate_with_report(const AllocationProblem& problem,
                                  SolveReport& report) const;

  std::string name() const override { return "AMF"; }

 private:
  double eps_;
  flow::LevelMethod method_;
};

/// Progressive-filling engine shared by AMF and E-AMF.
///
/// Computes the weighted lex max-min fair aggregates subject to per-job
/// lower floors (each job's aggregate is at least its floor). `floors`
/// must be jointly feasible — equal-split floors always are; pass zeros
/// for plain AMF. Returns the allocation realizing the fair aggregates.
///
/// `net`, when given, is a pre-built transportation system presenting
/// exactly this problem's demand/capacity values (e.g. a primed
/// SolverWorkspace's persistent network); filling then skips the network
/// construction. Null builds a fresh network — same results either way.
///
/// `hints`, when given, carries one LevelHint per filling round across
/// calls: each round's Newton descent starts from the cut the same round
/// ended on last time. Only pass this for relaxed-realization solves —
/// hinted levels can differ from the cold descent's in the last ulps.
///
/// `stop` (explicit, else the ambient token) makes the fill *anytime*:
/// when it fires, filling halts and the allocation currently realized by
/// the network is returned — a feasible matrix in which every level
/// frozen before the interrupt is already served — with
/// `stats->worst == kDeadlineExceeded` marking the result partial.
Allocation progressive_fill(
    const AllocationProblem& problem, const std::vector<double>& floors,
    const std::string& policy_name, double eps,
    flow::LevelMethod method = flow::LevelMethod::kCutNewton,
    flow::LevelSolveStats* stats = nullptr, FillTrace* trace = nullptr,
    flow::TransportSystem* net = nullptr,
    std::vector<flow::LevelHint>* hints = nullptr,
    const util::StopToken* stop = nullptr);

}  // namespace amf::core
