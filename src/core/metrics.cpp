#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/jct.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace amf::core {

FairnessReport fairness_report(const AllocationProblem& problem,
                               const Allocation& allocation) {
  auto norm = allocation.normalized_aggregates(problem);
  FairnessReport r;
  r.jain = util::jain_index(norm);
  r.min_max = util::min_max_ratio(norm);
  r.cv = util::coefficient_of_variation(norm);
  r.gini = util::gini(norm);
  if (!norm.empty()) {
    auto [mn, mx] = std::minmax_element(norm.begin(), norm.end());
    r.min_aggregate = *mn;
    r.max_aggregate = *mx;
    double sum = 0.0;
    for (double v : norm) sum += v;
    r.mean_aggregate = sum / static_cast<double>(norm.size());
  }
  r.utilization = allocation.utilization(problem);
  return r;
}

JctReport jct_report(const AllocationProblem& problem,
                     const Allocation& allocation) {
  auto jct = completion_times(problem, allocation);
  auto sd = slowdowns(problem, allocation);
  JctReport r;
  std::vector<double> finite;
  finite.reserve(jct.size());
  util::Accumulator sd_acc;
  for (std::size_t j = 0; j < jct.size(); ++j) {
    if (std::isfinite(jct[j])) {
      finite.push_back(jct[j]);
      sd_acc.add(sd[j]);
    } else {
      ++r.unbounded;
    }
  }
  if (!finite.empty()) {
    util::Accumulator acc;
    for (double t : finite) acc.add(t);
    r.mean = acc.mean();
    r.max = acc.max();
    r.p50 = util::percentile(finite, 50.0);
    r.p95 = util::percentile(finite, 95.0);
    r.mean_slowdown = sd_acc.mean();
  }
  return r;
}

int lexicographic_compare(std::vector<double> a, std::vector<double> b,
                          double tol) {
  AMF_REQUIRE(a.size() == b.size(),
              "lexicographic_compare needs equal-length vectors");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i] - tol) return -1;
    if (a[i] > b[i] + tol) return 1;
  }
  return 0;
}

}  // namespace amf::core
