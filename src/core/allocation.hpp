// allocation.hpp — the result type shared by all allocators.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"

namespace amf::core {

/// A concrete per-site allocation plus cached aggregates.
class Allocation {
 public:
  Allocation() = default;

  /// `shares[j][s]` is job j's allocation at site s. Aggregates are
  /// computed and cached on construction.
  explicit Allocation(Matrix shares, std::string policy = {});

  int jobs() const { return static_cast<int>(shares_.size()); }
  int sites() const {
    return shares_.empty() ? 0 : static_cast<int>(shares_.front().size());
  }

  const Matrix& shares() const { return shares_; }
  double share(int job, int site) const;

  /// Per-job aggregate allocations A[j] = Σ_s a[j][s].
  const std::vector<double>& aggregates() const { return aggregates_; }
  double aggregate(int job) const;

  /// Aggregates divided by job weights (the quantity max-min fairness
  /// equalizes in the weighted model).
  std::vector<double> normalized_aggregates(const AllocationProblem& p) const;

  /// Σ_j a[j][s] — total usage of site s.
  double site_usage(int site) const;

  /// Fraction of total capacity in use.
  double utilization(const AllocationProblem& p) const;

  /// Checks 0 <= a <= d and per-site capacity with relative tolerance eps.
  bool feasible_for(const AllocationProblem& p, double eps = 1e-7) const;

  /// Name of the allocator that produced this allocation (for reports).
  const std::string& policy() const { return policy_; }

 private:
  Matrix shares_;
  std::vector<double> aggregates_;
  std::string policy_;
};

class SolverWorkspace;

/// Common interface of all allocation policies.
///
/// Allocators are const and thread-safe: a single instance may serve
/// concurrent allocate() calls. Warm-start state and per-call
/// instrumentation live in a caller-owned SolverWorkspace.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Computes an allocation for the instance. Implementations must return
  /// feasible allocations and are deterministic.
  virtual Allocation allocate(const AllocationProblem& problem) const = 0;

  /// Workspace-aware overload for online solve streams: implementations
  /// that support warm starting reuse the workspace's persistent state and
  /// fill workspace.report(). Results are identical to the stateless
  /// overload (bit-for-bit for the in-tree implementations). The default
  /// resets the report and delegates to the stateless overload.
  virtual Allocation allocate(const AllocationProblem& problem,
                              SolverWorkspace& workspace) const;

  /// Short policy name used in reports ("AMF", "E-AMF", "PSMF", ...).
  virtual std::string name() const = 0;
};

}  // namespace amf::core
