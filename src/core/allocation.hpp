// allocation.hpp — the result type shared by all allocators.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"

namespace amf::core {

/// A concrete per-site allocation plus cached aggregates.
class Allocation {
 public:
  Allocation() = default;

  /// `shares[j][s]` is job j's allocation at site s. Aggregates are
  /// computed and cached on construction.
  explicit Allocation(Matrix shares, std::string policy = {});

  int jobs() const { return static_cast<int>(shares_.size()); }
  int sites() const {
    return shares_.empty() ? 0 : static_cast<int>(shares_.front().size());
  }

  const Matrix& shares() const { return shares_; }
  double share(int job, int site) const;

  /// Per-job aggregate allocations A[j] = Σ_s a[j][s].
  const std::vector<double>& aggregates() const { return aggregates_; }
  double aggregate(int job) const;

  /// Aggregates divided by job weights (the quantity max-min fairness
  /// equalizes in the weighted model).
  std::vector<double> normalized_aggregates(const AllocationProblem& p) const;

  /// Σ_j a[j][s] — total usage of site s.
  double site_usage(int site) const;

  /// Fraction of total capacity in use.
  double utilization(const AllocationProblem& p) const;

  /// Checks 0 <= a <= d and per-site capacity with relative tolerance eps.
  bool feasible_for(const AllocationProblem& p, double eps = 1e-7) const;

  /// Name of the allocator that produced this allocation (for reports).
  const std::string& policy() const { return policy_; }

 private:
  Matrix shares_;
  std::vector<double> aggregates_;
  std::string policy_;
};

/// Common interface of all allocation policies.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Computes an allocation for the instance. Implementations must return
  /// feasible allocations and are deterministic.
  virtual Allocation allocate(const AllocationProblem& problem) const = 0;

  /// Short policy name used in reports ("AMF", "E-AMF", "PSMF", ...).
  virtual std::string name() const = 0;
};

}  // namespace amf::core
