#include "core/amf.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "core/workspace.hpp"
#include "flow/parametric.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace amf::core {

namespace {

/// Source cap of job j at level t given its floor: max(floor, weight·t).
double cap_at(double floor, double weight, double t) {
  return std::max(floor, weight * t);
}

struct FillCounters {
  obs::Counter fills;
  obs::Counter rounds;
  obs::Counter warm_allocs;
  obs::Counter cold_allocs;
  FillCounters() {
    auto& reg = obs::Registry::global();
    fills = reg.counter("amf_core_fills", "progressive-fill invocations");
    rounds = reg.counter("amf_core_fill_rounds",
                         "freeze rounds across all progressive fills");
    warm_allocs = reg.counter(
        "amf_core_alloc_warm",
        "workspace allocates served by an already-primed network");
    cold_allocs = reg.counter(
        "amf_core_alloc_cold",
        "workspace allocates that had to prime (build) the network");
  }
};

FillCounters& fill_counters() {
  static FillCounters counters;
  return counters;
}

}  // namespace

Allocation progressive_fill(const AllocationProblem& problem,
                            const std::vector<double>& floors,
                            const std::string& policy_name, double eps,
                            flow::LevelMethod method,
                            flow::LevelSolveStats* stats, FillTrace* trace,
                            flow::TransportSystem* external_net,
                            std::vector<flow::LevelHint>* hints,
                            const util::StopToken* stop) {
  stop = util::effective_stop(stop);
  const int n = problem.jobs();
  AMF_SPAN_ARG("core/progressive_fill", "jobs", n);
  if (trace != nullptr) {
    trace->freeze_round.assign(static_cast<std::size_t>(n), 0);
    trace->freeze_level.assign(static_cast<std::size_t>(n), 0.0);
    trace->rounds = 0;
  }
  AMF_REQUIRE(static_cast<int>(floors.size()) == n,
              "one floor per job required");
  for (double f : floors) AMF_REQUIRE(f >= 0.0, "floors must be >= 0");

  if (n == 0)
    return Allocation(Matrix{}, policy_name);

  std::optional<flow::TransportNetwork> local_net;
  if (external_net == nullptr)
    local_net.emplace(problem.demands(), problem.capacities());
  flow::TransportSystem& net =
      external_net != nullptr ? *external_net : *local_net;
  AMF_REQUIRE(net.jobs() == n && net.sites() == problem.sites(),
              "transport system shape != problem shape");
  const double scale = net.scale();
  const double tol = eps * scale;

  // All-zero floors are trivially feasible (the zero flow attains them);
  // skipping the probe keeps any flow a persistent network carried over
  // from a previous solve available for warm-started level probes.
  bool positive_floor = false;
  for (double f : floors) positive_floor = positive_floor || f > 0.0;
  if (positive_floor) {
    net.probe(floors, eps);
    if (stop != nullptr && stop->stop_requested() && !net.saturated(eps)) {
      // The deadline fired inside the probe itself (the flow on the
      // network is conservative, so the matrix is feasible): report an
      // interrupted fill, not a floor-contract violation.
      if (stats != nullptr)
        stats->observe(flow::LevelStatus::kDeadlineExceeded);
      return Allocation(net.allocation(), policy_name);
    }
    AMF_REQUIRE(net.saturated(eps), "floors must be jointly feasible");
  }

  std::vector<char> frozen(static_cast<std::size_t>(n), 0);
  std::vector<double> value(static_cast<std::size_t>(n), 0.0);
  int unfrozen_count = n;

  // Jobs that can never receive anything are frozen at their floor (== 0,
  // since a positive floor would contradict floor feasibility).
  for (int j = 0; j < n; ++j) {
    if (net.solo_ceiling(j) <= tol) {
      frozen[static_cast<std::size_t>(j)] = 1;
      value[static_cast<std::size_t>(j)] = 0.0;
      --unfrozen_count;
    }
  }

  // Level segments: the cap function max(floor, w·t) changes slope at the
  // per-job breakpoints floor/w. Within one segment every cap is affine.
  double t_ub = 1.0 + scale;
  for (int j = 0; j < n; ++j)
    t_ub = std::max(t_ub, net.solo_ceiling(j) / problem.weight(j) + 1.0);
  std::set<double> boundary_set{0.0, t_ub};
  for (int j = 0; j < n; ++j) {
    if (frozen[static_cast<std::size_t>(j)]) continue;
    double b = floors[static_cast<std::size_t>(j)] / problem.weight(j);
    if (b > tol && b < t_ub) boundary_set.insert(b);
  }
  std::vector<double> bounds(boundary_set.begin(), boundary_set.end());

  double level = 0.0;
  std::size_t seg = 0;
  int round_counter = 0;
  auto mark_frozen = [&](int j) {
    if (trace == nullptr) return;
    trace->freeze_round[static_cast<std::size_t>(j)] = round_counter;
    trace->freeze_level[static_cast<std::size_t>(j)] =
        value[static_cast<std::size_t>(j)] / problem.weight(j);
    trace->rounds = round_counter;
  };
  std::vector<flow::ParametricSource> sources(static_cast<std::size_t>(n));
  // Anytime exit: the flow currently on the network respects every demand
  // cap and site capacity (max-flow invariants), so it is a feasible
  // allocation, and every level frozen in a completed round is already
  // realized in it. kDeadlineExceeded marks the result partial.
  auto interrupted = [&]() {
    if (stats != nullptr) stats->observe(flow::LevelStatus::kDeadlineExceeded);
    FillCounters& counters = fill_counters();
    counters.fills.add(1);
    if (round_counter > 0) counters.rounds.add(round_counter);
    return Allocation(net.allocation(), policy_name);
  };
  // Termination: every loop iteration either freezes at least one job or
  // advances to the next segment, so at most n + |bounds| iterations run.
  while (unfrozen_count > 0) {
    if (stop != nullptr && stop->stop_requested()) return interrupted();
    AMF_ASSERT(seg + 1 < bounds.size(), "ran out of level segments");
    const double seg_end = bounds[seg + 1];
    const double t_lo = std::max(level, bounds[seg]);
    const double t_tol = eps * std::max(1.0, seg_end);

    for (int j = 0; j < n; ++j) {
      auto& src = sources[static_cast<std::size_t>(j)];
      if (frozen[static_cast<std::size_t>(j)]) {
        src = {value[static_cast<std::size_t>(j)], 0.0};
      } else {
        const double w = problem.weight(j);
        const double f = floors[static_cast<std::size_t>(j)];
        if (f >= w * seg_end - t_tol) {
          // Floor-clamped throughout this segment.
          src = {f, 0.0};
        } else {
          src = {0.0, w};
        }
      }
    }

    flow::LevelHint* hint = nullptr;
    if (hints != nullptr) {
      if (hints->size() <= static_cast<std::size_t>(round_counter))
        hints->resize(static_cast<std::size_t>(round_counter) + 1);
      hint = &(*hints)[static_cast<std::size_t>(round_counter)];
    }
    auto res = flow::solve_critical_level(net, sources, t_lo, seg_end, eps,
                                          method, stats, hint, stop);
    if (res.status == flow::LevelStatus::kDeadlineExceeded)
      return interrupted();
    // Iteration-capped solves are usable (bisection closed the bracket and
    // re-certified feasibility); a degenerate one returned an allocation
    // that must not be trusted — surface it as non-convergence so a
    // resilience wrapper can retry with a looser eps or another solver.
    AMF_ASSERT(res.status != flow::LevelStatus::kDegenerate,
               "critical-level solve degenerate: progressive filling "
               "cannot converge at this tolerance");
    ++round_counter;
    level = res.level;

    if (res.segment_exhausted) {
      ++seg;
      if (seg + 1 >= bounds.size()) {
        // The last segment's upper bound exceeds every attainable level, so
        // exhausting it is a numerical corner; freeze everyone at their cap.
        for (int j = 0; j < n; ++j) {
          if (frozen[static_cast<std::size_t>(j)]) continue;
          frozen[static_cast<std::size_t>(j)] = 1;
          value[static_cast<std::size_t>(j)] =
              cap_at(floors[static_cast<std::size_t>(j)], problem.weight(j),
                     level);
          --unfrozen_count;
          mark_frozen(j);
        }
      }
      continue;
    }

    int newly = 0;
    for (int j = 0; j < n; ++j) {
      if (frozen[static_cast<std::size_t>(j)]) continue;
      if (!res.can_increase[static_cast<std::size_t>(j)]) {
        frozen[static_cast<std::size_t>(j)] = 1;
        value[static_cast<std::size_t>(j)] =
            cap_at(floors[static_cast<std::size_t>(j)], problem.weight(j),
                   level);
        --unfrozen_count;
        ++newly;
        mark_frozen(j);
      }
    }
    if (newly == 0) {
      // Numerically every job still had a hair of residual path at the
      // critical level. The level cannot rise further, so freeze all.
      for (int j = 0; j < n; ++j) {
        if (frozen[static_cast<std::size_t>(j)]) continue;
        frozen[static_cast<std::size_t>(j)] = 1;
        value[static_cast<std::size_t>(j)] =
            cap_at(floors[static_cast<std::size_t>(j)], problem.weight(j),
                   level);
        --unfrozen_count;
        mark_frozen(j);
      }
    }
  }

  FillCounters& counters = fill_counters();
  counters.fills.add(1);
  if (round_counter > 0) counters.rounds.add(round_counter);

  // Materialize the allocation realizing the frozen aggregates exactly.
  net.solve(value, eps);
  if (stats != nullptr) ++stats->flow_solves;
  if (stop != nullptr && stop->stop_requested() &&
      !net.saturated(eps * 64.0)) {
    // The deadline fired inside the final materialization: the flow is a
    // feasible partial realization of the frozen aggregates.
    if (stats != nullptr) stats->observe(flow::LevelStatus::kDeadlineExceeded);
    return Allocation(net.allocation(), policy_name);
  }
  AMF_ASSERT(net.saturated(eps * 64.0),
             "final frozen aggregates must be feasible");
  return Allocation(net.allocation(), policy_name);
}

Allocation AmfAllocator::allocate(const AllocationProblem& problem) const {
  SolveReport report;
  return allocate_with_report(problem, report);
}

Allocation AmfAllocator::allocate_with_report(const AllocationProblem& problem,
                                              SolveReport& report) const {
  report.reset();
  std::vector<double> zero_floors(static_cast<std::size_t>(problem.jobs()),
                                  0.0);
  flow::LevelSolveStats stats;
  auto allocation = progressive_fill(problem, zero_floors, name(), eps_,
                                     method_, &stats, &report.trace);
  report.flow_solves = stats.flow_solves;
  report.status = stats.worst;
  return allocation;
}

Allocation AmfAllocator::allocate(const AllocationProblem& problem,
                                  SolverWorkspace& workspace) const {
  SolveReport& report = workspace.report();
  report.reset();
  AMF_SPAN("core/allocate");
  const bool warm = workspace.primed();
  (warm ? fill_counters().warm_allocs : fill_counters().cold_allocs).add(1);
  if (!warm) workspace.prime(problem);
  flow::LevelSolveStats stats;
  std::vector<double> zero_floors(static_cast<std::size_t>(problem.jobs()),
                                  0.0);
  auto allocation = progressive_fill(
      problem, zero_floors, name(), eps_, method_, &stats, &report.trace,
      &workspace.transport(),
      workspace.exact_realization() ? nullptr : &workspace.level_hints());
  report.flow_solves = stats.flow_solves;
  report.status = stats.worst;
  report.warm = true;
  workspace.record_solution(allocation);
  workspace.maybe_compact();
  return allocation;
}

}  // namespace amf::core
