// persite.hpp — the paper's baseline: per-site max-min fairness (PSMF).
//
// Each site independently divides its capacity max-min fairly among the
// jobs demanding resource there, ignoring what those jobs receive
// elsewhere. Jobs whose workload concentrates on hot (contended) sites end
// up with small aggregates while jobs on cold sites are barely throttled —
// the imbalance AMF is designed to remove.
#pragma once

#include "core/allocation.hpp"

namespace amf::core {

/// Per-site (weighted) max-min fair allocator.
class PerSiteMaxMin final : public Allocator {
 public:
  Allocation allocate(const AllocationProblem& problem) const override;

  /// Workspace overload: reuses the workspace's scratch buffer for the
  /// per-site cap column (identical results, fewer allocations).
  Allocation allocate(const AllocationProblem& problem,
                      SolverWorkspace& workspace) const override;

  std::string name() const override { return "PSMF"; }

 private:
  Allocation allocate_into(const AllocationProblem& problem,
                           std::vector<double>& caps_scratch) const;
};

}  // namespace amf::core
