#include "core/robust.hpp"

#include <algorithm>
#include <utility>

#include "core/reference.hpp"
#include "core/workspace.hpp"
#include "flow/transport.hpp"
#include "util/error.hpp"

namespace amf::core {

const char* to_string(FallbackTier tier) {
  switch (tier) {
    case FallbackTier::kPrimary:
      return "primary";
    case FallbackTier::kRelaxedEps:
      return "relaxed-eps";
    case FallbackTier::kBisection:
      return "bisection";
    case FallbackTier::kReferenceLp:
      return "reference-lp";
    case FallbackTier::kPerSite:
      return "per-site";
  }
  return "?";
}

std::string FallbackStats::summary() const {
  std::string out = "served=";
  out += std::to_string(calls());
  out += " degraded=";
  out += std::to_string(degraded_calls());
  for (int i = 0; i < kFallbackTierCount; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (served[idx] == 0 && failures[idx] == 0) continue;
    out += " ";
    out += to_string(static_cast<FallbackTier>(i));
    out += ":";
    out += std::to_string(served[idx]);
    out += "/";
    out += std::to_string(failures[idx]);
  }
  out += " last=";
  out += to_string(last);
  return out;
}

namespace {

/// Registry metric name for a tier ('-' is not a legal Prometheus
/// character, tier names use '_' in metrics).
std::string tier_metric(const char* prefix, FallbackTier tier) {
  std::string name = prefix;
  for (const char* p = to_string(tier); *p != '\0'; ++p)
    name.push_back(*p == '-' ? '_' : *p);
  return name;
}

// The single counting mechanism for fallback decisions: registry counters,
// incremented on each wrapper's own shard (so per-instance reads are exact
// even when several wrappers coexist) and merged into the global scrape.
struct FallbackCounters {
  std::array<obs::Counter, kFallbackTierCount> served;
  std::array<obs::Counter, kFallbackTierCount> failures;
  obs::Counter tier_transitions;
  FallbackCounters() {
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kFallbackTierCount; ++i) {
      const auto tier = static_cast<FallbackTier>(i);
      const auto idx = static_cast<std::size_t>(i);
      served[idx] =
          reg.counter(tier_metric("amf_core_fallback_served_", tier),
                      "allocation events served by this tier");
      failures[idx] =
          reg.counter(tier_metric("amf_core_fallback_failures_", tier),
                      "tier attempts rejected (threw or failed the audit)");
    }
    tier_transitions =
        reg.counter("amf_core_tier_transitions",
                    "events whose serving tier differed from the previous "
                    "event's");
  }
};

FallbackCounters& fb_counters() {
  static FallbackCounters counters;
  return counters;
}

}  // namespace

RobustAllocator::RobustAllocator(const Allocator& primary, RobustConfig config)
    : primary_(primary),
      config_(config),
      relaxed_(config.relaxed_eps, flow::LevelMethod::kCutNewton),
      bisection_(config.relaxed_eps, flow::LevelMethod::kBisection),
      telemetry_(std::make_shared<Telemetry>()) {
  AMF_REQUIRE(config.relaxed_eps > 0.0, "relaxed_eps must be positive");
  AMF_REQUIRE(config.feasibility_eps > 0.0,
              "feasibility_eps must be positive");
  telemetry_->shard = obs::Registry::global().new_shard();
}

FallbackStats RobustAllocator::fallback_stats() const {
  FallbackCounters& counters = fb_counters();
  FallbackStats stats;
  for (std::size_t i = 0; i < kFallbackTierCount; ++i) {
    stats.served[i] =
        static_cast<long>(counters.served[i].value_in(*telemetry_->shard));
    stats.failures[i] =
        static_cast<long>(counters.failures[i].value_in(*telemetry_->shard));
  }
  stats.last = telemetry_->last;
  stats.last_error = telemetry_->last_error;
  return stats;
}

void RobustAllocator::reset_stats() {
  obs::Registry::global().retire(*telemetry_->shard);
  telemetry_->last = FallbackTier::kPrimary;
  telemetry_->last_error.clear();
}

std::string RobustAllocator::name() const {
  return "Robust(" + primary_.name() + ")";
}

namespace {

/// Tier 4: the LP leximin oracle produces aggregates; the transportation
/// network materializes a per-site split for them. Shares no code with
/// the parametric flow path that tiers 1-3 rely on.
Allocation lp_tier(const AllocationProblem& problem) {
  auto aggregates = lp_max_min_aggregates(problem);
  // LP-tolerance slack can leave the aggregates a hair outside the
  // polytope; shave them until the flow realization accepts.
  for (double shave : {0.0, 1e-9, 1e-7}) {
    std::vector<double> target(aggregates);
    for (double& a : target) a *= (1.0 - shave);
    auto realized = flow::allocation_for_aggregates(
        problem.demands(), problem.capacities(), target);
    if (realized.has_value())
      return Allocation(std::move(*realized), "Robust/reference-lp");
  }
  throw util::InternalError("LP aggregates not realizable as an allocation");
}

}  // namespace

Allocation RobustAllocator::allocate(const AllocationProblem& problem) const {
  return allocate_impl(problem, nullptr);
}

Allocation RobustAllocator::allocate(const AllocationProblem& problem,
                                     SolverWorkspace& workspace) const {
  return allocate_impl(problem, &workspace);
}

Allocation RobustAllocator::allocate_impl(const AllocationProblem& problem,
                                          SolverWorkspace* workspace) const {
  struct Tier {
    FallbackTier id;
    const Allocator* policy;  // null for the LP tier
  };
  const Tier tiers[] = {
      {FallbackTier::kPrimary, &primary_},
      {FallbackTier::kRelaxedEps, &relaxed_},
      {FallbackTier::kBisection, &bisection_},
      {FallbackTier::kReferenceLp, nullptr},
      {FallbackTier::kPerSite, &persite_},
  };

  FallbackCounters& counters = fb_counters();
  Telemetry& telemetry = *telemetry_;
  for (const Tier& tier : tiers) {
    const auto idx = static_cast<std::size_t>(tier.id);
    const bool is_last = tier.id == FallbackTier::kPerSite;
    try {
      flow::LevelStatus status = flow::LevelStatus::kConverged;
      Allocation result;
      if (tier.policy == nullptr) {
        result = lp_tier(problem);
      } else if (workspace != nullptr) {
        // A network warmed under another tier's parameters must not leak
        // into this tier's solve.
        if (workspace->serving_tier != static_cast<int>(tier.id))
          workspace->invalidate();
        result = tier.policy->allocate(problem, *workspace);
        status = workspace->report().status;
      } else if (const auto* amf =
                     dynamic_cast<const AmfAllocator*>(tier.policy)) {
        SolveReport report;
        result = amf->allocate_with_report(problem, report);
        status = report.status;
      } else {
        result = tier.policy->allocate(problem);
      }
      if (config_.escalate_on_iteration_cap && !is_last &&
          dynamic_cast<const AmfAllocator*>(tier.policy) != nullptr &&
          status != flow::LevelStatus::kConverged) {
        counters.failures[idx].add_to(*telemetry.shard, 1);
        telemetry.last_error = "iteration-capped level solve";
        continue;
      }
      // Audit before accepting: a tier that silently returns an
      // infeasible matrix is as broken as one that throws.
      if (!result.feasible_for(problem, config_.feasibility_eps)) {
        AMF_ASSERT(!is_last, "per-site fallback produced an infeasible "
                             "allocation");
        counters.failures[idx].add_to(*telemetry.shard, 1);
        telemetry.last_error = "infeasible allocation from tier";
        continue;
      }
      counters.served[idx].add_to(*telemetry.shard, 1);
      if (telemetry.last != tier.id) counters.tier_transitions.add(1);
      telemetry.last = tier.id;
      if (workspace != nullptr)
        workspace->serving_tier = static_cast<int>(tier.id);
      return result;
    } catch (const util::InternalError& e) {
      if (is_last) throw;  // nothing below the per-site tier
      counters.failures[idx].add_to(*telemetry.shard, 1);
      telemetry.last_error = e.what();
    }
  }
  AMF_ASSERT(false, "fallback chain exhausted");  // unreachable
}

}  // namespace amf::core
