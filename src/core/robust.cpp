#include "core/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "core/reference.hpp"
#include "core/single_site.hpp"
#include "core/workspace.hpp"
#include "flow/transport.hpp"
#include "util/error.hpp"

namespace amf::core {

const char* to_string(FallbackTier tier) {
  switch (tier) {
    case FallbackTier::kPrimary:
      return "primary";
    case FallbackTier::kRelaxedEps:
      return "relaxed-eps";
    case FallbackTier::kBisection:
      return "bisection";
    case FallbackTier::kReferenceLp:
      return "reference-lp";
    case FallbackTier::kPerSite:
      return "per-site";
    case FallbackTier::kSalvage:
      return "salvage";
  }
  return "?";
}

std::string FallbackStats::summary() const {
  std::string out = "served=";
  out += std::to_string(calls());
  out += " degraded=";
  out += std::to_string(degraded_calls());
  for (int i = 0; i < kFallbackTierCount; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (served[idx] == 0 && failures[idx] == 0) continue;
    out += " ";
    out += to_string(static_cast<FallbackTier>(i));
    out += ":";
    out += std::to_string(served[idx]);
    out += "/";
    out += std::to_string(failures[idx]);
  }
  out += " last=";
  out += to_string(last);
  return out;
}

void RobustConfig::validate() const {
  AMF_REQUIRE(std::isfinite(relaxed_eps) && relaxed_eps > 0.0,
              "relaxed_eps must be finite and positive");
  AMF_REQUIRE(std::isfinite(feasibility_eps) && feasibility_eps > 0.0,
              "feasibility_eps must be finite and positive");
  AMF_REQUIRE(std::isfinite(time_budget_ms) && time_budget_ms >= 0.0,
              "time_budget_ms must be finite and >= 0");
  AMF_REQUIRE(std::isfinite(tier_budget_share) && tier_budget_share > 0.0 &&
                  tier_budget_share <= 1.0,
              "tier_budget_share must be in (0, 1]");
}

namespace {

/// Registry metric name for a tier ('-' is not a legal Prometheus
/// character, tier names use '_' in metrics).
std::string tier_metric(const char* prefix, FallbackTier tier) {
  std::string name = prefix;
  for (const char* p = to_string(tier); *p != '\0'; ++p)
    name.push_back(*p == '-' ? '_' : *p);
  return name;
}

// The single counting mechanism for fallback decisions: registry counters,
// incremented on each wrapper's own shard (so per-instance reads are exact
// even when several wrappers coexist) and merged into the global scrape.
struct FallbackCounters {
  std::array<obs::Counter, kFallbackTierCount> served;
  std::array<obs::Counter, kFallbackTierCount> failures;
  std::array<obs::Counter, kFallbackTierCount> deadline_exceeded;
  obs::Counter tier_transitions;
  obs::Counter deadline_events;
  obs::Histogram budget_remaining;
  FallbackCounters() {
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kFallbackTierCount; ++i) {
      const auto tier = static_cast<FallbackTier>(i);
      const auto idx = static_cast<std::size_t>(i);
      served[idx] =
          reg.counter(tier_metric("amf_core_fallback_served_", tier),
                      "allocation events served by this tier");
      failures[idx] =
          reg.counter(tier_metric("amf_core_fallback_failures_", tier),
                      "tier attempts rejected (threw or failed the audit)");
      deadline_exceeded[idx] =
          reg.counter(tier_metric("amf_core_deadline_exceeded_", tier),
                      "tier attempts interrupted by the event time budget");
    }
    tier_transitions =
        reg.counter("amf_core_tier_transitions",
                    "events whose serving tier differed from the previous "
                    "event's");
    deadline_events =
        reg.counter("amf_core_deadline_events",
                    "allocation events in which at least one tier was "
                    "deadline-interrupted");
    budget_remaining =
        reg.histogram("amf_core_budget_remaining_ms",
                      "time-budget headroom (ms) left when the chain served "
                      "a budgeted allocation event");
  }
};

FallbackCounters& fb_counters() {
  static FallbackCounters counters;
  return counters;
}

}  // namespace

RobustAllocator::RobustAllocator(const Allocator& primary, RobustConfig config)
    : primary_(primary),
      config_(config),
      relaxed_(config.relaxed_eps, flow::LevelMethod::kCutNewton),
      bisection_(config.relaxed_eps, flow::LevelMethod::kBisection),
      telemetry_(std::make_shared<Telemetry>()) {
  config.validate();
  telemetry_->shard = obs::Registry::global().new_shard();
}

FallbackStats RobustAllocator::fallback_stats() const {
  FallbackCounters& counters = fb_counters();
  FallbackStats stats;
  for (std::size_t i = 0; i < kFallbackTierCount; ++i) {
    stats.served[i] =
        static_cast<long>(counters.served[i].value_in(*telemetry_->shard));
    stats.failures[i] =
        static_cast<long>(counters.failures[i].value_in(*telemetry_->shard));
  }
  stats.last = telemetry_->last;
  stats.last_error = telemetry_->last_error;
  return stats;
}

DeadlineStats RobustAllocator::deadline_stats() const {
  FallbackCounters& counters = fb_counters();
  DeadlineStats stats;
  for (std::size_t i = 0; i < kFallbackTierCount; ++i)
    stats.deadline_exceeded[i] = static_cast<long>(
        counters.deadline_exceeded[i].value_in(*telemetry_->shard));
  stats.deadline_events = telemetry_->deadline_events;
  stats.worst_salvage_gap = telemetry_->worst_salvage_gap;
  return stats;
}

void RobustAllocator::reset_stats() {
  obs::Registry::global().retire(*telemetry_->shard);
  telemetry_->last = FallbackTier::kPrimary;
  telemetry_->last_error.clear();
  telemetry_->deadline_events = 0;
  telemetry_->worst_salvage_gap = 0.0;
}

std::string RobustAllocator::name() const {
  return "Robust(" + primary_.name() + ")";
}

namespace {

/// Tier 4: the LP leximin oracle produces aggregates; the transportation
/// network materializes a per-site split for them. Shares no code with
/// the parametric flow path that tiers 1-3 rely on.
Allocation lp_tier(const AllocationProblem& problem) {
  auto aggregates = lp_max_min_aggregates(problem);
  // LP-tolerance slack can leave the aggregates a hair outside the
  // polytope; shave them until the flow realization accepts.
  for (double shave : {0.0, 1e-9, 1e-7}) {
    std::vector<double> target(aggregates);
    for (double& a : target) a *= (1.0 - shave);
    auto realized = flow::allocation_for_aggregates(
        problem.demands(), problem.capacities(), target);
    if (realized.has_value())
      return Allocation(std::move(*realized), "Robust/reference-lp");
  }
  throw util::InternalError("LP aggregates not realizable as an allocation");
}

/// Completes a deadline-interrupted partial fill into a full allocation:
/// per-site water-filling distributes each site's residual capacity over
/// the residual demands on top of the partial shares. The partial matrix
/// already respects demands and capacities (flow invariants), so the sum
/// does too — levels frozen before the interrupt are preserved, everyone
/// else gets a closed-form fair top-up.
Allocation complete_salvage(const AllocationProblem& problem,
                            const Allocation& partial) {
  const int n = problem.jobs();
  const int m = problem.sites();
  Matrix shares = partial.shares();
  std::vector<double> residual(static_cast<std::size_t>(n));
  for (int s = 0; s < m; ++s) {
    double used = 0.0;
    for (int j = 0; j < n; ++j)
      used += shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
    const double cap_left = std::max(0.0, problem.capacity(s) - used);
    for (int j = 0; j < n; ++j)
      residual[static_cast<std::size_t>(j)] = std::max(
          0.0, problem.demand(j, s) -
                   shares[static_cast<std::size_t>(j)]
                         [static_cast<std::size_t>(s)]);
    auto extra = water_fill(residual, problem.weights(), cap_left);
    for (int j = 0; j < n; ++j)
      shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] +=
          extra[static_cast<std::size_t>(j)];
  }
  return Allocation(std::move(shares), "Robust/salvage");
}

/// Relative fairness gap of a salvage allocation against the interrupted
/// tier's last frozen level: how far the worst served job (among jobs
/// that can receive anything at all) fell below it, clamped to [0, 1].
double salvage_gap(const AllocationProblem& problem, const Allocation& alloc,
                   double ref_level) {
  if (ref_level <= 0.0) return 0.0;
  const double tol = 1e-12 * std::max(1.0, problem.scale());
  double min_level = std::numeric_limits<double>::infinity();
  for (int j = 0; j < problem.jobs(); ++j) {
    double reachable = 0.0;
    for (int s = 0; s < problem.sites(); ++s)
      reachable += std::min(problem.demand(j, s), problem.capacity(s));
    if (reachable <= tol) continue;  // structurally-zero jobs excluded
    min_level = std::min(min_level, alloc.aggregate(j) / problem.weight(j));
  }
  if (!std::isfinite(min_level)) return 0.0;
  return std::clamp((ref_level - min_level) / ref_level, 0.0, 1.0);
}

}  // namespace

Allocation RobustAllocator::allocate(const AllocationProblem& problem) const {
  return allocate_impl(problem, nullptr);
}

Allocation RobustAllocator::allocate(const AllocationProblem& problem,
                                     SolverWorkspace& workspace) const {
  return allocate_impl(problem, &workspace);
}

Allocation RobustAllocator::allocate_impl(const AllocationProblem& problem,
                                          SolverWorkspace* workspace) const {
  struct Tier {
    FallbackTier id;
    const Allocator* policy;  // null for the LP tier
  };
  const Tier tiers[] = {
      {FallbackTier::kPrimary, &primary_},
      {FallbackTier::kRelaxedEps, &relaxed_},
      {FallbackTier::kBisection, &bisection_},
      {FallbackTier::kReferenceLp, nullptr},
      {FallbackTier::kPerSite, &persite_},
  };

  // The overall stop for this event: the config budget merged with any
  // ambient deadline installed by the caller, plus whichever cancel flag
  // exists (the config's wins over the ambient one).
  const util::StopToken* ambient = util::ambient_stop();
  util::Deadline overall = config_.time_budget_ms > 0.0
                               ? util::Deadline::after_ms(config_.time_budget_ms)
                               : util::Deadline::never();
  if (ambient != nullptr)
    overall = util::Deadline::earlier(overall, ambient->deadline());
  util::CancelToken cancel = config_.cancel.valid()
                                 ? config_.cancel
                                 : (ambient != nullptr ? ambient->cancel()
                                                       : util::CancelToken{});
  const util::StopToken overall_stop{overall, cancel};
  const bool budgeted = overall_stop.enabled();

  // Best salvage candidate: the first feasible partial fill left behind by
  // a deadline-interrupted AMF tier, with the highest level it froze.
  struct SalvageCandidate {
    bool has = false;
    Allocation partial;
    double ref_level = 0.0;
  } salvage;
  bool any_deadline = false;

  FallbackCounters& counters = fb_counters();
  Telemetry& telemetry = *telemetry_;

  auto count_deadline = [&](std::size_t idx, const char* what) {
    counters.failures[idx].add_to(*telemetry.shard, 1);
    counters.deadline_exceeded[idx].add_to(*telemetry.shard, 1);
    telemetry.last_error = what;
    any_deadline = true;
  };
  auto serve = [&](FallbackTier id, Allocation result) {
    const auto sidx = static_cast<std::size_t>(id);
    counters.served[sidx].add_to(*telemetry.shard, 1);
    if (telemetry.last != id) counters.tier_transitions.add(1);
    telemetry.last = id;
    if (any_deadline) {
      counters.deadline_events.add_to(*telemetry.shard, 1);
      ++telemetry.deadline_events;
    }
    if (!overall.unlimited())
      counters.budget_remaining.observe_in(*telemetry.shard,
                                           overall.remaining_ms());
    if (workspace != nullptr) workspace->serving_tier = static_cast<int>(id);
    return result;
  };

  for (const Tier& tier : tiers) {
    const auto idx = static_cast<std::size_t>(tier.id);
    const bool is_last = tier.id == FallbackTier::kPerSite;

    if (is_last && salvage.has) {
      // The budget ran out with a feasible partial fill in hand: complete
      // it closed-form instead of discarding the frozen levels.
      Allocation completed = complete_salvage(problem, salvage.partial);
      if (completed.feasible_for(problem, config_.feasibility_eps)) {
        telemetry.worst_salvage_gap =
            std::max(telemetry.worst_salvage_gap,
                     salvage_gap(problem, completed, salvage.ref_level));
        return serve(FallbackTier::kSalvage, std::move(completed));
      }
      counters.failures[static_cast<std::size_t>(FallbackTier::kSalvage)]
          .add_to(*telemetry.shard, 1);
      telemetry.last_error = "salvage completion failed the audit";
    }

    // Budget gate: once the overall budget is gone, budgeted tiers are
    // skipped outright (the LP tier in particular builds its whole tableau
    // before it first polls) and the chain falls through to salvage or the
    // exempt per-site tier. A skipped tier never ran, so it is not counted
    // as a failure.
    if (!is_last && budgeted && overall_stop.stop_requested()) continue;

    // Budgeted tiers run under a slice of the remaining budget, installed
    // ambiently so it reaches the solvers through the virtual Allocator
    // interface. The per-site tier is exempt: closed-form, never polls.
    std::optional<util::ScopedStop> scoped;
    util::StopToken tier_stop;
    if (!is_last && budgeted) {
      util::Deadline slice = overall;
      if (!overall.unlimited())
        slice = util::Deadline::earlier(
            overall, util::Deadline::after_ms(overall.remaining_ms() *
                                              config_.tier_budget_share));
      tier_stop = util::StopToken{slice, cancel};
      scoped.emplace(tier_stop);
    }

    try {
      flow::LevelStatus status = flow::LevelStatus::kConverged;
      const FillTrace* trace = nullptr;
      SolveReport local_report;
      Allocation result;
      if (tier.policy == nullptr) {
        result = lp_tier(problem);
      } else if (workspace != nullptr) {
        // A network warmed under another tier's parameters must not leak
        // into this tier's solve.
        if (workspace->serving_tier != static_cast<int>(tier.id))
          workspace->invalidate();
        result = tier.policy->allocate(problem, *workspace);
        status = workspace->report().status;
        trace = &workspace->report().trace;
      } else if (const auto* amf =
                     dynamic_cast<const AmfAllocator*>(tier.policy)) {
        result = amf->allocate_with_report(problem, local_report);
        status = local_report.status;
        trace = &local_report.trace;
      } else {
        result = tier.policy->allocate(problem);
      }
      if (status == flow::LevelStatus::kDeadlineExceeded) {
        // Interrupted tier = failed tier, but its partial fill may still
        // be worth finishing if the whole budget runs out.
        count_deadline(idx, "tier interrupted by the time budget");
        // The network holds a partial fill; never reuse it warm.
        if (workspace != nullptr) workspace->invalidate();
        if (!salvage.has &&
            result.feasible_for(problem, config_.feasibility_eps)) {
          double ref = 0.0;
          if (trace != nullptr)
            for (double level : trace->freeze_level) ref = std::max(ref, level);
          salvage = {true, std::move(result), ref};
        }
        continue;
      }
      if (config_.escalate_on_iteration_cap && !is_last &&
          dynamic_cast<const AmfAllocator*>(tier.policy) != nullptr &&
          status != flow::LevelStatus::kConverged) {
        counters.failures[idx].add_to(*telemetry.shard, 1);
        telemetry.last_error = "iteration-capped level solve";
        continue;
      }
      // Audit before accepting: a tier that silently returns an
      // infeasible matrix is as broken as one that throws.
      if (!result.feasible_for(problem, config_.feasibility_eps)) {
        AMF_ASSERT(!is_last, "per-site fallback produced an infeasible "
                             "allocation");
        counters.failures[idx].add_to(*telemetry.shard, 1);
        telemetry.last_error = "infeasible allocation from tier";
        continue;
      }
      return serve(tier.id, std::move(result));
    } catch (const util::DeadlineExceeded& e) {
      if (is_last) throw;  // unreachable: the per-site tier never polls
      count_deadline(idx, e.what());
      if (workspace != nullptr) workspace->invalidate();
    } catch (const util::InternalError& e) {
      if (is_last) throw;  // nothing below the per-site tier
      counters.failures[idx].add_to(*telemetry.shard, 1);
      telemetry.last_error = e.what();
      // A solver driven into a corner by its stop token can surface as an
      // internal invariant failure; classify it as a deadline when the
      // tier's own stop had fired.
      if (budgeted && tier_stop.stop_requested()) {
        counters.deadline_exceeded[idx].add_to(*telemetry.shard, 1);
        any_deadline = true;
        if (workspace != nullptr) workspace->invalidate();
      }
    }
  }
  // Unreachable: the per-site tier either serves or rethrows. A plain
  // throw (not AMF_ASSERT) so -Wreturn-type sees the function never
  // falls through even at -O0.
  throw util::InternalError("fallback chain exhausted");
}

}  // namespace amf::core
