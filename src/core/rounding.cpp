#include "core/rounding.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace amf::core {

Allocation round_to_slots(const AllocationProblem& problem,
                          const Allocation& fractional) {
  const int n = problem.jobs();
  const int m = problem.sites();
  AMF_REQUIRE(fractional.jobs() == n, "allocation/problem size mismatch");
  AMF_REQUIRE(n == 0 || fractional.sites() == m,
              "allocation/problem site mismatch");
  const std::string policy = fractional.policy().empty()
                                 ? std::string("slots")
                                 : fractional.policy() + "+slots";
  if (n == 0) return Allocation(Matrix{}, policy);

  Matrix rounded(static_cast<std::size_t>(n),
                 std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int s = 0; s < m; ++s) {
    // Floor everything; collect remainders.
    double site_total = 0.0;
    std::vector<std::pair<double, int>> remainders;  // (remainder, job)
    std::vector<double> floors(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      double v = std::max(0.0, fractional.share(j, s));
      double f = std::floor(v + 1e-9);
      floors[static_cast<std::size_t>(j)] = f;
      site_total += v;
      double remainder = v - f;
      if (remainder > 1e-9) remainders.emplace_back(remainder, j);
    }
    // Whole slots the site can still hand out: the fractional usage we
    // floored away, bounded by the site's integral capacity.
    double site_cap = std::floor(problem.capacity(s) + 1e-9);
    double floor_sum = std::accumulate(floors.begin(), floors.end(), 0.0);
    int budget = static_cast<int>(
        std::min(std::floor(site_total + 1e-9), site_cap) - floor_sum);

    // Largest remainders first; ties broken by job index (determinism).
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (const auto& [remainder, j] : remainders) {
      if (budget <= 0) break;
      if (floors[static_cast<std::size_t>(j)] + 1.0 <=
          problem.demand(j, s) + 1e-9) {
        floors[static_cast<std::size_t>(j)] += 1.0;
        --budget;
      }
    }
    for (int j = 0; j < n; ++j)
      rounded[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          floors[static_cast<std::size_t>(j)];
  }
  return Allocation(std::move(rounded), policy);
}

}  // namespace amf::core
