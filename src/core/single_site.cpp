#include "core/single_site.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace amf::core {

double water_level(const std::vector<double>& caps,
                   const std::vector<double>& weights, double capacity) {
  AMF_REQUIRE(caps.size() == weights.size(),
              "caps/weights length mismatch");
  AMF_REQUIRE(capacity >= 0.0, "capacity must be non-negative");
  double total = 0.0;
  for (std::size_t j = 0; j < caps.size(); ++j) {
    AMF_REQUIRE(caps[j] >= 0.0, "caps must be non-negative");
    AMF_REQUIRE(weights[j] > 0.0, "weights must be positive");
    total += caps[j];
  }
  if (total <= capacity) return std::numeric_limits<double>::infinity();

  // Process jobs in increasing order of saturation level cap/weight; a job
  // saturates once the level passes its cap/weight.
  std::vector<std::size_t> order(caps.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return caps[a] * weights[b] < caps[b] * weights[a];
  });

  double remaining = capacity;
  double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t j : order) {
    double sat_level = caps[j] / weights[j];
    if (sat_level * weight_sum <= remaining) {
      // Job j saturates below the level the rest can sustain.
      remaining -= caps[j];
      weight_sum -= weights[j];
    } else {
      return remaining / weight_sum;
    }
  }
  // total > capacity guarantees the loop returns before exhausting jobs.
  ::amf::util::detail::throw_internal("unreachable", __FILE__, __LINE__,
                                      "water_level fell through");
}

std::vector<double> water_fill(const std::vector<double>& caps,
                               const std::vector<double>& weights,
                               double capacity) {
  double level = water_level(caps, weights, capacity);
  std::vector<double> a(caps.size());
  for (std::size_t j = 0; j < caps.size(); ++j)
    a[j] = std::min(caps[j], weights[j] * level);
  return a;
}

std::vector<double> water_fill(const std::vector<double>& caps,
                               double capacity) {
  return water_fill(caps, std::vector<double>(caps.size(), 1.0), capacity);
}

std::vector<double> leontief_water_fill(
    const std::vector<double>& task_caps,
    const std::vector<std::vector<double>>& profiles,
    const std::vector<double>& capacities, double scale, double eps) {
  const std::size_t n = task_caps.size();
  const std::size_t rc = capacities.size();
  AMF_REQUIRE(profiles.size() == n, "task_caps/profiles length mismatch");
  for (const auto& row : profiles)
    AMF_REQUIRE(row.size() == rc, "profile row width != resource count");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Site-local dominant share per task; inf when the site lacks a
  // resource the job needs (the job cannot run here).
  std::vector<double> dom(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double d = 0.0;
    for (std::size_t r = 0; r < rc; ++r) {
      double need = profiles[j][r];
      if (need <= 0.0) continue;
      double cap = capacities[r];
      d = cap <= 0.0 ? kInf : std::max(d, need / cap);
    }
    dom[j] = d;
  }

  std::vector<char> frozen(n, 0);
  std::vector<double> tasks(n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    if (task_caps[j] <= 0.0 || !std::isfinite(dom[j]) || dom[j] <= 0.0)
      frozen[j] = 1;

  // tasks of unfrozen j at level t: min(cap, t / dom_j).
  auto tasks_at = [&](double t) {
    std::vector<double> out(tasks);
    for (std::size_t j = 0; j < n; ++j)
      if (!frozen[j]) out[j] = std::min(task_caps[j], t / dom[j]);
    return out;
  };
  auto usage = [&](const std::vector<double>& task_vec, std::size_t r) {
    double used = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      used += task_vec[j] * profiles[j][r];
    return used;
  };
  auto level_feasible = [&](double t) {
    auto task_vec = tasks_at(t);
    for (std::size_t r = 0; r < rc; ++r)
      if (usage(task_vec, r) > capacities[r] + eps * scale) return false;
    return true;
  };

  double level = 0.0;
  // Each round freezes at least one job, so at most n rounds run.
  for (std::size_t round = 0; round < n; ++round) {
    bool any_unfrozen = false;
    for (char f : frozen) any_unfrozen |= !f;
    if (!any_unfrozen) break;

    if (level_feasible(1.0)) {
      // Every remaining job reaches its task cap before any resource
      // saturates (a dominant share cannot exceed 1).
      tasks = tasks_at(1.0);
      break;
    }
    double lo = level, hi = 1.0;
    for (int it = 0; it < 64; ++it) {
      double mid = 0.5 * (lo + hi);
      (level_feasible(mid) ? lo : hi) = mid;
    }
    level = lo;
    tasks = tasks_at(level);

    // Freeze jobs at their cap or touching a saturated resource.
    const double tol = 1e-7 * scale;
    std::vector<char> saturated(rc, 0);
    for (std::size_t r = 0; r < rc; ++r)
      saturated[r] = usage(tasks, r) >= capacities[r] - tol;
    int newly = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (frozen[j]) continue;
      bool freeze = tasks[j] >= task_caps[j] - tol;
      for (std::size_t r = 0; r < rc && !freeze; ++r)
        freeze = saturated[r] && profiles[j][r] > 0.0;
      if (freeze) {
        frozen[j] = 1;
        ++newly;
      }
    }
    if (newly == 0) break;  // numerically nothing moves; stop here
  }
  return tasks;
}

}  // namespace amf::core
