#include "core/single_site.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace amf::core {

double water_level(const std::vector<double>& caps,
                   const std::vector<double>& weights, double capacity) {
  AMF_REQUIRE(caps.size() == weights.size(),
              "caps/weights length mismatch");
  AMF_REQUIRE(capacity >= 0.0, "capacity must be non-negative");
  double total = 0.0;
  for (std::size_t j = 0; j < caps.size(); ++j) {
    AMF_REQUIRE(caps[j] >= 0.0, "caps must be non-negative");
    AMF_REQUIRE(weights[j] > 0.0, "weights must be positive");
    total += caps[j];
  }
  if (total <= capacity) return std::numeric_limits<double>::infinity();

  // Process jobs in increasing order of saturation level cap/weight; a job
  // saturates once the level passes its cap/weight.
  std::vector<std::size_t> order(caps.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return caps[a] * weights[b] < caps[b] * weights[a];
  });

  double remaining = capacity;
  double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t j : order) {
    double sat_level = caps[j] / weights[j];
    if (sat_level * weight_sum <= remaining) {
      // Job j saturates below the level the rest can sustain.
      remaining -= caps[j];
      weight_sum -= weights[j];
    } else {
      return remaining / weight_sum;
    }
  }
  // total > capacity guarantees the loop returns before exhausting jobs.
  ::amf::util::detail::throw_internal("unreachable", __FILE__, __LINE__,
                                      "water_level fell through");
}

std::vector<double> water_fill(const std::vector<double>& caps,
                               const std::vector<double>& weights,
                               double capacity) {
  double level = water_level(caps, weights, capacity);
  std::vector<double> a(caps.size());
  for (std::size_t j = 0; j < caps.size(); ++j)
    a[j] = std::min(caps[j], weights[j] * level);
  return a;
}

std::vector<double> water_fill(const std::vector<double>& caps,
                               double capacity) {
  return water_fill(caps, std::vector<double>(caps.size(), 1.0), capacity);
}

}  // namespace amf::core
