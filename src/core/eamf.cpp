#include "core/eamf.hpp"

#include "core/amf.hpp"

namespace amf::core {

std::vector<double> EnhancedAmfAllocator::sharing_floors(
    const AllocationProblem& problem) {
  std::vector<double> floors(static_cast<std::size_t>(problem.jobs()));
  for (int j = 0; j < problem.jobs(); ++j)
    floors[static_cast<std::size_t>(j)] = problem.equal_split_share(j);
  return floors;
}

Allocation EnhancedAmfAllocator::allocate(
    const AllocationProblem& problem) const {
  return progressive_fill(problem, sharing_floors(problem), name(), eps_);
}

}  // namespace amf::core
