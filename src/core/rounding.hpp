// rounding.hpp — integral slot rounding for fractional allocations.
//
// Real clusters hand out whole slots/containers. This rounds a
// fractional allocation to integers per site with the largest-remainder
// method: floor every share, then distribute the site's remaining whole
// slots to the largest fractional remainders (never exceeding a demand
// cap or the site's integral capacity). Each job's share moves by less
// than one slot per site, so aggregates stay within `sites()` slots of
// the fair fractional optimum — the fairness loss of integrality is
// bounded and tested.
#pragma once

#include "core/allocation.hpp"

namespace amf::core {

/// Rounds `fractional` to whole slots. The result satisfies
///   * every share is a non-negative integer,
///   * share <= demand cap (+epsilon) cell-wise,
///   * per-site totals <= floor(capacity),
///   * |rounded - fractional| < 1 per cell.
/// The policy name becomes fractional.policy() + "+slots".
Allocation round_to_slots(const AllocationProblem& problem,
                          const Allocation& fractional);

}  // namespace amf::core
