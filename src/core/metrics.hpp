// metrics.hpp — the evaluation metrics reported by the paper: balance of
// resource allocation (fairness indices over aggregates) and job
// completion time statistics.
#pragma once

#include "core/allocation.hpp"

namespace amf::core {

/// Balance of the (weight-normalized) aggregate allocation vector.
struct FairnessReport {
  double jain = 1.0;        ///< Jain's fairness index in (0, 1].
  double min_max = 1.0;     ///< min/max ratio of normalized aggregates.
  double cv = 0.0;          ///< coefficient of variation.
  double gini = 0.0;        ///< Gini coefficient.
  double min_aggregate = 0.0;
  double max_aggregate = 0.0;
  double mean_aggregate = 0.0;
  double utilization = 0.0;  ///< fraction of total capacity allocated.
};

FairnessReport fairness_report(const AllocationProblem& problem,
                               const Allocation& allocation);

/// Completion-time statistics (requires workloads). Jobs with infinite
/// JCT are counted in `unbounded` and excluded from the finite statistics.
struct JctReport {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean_slowdown = 1.0;  ///< mean of JCT / (W_j / A_j).
  int unbounded = 0;           ///< jobs whose JCT is infinite.
};

JctReport jct_report(const AllocationProblem& problem,
                     const Allocation& allocation);

/// Lexicographic comparison of two aggregate vectors after ascending sort:
/// negative if a < b (a is lexicographically worse), 0 if equal within
/// tol, positive if a > b. The max-min fair vector maximizes this order.
int lexicographic_compare(std::vector<double> a, std::vector<double> b,
                          double tol = 1e-9);

}  // namespace amf::core
