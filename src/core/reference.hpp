// reference.hpp — independent correctness oracles for the allocators.
//
// Two ways to validate an AMF result without trusting the AMF code path:
//   1. the *definitional* fixed-point test — a vector is (weighted) max-min
//      fair iff it is feasible and no job's aggregate can be raised while
//      every weakly-worse-off job keeps its value (each probe is one flow
//      feasibility check);
//   2. exhaustive lexicographic search over an integer allocation grid for
//      tiny instances — the continuous optimum must weakly dominate every
//      grid point, and equals the grid optimum when it is integral.
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace amf::core {

/// Definitional test: is `aggregates` the weighted lex max-min fair vector
/// for the instance? `tol` is relative to the instance scale. Exact up to
/// the flow tolerance; cost is jobs+1 max-flow solves.
bool is_max_min_fair(const AllocationProblem& problem,
                     const std::vector<double>& aggregates,
                     double tol = 1e-6);

/// Exhaustive search over integer allocations a[j][s] ∈ {0, 1, ...,
/// floor(min(d, C))} (site sums capped by floor(C)); returns the
/// lexicographically max-min best aggregate vector found. Intended for
/// instances with at most ~6 demand cells; throws if the grid would
/// exceed `max_points` (default 10^7) enumeration points.
std::vector<double> brute_force_max_min_aggregates(
    const AllocationProblem& problem, long long max_points = 10'000'000);

/// A third, fully independent computation of the AMF aggregate vector:
/// sequential leximin over the transportation polytope with the LP
/// substrate (Ogryczak procedure — maximize the common minimum with one
/// level LP, fix the jobs pinned at it via per-job feasibility LPs,
/// recurse). Exact up to LP tolerance; O(n) LPs of size n·m. Slower than
/// the flow-based allocator but shares none of its code paths — the
/// strongest differential oracle in the test suite.
std::vector<double> lp_max_min_aggregates(const AllocationProblem& problem);

}  // namespace amf::core
