// jct.hpp — job completion times and the paper's completion-time add-on.
//
// With rates held constant, the site-s part of job j finishes at
// w[j][s] / a[j][s]; the job finishes when its slowest site does. The AMF
// aggregate vector is unique, but many per-site splits realize it, and
// they differ wildly in completion time: a split that starves the site
// where a job's work actually lives can stretch its JCT arbitrarily. The
// add-on re-distributes the per-site shares — keeping every aggregate
// exactly — to (approximately lexicographically) minimize completion
// times by progressive filling on per-job speed fractions: all jobs'
// guaranteed rates rise together toward their proportional ideals
// (feasibility = max-flow with lower bounds), jobs that hit a tight cut
// are frozen at their achievable fraction, and the rest keep rising.
// A final per-job closed-form refinement spends any leftover headroom.
//
// One structural fact this surfaces: preserving AMF aggregates exactly
// can force a job's rate at a monopolized hot site to zero (its static
// JCT is then unavoidably unbounded); dynamic execution resolves this via
// reallocation at completion events, which is why the completion-time
// experiments run through the simulator.
#pragma once

#include <vector>

#include "core/allocation.hpp"

namespace amf::core {

/// Completion time per job: max_s w[j][s]/a[j][s] over sites with positive
/// workload; 0 for jobs without work; +inf when some positive workload has
/// a zero rate. Requires the problem to carry workloads.
std::vector<double> completion_times(const AllocationProblem& problem,
                                     const Allocation& allocation);

/// Per-job slowdown relative to the proportional ideal W_j / A_j (1 means
/// the job runs as fast as its aggregate permits); 1 for jobs with no work
/// or no allocation.
std::vector<double> slowdowns(const AllocationProblem& problem,
                              const Allocation& allocation);

/// Aggregate-rate ("divisible placement") completion time W_j / A_j: the
/// completion time when a job's work can migrate freely among its own
/// sites, so only the total rate matters. This is the static lens in
/// which AMF's balance gains translate directly into completion times;
/// the per-site `completion_times` model adds placement constraints on
/// top (and the simulator adds reallocation dynamics). +inf for jobs with
/// work but no allocation, 0 for jobs without work.
std::vector<double> aggregate_rate_completion_times(
    const AllocationProblem& problem, const Allocation& allocation);

/// The completion-time add-on. Stateless apart from tuning parameters.
class JctAddon {
 public:
  /// `eps`: flow tolerance; `search_iters`: binary-search resolution per
  /// filling round; `refine_passes`: per-job refinement rounds;
  /// `max_freeze_rounds`: progressive-filling rounds (each freezes at
  /// least one blocked job; more rounds = closer to the lexicographic
  /// optimum, fewer = faster, e.g. inside the simulator loop).
  explicit JctAddon(double eps = 1e-9, int search_iters = 30,
                    int refine_passes = 2, int max_freeze_rounds = 8);

  /// Returns an allocation with identical aggregates to `base` whose
  /// completion times are no worse (and usually far better) than base's.
  /// The result's policy name is base.policy() + "+JCT".
  Allocation optimize(const AllocationProblem& problem,
                      const Allocation& base) const;

 private:
  double eps_;
  int search_iters_;
  int refine_passes_;
  int max_freeze_rounds_;
};

}  // namespace amf::core
