#include "core/allocation.hpp"

#include <numeric>

#include "core/workspace.hpp"
#include "util/error.hpp"

namespace amf::core {

Allocation Allocator::allocate(const AllocationProblem& problem,
                               SolverWorkspace& workspace) const {
  workspace.report().reset();
  return allocate(problem);
}

Allocation::Allocation(Matrix shares, std::string policy)
    : shares_(std::move(shares)), policy_(std::move(policy)) {
  aggregates_.reserve(shares_.size());
  std::size_t width = shares_.empty() ? 0 : shares_.front().size();
  for (const auto& row : shares_) {
    AMF_REQUIRE(row.size() == width, "ragged allocation matrix");
    aggregates_.push_back(std::accumulate(row.begin(), row.end(), 0.0));
  }
}

double Allocation::share(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return shares_[static_cast<std::size_t>(job)][static_cast<std::size_t>(site)];
}

double Allocation::aggregate(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  return aggregates_[static_cast<std::size_t>(job)];
}

std::vector<double> Allocation::normalized_aggregates(
    const AllocationProblem& p) const {
  AMF_REQUIRE(p.jobs() == jobs(), "allocation/problem size mismatch");
  std::vector<double> norm(aggregates_);
  for (int j = 0; j < jobs(); ++j)
    norm[static_cast<std::size_t>(j)] /= p.weight(j);
  return norm;
}

double Allocation::site_usage(int site) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  double sum = 0.0;
  for (const auto& row : shares_) sum += row[static_cast<std::size_t>(site)];
  return sum;
}

double Allocation::utilization(const AllocationProblem& p) const {
  AMF_REQUIRE(p.sites() == sites(), "allocation/problem size mismatch");
  double cap = p.total_capacity();
  if (cap == 0.0) return 0.0;
  double used = std::accumulate(aggregates_.begin(), aggregates_.end(), 0.0);
  return used / cap;
}

bool Allocation::feasible_for(const AllocationProblem& p, double eps) const {
  if (p.jobs() != jobs()) return false;
  if (jobs() > 0 && p.sites() != sites()) return false;
  const double tol = eps * p.scale();
  for (int j = 0; j < jobs(); ++j)
    for (int s = 0; s < sites(); ++s) {
      double a = share(j, s);
      if (a < -tol) return false;
      if (a > p.demand(j, s) + tol) return false;
    }
  for (int s = 0; s < sites(); ++s)
    if (site_usage(s) > p.capacity(s) + tol) return false;
  return true;
}

}  // namespace amf::core
