// eamf.hpp — Enhanced AMF: AMF with the sharing-incentive guarantee.
//
// Plain AMF can leave a job with less than it would get if every site were
// statically partitioned among the n jobs (the sharing-incentive
// benchmark): equalizing aggregates sometimes pays a locality-constrained
// job out of capacity another job was entitled to. E-AMF restores the
// property by running the same progressive filling *subject to per-job
// floors* equal to the equal-split share g[j] = Σ_s min(d[j][s],
// C[s]·φ_j/Σφ). The floors are jointly feasible by construction (the
// static partition itself witnesses them), every job therefore weakly
// prefers sharing, and the result remains Pareto-efficient. Whenever AMF
// already satisfies every floor, E-AMF coincides with AMF.
//
// Reconstruction note: the paper's full text was unavailable; this
// floor-based construction is our realization of "an enhanced version of
// AMF to guarantee the sharing incentive property" (see DESIGN.md §5).
#pragma once

#include "core/allocation.hpp"

namespace amf::core {

/// The Enhanced AMF allocator (sharing incentive guaranteed).
class EnhancedAmfAllocator final : public Allocator {
 public:
  explicit EnhancedAmfAllocator(double eps = 1e-9) : eps_(eps) {}

  using Allocator::allocate;
  Allocation allocate(const AllocationProblem& problem) const override;
  std::string name() const override { return "E-AMF"; }

  /// The floors enforced for this instance (equal-split shares).
  static std::vector<double> sharing_floors(const AllocationProblem& problem);

 private:
  double eps_;
};

}  // namespace amf::core
