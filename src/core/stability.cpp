#include "core/stability.hpp"

#include <algorithm>
#include <cmath>

#include "flow/mincost.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"

namespace amf::core {

StabilityAddon::StabilityAddon(double eps, Backend backend)
    : eps_(eps), backend_(backend) {
  AMF_REQUIRE(eps > 0.0, "eps must be positive");
}

double StabilityAddon::churn(const Allocation& a, const Allocation& b) {
  AMF_REQUIRE(a.jobs() == b.jobs() && a.sites() == b.sites(),
              "churn needs equally shaped allocations");
  double total = 0.0;
  for (int j = 0; j < a.jobs(); ++j)
    for (int s = 0; s < a.sites(); ++s)
      total += std::abs(a.share(j, s) - b.share(j, s));
  return total;
}

Allocation StabilityAddon::optimize(const AllocationProblem& problem,
                                    const Allocation& target,
                                    const Allocation& previous) const {
  const int n = problem.jobs();
  AMF_REQUIRE(target.jobs() == n, "target/problem size mismatch");
  AMF_REQUIRE(previous.jobs() == n && previous.sites() == target.sites(),
              "previous/target shape mismatch");
  const std::string policy = target.policy().empty()
                                 ? std::string("stable")
                                 : target.policy() + "+stable";
  if (n == 0) return Allocation(Matrix{}, policy);
  return backend_ == Backend::kLp
             ? optimize_lp(problem, target, previous, policy)
             : optimize_mcmf(problem, target, previous, policy);
}

Allocation StabilityAddon::optimize_lp(const AllocationProblem& problem,
                                       const Allocation& target,
                                       const Allocation& previous,
                                       const std::string& policy) const {
  const int n = problem.jobs();
  const int m = problem.sites();

  // Variables: a[j][s] for cells with positive demand, then one churn
  // variable c[j][s] per cell with |a - prev| >= c via two inequalities.
  std::vector<std::vector<int>> var_of(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(m), -1));
  int cells = 0;
  for (int j = 0; j < n; ++j)
    for (int s = 0; s < m; ++s)
      if (problem.demand(j, s) > 0.0) {
        var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
            cells++;
      }
  const int vars = 2 * cells;  // [0, cells) shares, [cells, 2*cells) churn

  lp::LinearProgram program;
  program.variables = vars;
  program.objective.assign(static_cast<std::size_t>(vars), 0.0);
  for (int c = cells; c < vars; ++c)
    program.objective[static_cast<std::size_t>(c)] = -1.0;  // min Σ churn

  auto cell_row = [&](int width) {
    lp::Row row;
    row.coeffs.assign(static_cast<std::size_t>(width), 0.0);
    return row;
  };

  // Exact per-job aggregates.
  for (int j = 0; j < n; ++j) {
    auto row = cell_row(vars);
    bool any = false;
    for (int s = 0; s < m; ++s) {
      int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v >= 0) {
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        any = true;
      }
    }
    double agg = target.aggregate(j);
    AMF_REQUIRE(any || agg <= eps_ * problem.scale(),
                "job with positive aggregate but no demand cells");
    if (!any) continue;
    row.type = lp::RowType::kEq;
    row.rhs = agg;
    program.rows.push_back(std::move(row));
  }
  // Site capacities.
  for (int s = 0; s < m; ++s) {
    auto row = cell_row(vars);
    bool any = false;
    for (int j = 0; j < n; ++j) {
      int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v >= 0) {
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        any = true;
      }
    }
    if (!any) continue;
    row.type = lp::RowType::kLe;
    row.rhs = problem.capacity(s);
    program.rows.push_back(std::move(row));
  }
  // Demand caps and the churn envelope.
  for (int j = 0; j < n; ++j)
    for (int s = 0; s < m; ++s) {
      int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v < 0) continue;
      double prev = previous.share(j, s);
      {
        auto row = cell_row(vars);
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        row.type = lp::RowType::kLe;
        row.rhs = problem.demand(j, s);
        program.rows.push_back(std::move(row));
      }
      {
        // a - c <= prev  (covers a above prev)
        auto row = cell_row(vars);
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        row.coeffs[static_cast<std::size_t>(cells + v)] = -1.0;
        row.type = lp::RowType::kLe;
        row.rhs = prev;
        program.rows.push_back(std::move(row));
      }
      {
        // a + c >= prev  (covers a below prev)
        auto row = cell_row(vars);
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        row.coeffs[static_cast<std::size_t>(cells + v)] = 1.0;
        row.type = lp::RowType::kGe;
        row.rhs = prev;
        program.rows.push_back(std::move(row));
      }
    }

  auto result = lp::solve(program, eps_);
  if (result.status == lp::LpStatus::kDeadlineExceeded)
    throw util::DeadlineExceeded("stability LP interrupted by its stop token");
  AMF_REQUIRE(result.status == lp::LpStatus::kOptimal,
              "target aggregates must be realizable");

  Matrix shares(static_cast<std::size_t>(n),
                std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < n; ++j)
    for (int s = 0; s < m; ++s) {
      int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v >= 0)
        shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
            std::max(0.0, result.x[static_cast<std::size_t>(v)]);
    }
  return Allocation(std::move(shares), policy);
}


Allocation StabilityAddon::optimize_mcmf(const AllocationProblem& problem,
                                         const Allocation& target,
                                         const Allocation& previous,
                                         const std::string& policy) const {
  const int n = problem.jobs();
  const int m = problem.sites();

  // Layout: 0 = source, 1..n jobs, n+1..n+m sites, last = sink.
  flow::MinCostFlow net(2 + n + m);
  const flow::NodeId source = 0, sink = 1 + n + m;
  auto job_node = [](int j) { return 1 + j; };
  auto site_node = [n](int s) { return 1 + n + s; };

  double total = 0.0;
  for (int j = 0; j < n; ++j) {
    double agg = target.aggregate(j);
    AMF_REQUIRE(agg >= -eps_ * problem.scale(), "negative target aggregate");
    net.add_edge(source, job_node(j), std::max(0.0, agg), 0.0);
    total += std::max(0.0, agg);
  }
  // Per cell: a "keep" arc rewarded for staying at the previous share and
  // a "change" arc charged for growth beyond it. Shrinkage churn is
  // (prev - kept), i.e. Σprev - Σkept: the constant drops out and the
  // -1/+1 costs minimize exactly the total L1 distance.
  std::vector<std::vector<std::pair<flow::EdgeId, flow::EdgeId>>> arcs(
      static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    arcs[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(m),
                                             {-1, -1});
    for (int s = 0; s < m; ++s) {
      double d = problem.demand(j, s);
      if (d <= 0.0) continue;
      double keep = std::min(previous.share(j, s), d);
      flow::EdgeId keep_arc = net.add_edge(job_node(j), site_node(s),
                                           std::max(0.0, keep), -1.0);
      flow::EdgeId change_arc = net.add_edge(job_node(j), site_node(s),
                                             std::max(0.0, d - keep), 1.0);
      arcs[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] = {
          keep_arc, change_arc};
    }
  }
  for (int s = 0; s < m; ++s)
    net.add_edge(site_node(s), sink, problem.capacity(s), 0.0);

  auto result = net.solve(source, sink,
                          std::numeric_limits<double>::infinity(), eps_);
  if (!result.complete)
    throw util::DeadlineExceeded(
        "stability min-cost realization interrupted by its stop token");
  AMF_REQUIRE(result.flow >= total - eps_ * std::max(problem.scale(), total),
              "target aggregates must be realizable");

  Matrix shares(static_cast<std::size_t>(n),
                std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < n; ++j)
    for (int s = 0; s < m; ++s) {
      auto [keep_arc, change_arc] =
          arcs[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (keep_arc < 0) continue;
      shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          std::max(0.0, net.flow(keep_arc)) +
          std::max(0.0, net.flow(change_arc));
    }
  return Allocation(std::move(shares), policy);
}

}  // namespace amf::core
