// workspace.hpp — reusable solver state for online reallocation.
//
// A SolverWorkspace owns everything an allocator can profitably keep
// between related solves: the persistent-topology transportation network,
// the previous solution, scratch buffers, and the per-call SolveReport.
// Allocators stay const and stateless — all warm-start state lives here,
// one workspace per solve stream (one simulator, one thread).
//
// Lifecycle:
//   * prime(problem[, ceilings]) builds the persistent network from a
//     problem snapshot; `ceilings` reserves arcs for demands that are
//     currently masked to zero but may become positive later.
//   * apply(delta) keeps the network in sync with
//     AllocationProblem::apply(delta) — the caller applies each delta to
//     both, in the same order.
//   * allocate(problem, workspace) on a primed workspace reuses the
//     network; results are bit-identical to the stateless path.
//   * invalidate() drops all warm state; the next allocate re-primes.
//     A delta the network cannot represent (a positive demand on an
//     unreserved arc) auto-invalidates instead of failing.
#pragma once

#include <optional>
#include <vector>

#include "core/problem.hpp"
#include "core/report.hpp"
#include "flow/parametric.hpp"
#include "flow/transport.hpp"

namespace amf::core {

class Allocation;

/// Mutable cross-call solver state. Not thread-safe: use one workspace
/// per concurrent solve stream.
class SolverWorkspace {
 public:
  SolverWorkspace() = default;

  /// Per-call instrumentation of the most recent allocate() through this
  /// workspace. Reset at the start of every such call.
  SolveReport& report() { return report_; }
  const SolveReport& report() const { return report_; }

  /// True when the persistent network is built and in sync.
  bool primed() const { return transport_.has_value(); }

  /// Builds the persistent network from `problem`. When `arc_ceilings`
  /// (n×m, entrywise >= the problem's demands) is given, arcs are
  /// reserved wherever the ceiling is positive, so demands masked to zero
  /// today can be raised later without a rebuild.
  void prime(const AllocationProblem& problem,
             const Matrix* arc_ceilings = nullptr);

  /// Mirrors a delta already applied (or about to be applied) to the
  /// problem. No-op when unprimed; auto-invalidates on a delta the
  /// persistent topology cannot represent.
  void apply(const ProblemDelta& delta);

  /// Drops all warm state (network, row map, previous solution).
  void invalidate();

  /// The persistent network. Only valid when primed().
  flow::IncrementalTransport& transport() { return *transport_; }

  /// Aggregates of the last recorded solution (empty before the first).
  const std::vector<double>& previous_aggregates() const {
    return previous_aggregates_;
  }
  void record_solution(const Allocation& allocation);

  /// Rebuilds the network without its dead (departed-job) rows once they
  /// dominate. Safe to call any time; bit-for-bit neutral.
  void maybe_compact();

  /// Realization contract for allocations produced through this workspace.
  /// Exact (the default): every result is bit-identical to the stateless
  /// path — warm starts are restricted to reads that are max-flow
  /// invariants. Relaxed: results are max-min optimal with identical job
  /// aggregates (within flow tolerance), but the per-site split may be any
  /// vertex of the optimum face, and cross-solve level hints accelerate
  /// the Newton descent. Substantially faster; not replay-exact.
  void set_exact_realization(bool exact) {
    exact_realization_ = exact;
    if (primed()) transport_->set_exact_realization(exact);
  }
  bool exact_realization() const { return exact_realization_; }

  /// Per-round critical-level hints carried across solves (relaxed
  /// realization only; see flow::LevelHint).
  std::vector<flow::LevelHint>& level_hints() { return level_hints_; }

  /// Scratch vector of length n, reused across calls (contents undefined).
  std::vector<double>& scratch(std::size_t n) {
    scratch_.resize(n);
    return scratch_;
  }

  /// Bookkeeping slot for RobustAllocator: index of the fallback tier
  /// that served the previous call (-1 = none). The chain invalidates the
  /// workspace whenever the serving tier changes, so a network primed by
  /// one tier's solve parameters is never warm-reused by another's.
  int serving_tier = -1;

 private:
  std::optional<flow::IncrementalTransport> transport_;
  std::vector<int> rows_;  ///< problem row -> persistent network row id
  /// Per-row dominant-share coefficient γ (all 1.0 on scalar problems).
  /// Deltas carry raw task units; the network speaks dominant units, so
  /// kDemandSet values are scaled by this mirror on the way in.
  std::vector<double> gammas_;
  std::vector<double> previous_aggregates_;
  std::vector<double> scratch_;
  std::vector<flow::LevelHint> level_hints_;
  SolveReport report_;
  bool exact_realization_ = true;
};

}  // namespace amf::core
