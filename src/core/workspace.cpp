#include "core/workspace.hpp"

#include <algorithm>

#include "core/allocation.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace amf::core {

namespace {

struct WorkspaceCounters {
  obs::Counter primes;
  obs::Counter deltas;
  obs::Counter invalidations;
  WorkspaceCounters() {
    auto& reg = obs::Registry::global();
    primes = reg.counter("amf_core_ws_prime",
                         "workspace network builds from scratch");
    deltas = reg.counter("amf_core_ws_deltas",
                         "problem deltas applied to a primed workspace");
    invalidations = reg.counter(
        "amf_core_ws_invalidate",
        "primed workspaces dropped (forcing a rebuild on next allocate)");
  }
};

WorkspaceCounters& ws_counters() {
  static WorkspaceCounters counters;
  return counters;
}

}  // namespace

void SolverWorkspace::prime(const AllocationProblem& problem,
                            const Matrix* arc_ceilings) {
  AMF_SPAN_ARG("core/ws_prime", "jobs", problem.jobs());
  ws_counters().primes.add(1);
  const int n = problem.jobs();
  const int m = problem.sites();
  if (arc_ceilings != nullptr)
    AMF_REQUIRE(static_cast<int>(arc_ceilings->size()) == n,
                "arc ceiling height != job count");
  transport_.emplace(problem.capacities());
  rows_.clear();
  rows_.reserve(static_cast<std::size_t>(n));
  gammas_.clear();
  gammas_.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) gammas_.push_back(problem.gamma(j));
  std::vector<int> sites;
  std::vector<double> demands;
  for (int j = 0; j < n; ++j) {
    sites.clear();
    demands.clear();
    const auto& drow = problem.demands()[static_cast<std::size_t>(j)];
    const std::vector<double>* ceil =
        arc_ceilings != nullptr
            ? &(*arc_ceilings)[static_cast<std::size_t>(j)]
            : nullptr;
    if (ceil != nullptr)
      AMF_REQUIRE(static_cast<int>(ceil->size()) == m,
                  "arc ceiling width != site count");
    for (int s = 0; s < m; ++s) {
      double d = drow[static_cast<std::size_t>(s)];
      double reserve = ceil != nullptr
                           ? std::max((*ceil)[static_cast<std::size_t>(s)], d)
                           : d;
      if (reserve > 0.0) {
        sites.push_back(s);
        demands.push_back(d);
      }
    }
    rows_.push_back(transport_->add_job(sites, demands));
  }
  transport_->set_active(rows_);
  transport_->set_exact_realization(exact_realization_);
  previous_aggregates_.clear();
}

void SolverWorkspace::apply(const ProblemDelta& delta) {
  if (!primed()) return;
  ws_counters().deltas.add(1);
  switch (delta.kind) {
    case ProblemDelta::Kind::kJobArrived: {
      const int m = transport_->sites();
      AMF_REQUIRE(static_cast<int>(delta.demand_row.size()) == m,
                  "delta demand row width != site count");
      // The network speaks dominant units: the arrival's demand row is
      // scaled by its profile's γ (1.0 when no profile rides along).
      double gamma = 1.0;
      if (!delta.profile_row.empty()) {
        gamma = 0.0;
        for (double p : delta.profile_row) gamma = p > gamma ? p : gamma;
      }
      std::vector<int> sites;
      std::vector<double> demands;
      for (int s = 0; s < m; ++s) {
        double d = delta.demand_row[static_cast<std::size_t>(s)];
        double reserve =
            delta.demand_ceiling.empty()
                ? d
                : std::max(delta.demand_ceiling[static_cast<std::size_t>(s)],
                           d);
        if (reserve > 0.0) {
          sites.push_back(s);
          demands.push_back(d * gamma);
        }
      }
      rows_.push_back(transport_->add_job(sites, demands));
      gammas_.push_back(gamma);
      transport_->set_active(rows_);
      break;
    }
    case ProblemDelta::Kind::kJobDeparted: {
      AMF_REQUIRE(delta.job >= 0 &&
                      delta.job < static_cast<int>(rows_.size()),
                  "delta job index out of range");
      transport_->remove_job(rows_[static_cast<std::size_t>(delta.job)]);
      rows_.erase(rows_.begin() + delta.job);
      gammas_.erase(gammas_.begin() + delta.job);
      transport_->set_active(rows_);
      break;
    }
    case ProblemDelta::Kind::kSiteCapacity:
      transport_->set_site_capacity(delta.site, delta.value);
      break;
    case ProblemDelta::Kind::kCapacityVec:
      transport_->set_site_capacity(delta.site,
                                    flow::binding_min(delta.capacity_row));
      break;
    case ProblemDelta::Kind::kDemandSet: {
      AMF_REQUIRE(delta.job >= 0 &&
                      delta.job < static_cast<int>(rows_.size()),
                  "delta job index out of range");
      const double value =
          delta.value * gammas_[static_cast<std::size_t>(delta.job)];
      if (!transport_->set_demand(rows_[static_cast<std::size_t>(delta.job)],
                                  delta.site, value)) {
        // A positive demand on an arc the topology never reserved: the
        // persistent network cannot represent it. Fall back to a rebuild
        // at the next allocate instead of surfacing an error.
        invalidate();
      }
      break;
    }
    case ProblemDelta::Kind::kProfileSet:
      // A new γ rescales every arc of the row; rebuilding at the next
      // allocate is simpler than replaying the whole demand row here,
      // and profile changes are rare (a job's shape, not its demand).
      invalidate();
      break;
    case ProblemDelta::Kind::kWorkloadSet:
      break;  // workloads are invisible to the flow network
  }
}

void SolverWorkspace::invalidate() {
  if (primed()) ws_counters().invalidations.add(1);
  transport_.reset();
  rows_.clear();
  gammas_.clear();
  previous_aggregates_.clear();
  level_hints_.clear();
}

void SolverWorkspace::record_solution(const Allocation& allocation) {
  previous_aggregates_ = allocation.aggregates();
}

void SolverWorkspace::maybe_compact() {
  if (!primed()) return;
  // Dead rows cost O(1) per Dinic BFS phase each, every solve, so they are
  // expelled eagerly: compacting at a 25% dead fraction still amortizes to
  // O(1) rebuild work per departure while keeping the network near its
  // live size.
  const int dead = transport_->total_rows() - transport_->live_rows();
  if (transport_->total_rows() >= 16 && dead * 4 >= transport_->total_rows())
    transport_->compact();
}

}  // namespace amf::core
