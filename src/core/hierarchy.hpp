// hierarchy.hpp — two-level (tenant → job) aggregate max-min fairness.
//
// Production fair schedulers (YARN queues, Mesos roles) are hierarchical:
// capacity is divided fairly among *tenants* first, then among each
// tenant's jobs. Flat AMF treats every job equally, so a tenant can
// enlarge its share simply by splitting work into more jobs. The
// hierarchical allocator closes that loophole by running AMF twice:
//
//   1. across tenants — each tenant's demand at a site is the union of
//      its jobs' demands (capped by the site), aggregates are tenant
//      totals, weights are tenant weights;
//   2. within each tenant — plain AMF among its jobs with the tenant's
//      per-site allocation as the capacity vector.
//
// The tenant level inherits AMF's properties (Pareto efficiency,
// envy-freeness between tenants, strategy-proofness against tenant-level
// manipulation — including the split-into-more-jobs attack).
#pragma once

#include <vector>

#include "core/allocation.hpp"

namespace amf::core {

class HierarchicalAmfAllocator final : public Allocator {
 public:
  /// `tenant_of[j]` assigns job j to a tenant id in [0, tenants);
  /// `tenant_weights` (optional) weights the tenant-level fairness.
  HierarchicalAmfAllocator(std::vector<int> tenant_of,
                           std::vector<double> tenant_weights = {},
                           double eps = 1e-9);

  using Allocator::allocate;
  Allocation allocate(const AllocationProblem& problem) const override;
  std::string name() const override { return "H-AMF"; }

  int tenants() const { return tenants_; }

  /// Tenant-level aggregate allocations of the last allocate() call.
  const std::vector<double>& last_tenant_aggregates() const {
    return last_tenant_aggregates_;
  }

 private:
  std::vector<int> tenant_of_;
  std::vector<double> tenant_weights_;
  int tenants_ = 0;
  double eps_;
  mutable std::vector<double> last_tenant_aggregates_;
};

}  // namespace amf::core
