// problem.hpp — the distributed allocation problem instance.
//
// n jobs run across m sites. Job j can use at most d[j][s] units of
// resource at site s (its demand cap, derived from data locality) and has
// w[j][s] units of work to process there. Site s offers C[s] units.
// Optional weights express per-job priorities under weighted max-min
// fairness; the unweighted paper model is weights == 1.
//
// ## Multi-resource instances (DRF-on-aggregates)
//
// A site may offer a *vector* of R resources (CPU/mem/net),
// capacity[s][r], and each job consumes them in fixed Leontief
// proportions profile[j][r] per task. Fairness is then defined on the
// weighted aggregate *dominant share*: job j's dominant-share coefficient
// is γ_j = max_r profile[j][r], and the standard DRF reduction maps the
// vector instance onto the scalar transportation model the whole solver
// chain already speaks:
//
//   effective demand   d̃[j][s] = d[j][s] · γ_j      (dominant units)
//   effective capacity C̃[s]    = min_r capacity[s][r] (the binding resource)
//   effective workload w̃[j][s] = w[j][s] · γ_j
//
// Every value-returning accessor (demands(), capacities(), demand(),
// capacity(), workloads(), scale(), solo_ceiling(), equal_split_share())
// reports the EFFECTIVE view, so AMF/E-AMF/PSMF, the incremental
// workspace, the robust tiers, and the flow substrate run unchanged and
// their allocations come back in dominant units (task counts are
// share/γ). The raw task-unit inputs remain available via
// task_demands()/task_workloads()/profiles()/capacity_matrix().
//
// A problem built through the scalar constructor never materializes the
// vector state: capacity_matrix() is empty, multi_resource() is false,
// and the code paths are byte-for-byte the pre-lift ones (pinned by
// test_r1_equiv). A vector problem with R=1 and unit profiles takes the
// same effective values, so it allocates identically to its scalar twin.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/transport.hpp"

namespace amf::core {

using Matrix = flow::Matrix;

/// One elementary change to a problem between two online solve events.
/// Deltas are the currency of the incremental pipeline: the simulator
/// feeds them to both AllocationProblem::apply (value semantics) and
/// SolverWorkspace::apply (persistent flow-network topology), keeping the
/// two views consistent without rebuilding either.
///
/// Scalar quantities in deltas are raw task units; the problem converts
/// to effective (dominant-share) units internally.
struct ProblemDelta {
  enum class Kind {
    kJobArrived,   ///< append a job row (demands / optional workloads / weight)
    kJobDeparted,  ///< erase a job row, preserving the order of the rest
    kSiteCapacity, ///< set C[site] = value (single-resource problems only)
    kDemandSet,    ///< set d[job][site] = value
    kWorkloadSet,  ///< set w[job][site] = value
    kCapacityVec,  ///< set capacity[site][*] = capacity_row
    kProfileSet,   ///< set profile[job][*] = profile_row (multi-resource only)
  };

  Kind kind = Kind::kDemandSet;
  int job = -1;
  int site = -1;
  double value = 0.0;
  double weight = 1.0;
  std::vector<double> demand_row;    ///< kJobArrived: initial demands
  std::vector<double> workload_row;  ///< kJobArrived: initial workloads (may be empty)
  /// kJobArrived: per-site ceiling on any demand this job may ever report
  /// (>= demand_row). Decides which arcs a persistent network reserves so
  /// later unmasking needs no rebuild. Empty = demand_row itself.
  std::vector<double> demand_ceiling;
  /// kCapacityVec: the site's new per-resource capacity row (width R; a
  /// single-resource problem accepts width 1).
  std::vector<double> capacity_row;
  /// kJobArrived / kProfileSet: the job's Leontief profile (width R).
  /// Empty on arrival = the unit profile.
  std::vector<double> profile_row;

  static ProblemDelta job_arrived(std::vector<double> demands,
                                  std::vector<double> workloads = {},
                                  double weight = 1.0,
                                  std::vector<double> ceiling = {},
                                  std::vector<double> profile = {});
  static ProblemDelta job_departed(int job);
  static ProblemDelta site_capacity(int site, double value);
  static ProblemDelta demand_set(int job, int site, double value);
  static ProblemDelta workload_set(int job, int site, double value);
  static ProblemDelta set_capacity_vec(int site, std::vector<double> row);
  static ProblemDelta set_profile(int job, std::vector<double> row);
};

/// An immutable-after-validation allocation problem instance.
class AllocationProblem {
 public:
  AllocationProblem() = default;

  /// Builds and validates a single-resource instance. `workloads` may be
  /// empty (no completion-time information) or n×m; `weights` may be
  /// empty (all 1).
  AllocationProblem(Matrix demands, std::vector<double> capacities,
                    Matrix workloads = {}, std::vector<double> weights = {});

  /// Builds and validates a multi-resource instance. `capacity_matrix` is
  /// m×R (R >= 1 taken from its rows); `profiles` is n×R Leontief rows
  /// (each with at least one positive entry) or empty for unit profiles.
  /// `demands`/`workloads` are raw task units. A factory rather than a
  /// constructor so brace-initialized scalar call sites stay unambiguous.
  static AllocationProblem multi(Matrix demands, Matrix capacity_matrix,
                                 Matrix profiles, Matrix workloads = {},
                                 std::vector<double> weights = {});

  int jobs() const { return static_cast<int>(demands_.size()); }
  int sites() const { return static_cast<int>(capacities_.size()); }

  /// True when this instance carries vector capacities; the effective
  /// accessors below then report the DRF reduction's dominant units.
  bool multi_resource() const { return !capacity_matrix_.empty(); }
  /// Resource dimension R (1 for scalar instances).
  int resources() const {
    return multi_resource() ? static_cast<int>(capacity_matrix_.front().size())
                            : 1;
  }

  /// Effective demand matrix (== the raw one on scalar instances).
  const Matrix& demands() const {
    return multi_resource() ? eff_demands_ : demands_;
  }
  /// Effective (binding-resource) site capacities.
  const std::vector<double>& capacities() const { return capacities_; }
  /// Effective workloads; empty when the instance carries no workload
  /// information.
  const Matrix& workloads() const {
    return multi_resource() ? eff_workloads_ : workloads_;
  }
  const std::vector<double>& weights() const { return weights_; }
  bool has_workloads() const { return !workloads_.empty(); }

  /// Raw task-unit demand/workload matrices (== the effective ones on
  /// scalar instances).
  const Matrix& task_demands() const { return demands_; }
  const Matrix& task_workloads() const { return workloads_; }
  /// Per-site per-resource capacities; empty on scalar instances.
  const Matrix& capacity_matrix() const { return capacity_matrix_; }
  /// Per-job Leontief profiles (n×R); empty on scalar instances.
  const Matrix& profiles() const { return profiles_; }

  double demand(int job, int site) const;
  double workload(int job, int site) const;
  /// Raw task-unit entries (== demand()/workload() on scalar instances).
  double task_demand(int job, int site) const;
  double task_workload(int job, int site) const;
  double capacity(int site) const;
  double weight(int job) const;
  /// capacity[site][resource]; scalar instances accept resource == 0.
  double capacity(int site, int resource) const;
  /// profile[job][resource]; 1.0 on scalar instances (resource == 0).
  double profile(int job, int resource) const;
  /// Dominant-share coefficient γ_j = max_r profile[j][r] (1.0 scalar).
  double gamma(int job) const;

  /// Σ_s min(d[j][s], C[s]) — the most job j could ever receive.
  double solo_ceiling(int job) const;
  /// Σ_s w[j][s] — total work of job j (0 without workloads).
  double total_work(int job) const;
  double total_capacity() const;
  /// Largest capacity/demand value (>= 1); tolerance scale of the
  /// instance. All flow computations use tolerances relative to this
  /// value, which bounds the usable dynamic range *within* one instance
  /// to roughly eight orders of magnitude — quantities smaller than
  /// eps·scale() of the largest site are treated as numerical noise.
  double scale() const;

  /// The sharing-incentive guarantee of job j: what it would get if every
  /// site were statically partitioned in proportion to the weights,
  /// Σ_s min(d[j][s], C[s]·φ_j/Σφ). This is the floor E-AMF enforces.
  double equal_split_share(int job) const;

  /// A copy of this instance where job `job` reports `reported` as its
  /// demand row (used by strategy-proofness probes). Workloads are kept.
  AllocationProblem with_reported_demands(int job,
                                          const std::vector<double>& reported)
      const;

  /// A copy restricted to the given jobs (order preserved).
  AllocationProblem subset(const std::vector<int>& job_indices) const;

  /// The instance after one delta, validating only what changed (O(1) for
  /// scalar deltas, O(m) for arrivals — never a full O(n·m) revalidation).
  /// The lvalue overload copies; the rvalue overload reuses this
  /// instance's buffers, so a solve loop that owns its problem pays only
  /// for the changed entries: `p = std::move(p).apply(delta)`.
  AllocationProblem apply(const ProblemDelta& delta) const&;
  AllocationProblem apply(const ProblemDelta& delta) &&;

  /// CSV round-trip: header line `jobs,sites,has_work[,resources]` then
  /// one row per job of demands, then capacities (m rows of R when
  /// multi-resource), then profile rows (multi-resource only), then
  /// optional workloads and weights. Scalar instances save exactly the
  /// pre-lift format.
  void save(std::ostream& out) const;
  static AllocationProblem load(std::istream& in);

 private:
  void validate() const;
  /// Recomputes gammas_/eff_demands_/eff_workloads_/capacities_ from the
  /// raw state (multi-resource instances only).
  void rebuild_effective();
  /// Refreshes the cached effective row of one job after a raw change.
  void refresh_job_effective(std::size_t job);

  Matrix demands_;                   ///< raw task-unit demands
  std::vector<double> capacities_;   ///< effective (binding-min) capacities
  Matrix workloads_;                 ///< raw task-unit workloads
  std::vector<double> weights_;

  // --- multi-resource state (all empty on scalar instances) ---
  Matrix capacity_matrix_;  ///< m×R; non-empty ⟺ multi_resource()
  Matrix profiles_;         ///< n×R Leontief rows
  std::vector<double> gammas_;  ///< cached max_r profiles_[j][r]
  Matrix eff_demands_;          ///< demands_ · γ (dominant units)
  Matrix eff_workloads_;        ///< workloads_ · γ (empty when no workloads)
};

}  // namespace amf::core
