// problem.hpp — the distributed allocation problem instance.
//
// n jobs run across m sites. Job j can use at most d[j][s] units of
// resource at site s (its demand cap, derived from data locality) and has
// w[j][s] units of work to process there. Site s offers C[s] units.
// Optional weights express per-job priorities under weighted max-min
// fairness; the unweighted paper model is weights == 1.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/transport.hpp"

namespace amf::core {

using Matrix = flow::Matrix;

/// One elementary change to a problem between two online solve events.
/// Deltas are the currency of the incremental pipeline: the simulator
/// feeds them to both AllocationProblem::apply (value semantics) and
/// SolverWorkspace::apply (persistent flow-network topology), keeping the
/// two views consistent without rebuilding either.
struct ProblemDelta {
  enum class Kind {
    kJobArrived,   ///< append a job row (demands / optional workloads / weight)
    kJobDeparted,  ///< erase a job row, preserving the order of the rest
    kSiteCapacity, ///< set C[site] = value
    kDemandSet,    ///< set d[job][site] = value
    kWorkloadSet,  ///< set w[job][site] = value
  };

  Kind kind = Kind::kDemandSet;
  int job = -1;
  int site = -1;
  double value = 0.0;
  double weight = 1.0;
  std::vector<double> demand_row;    ///< kJobArrived: initial demands
  std::vector<double> workload_row;  ///< kJobArrived: initial workloads (may be empty)
  /// kJobArrived: per-site ceiling on any demand this job may ever report
  /// (>= demand_row). Decides which arcs a persistent network reserves so
  /// later unmasking needs no rebuild. Empty = demand_row itself.
  std::vector<double> demand_ceiling;

  static ProblemDelta job_arrived(std::vector<double> demands,
                                  std::vector<double> workloads = {},
                                  double weight = 1.0,
                                  std::vector<double> ceiling = {});
  static ProblemDelta job_departed(int job);
  static ProblemDelta site_capacity(int site, double value);
  static ProblemDelta demand_set(int job, int site, double value);
  static ProblemDelta workload_set(int job, int site, double value);
};

/// An immutable-after-validation allocation problem instance.
class AllocationProblem {
 public:
  AllocationProblem() = default;

  /// Builds and validates an instance. `workloads` may be empty (no
  /// completion-time information) or n×m; `weights` may be empty (all 1).
  AllocationProblem(Matrix demands, std::vector<double> capacities,
                    Matrix workloads = {}, std::vector<double> weights = {});

  int jobs() const { return static_cast<int>(demands_.size()); }
  int sites() const { return static_cast<int>(capacities_.size()); }

  const Matrix& demands() const { return demands_; }
  const std::vector<double>& capacities() const { return capacities_; }
  /// Empty when the instance carries no workload information.
  const Matrix& workloads() const { return workloads_; }
  const std::vector<double>& weights() const { return weights_; }
  bool has_workloads() const { return !workloads_.empty(); }

  double demand(int job, int site) const;
  double workload(int job, int site) const;
  double capacity(int site) const;
  double weight(int job) const;

  /// Σ_s min(d[j][s], C[s]) — the most job j could ever receive.
  double solo_ceiling(int job) const;
  /// Σ_s w[j][s] — total work of job j (0 without workloads).
  double total_work(int job) const;
  double total_capacity() const;
  /// Largest capacity/demand value (>= 1); tolerance scale of the
  /// instance. All flow computations use tolerances relative to this
  /// value, which bounds the usable dynamic range *within* one instance
  /// to roughly eight orders of magnitude — quantities smaller than
  /// eps·scale() of the largest site are treated as numerical noise.
  double scale() const;

  /// The sharing-incentive guarantee of job j: what it would get if every
  /// site were statically partitioned in proportion to the weights,
  /// Σ_s min(d[j][s], C[s]·φ_j/Σφ). This is the floor E-AMF enforces.
  double equal_split_share(int job) const;

  /// A copy of this instance where job `job` reports `reported` as its
  /// demand row (used by strategy-proofness probes). Workloads are kept.
  AllocationProblem with_reported_demands(int job,
                                          const std::vector<double>& reported)
      const;

  /// A copy restricted to the given jobs (order preserved).
  AllocationProblem subset(const std::vector<int>& job_indices) const;

  /// The instance after one delta, validating only what changed (O(1) for
  /// scalar deltas, O(m) for arrivals — never a full O(n·m) revalidation).
  /// The lvalue overload copies; the rvalue overload reuses this
  /// instance's buffers, so a solve loop that owns its problem pays only
  /// for the changed entries: `p = std::move(p).apply(delta)`.
  AllocationProblem apply(const ProblemDelta& delta) const&;
  AllocationProblem apply(const ProblemDelta& delta) &&;

  /// CSV round-trip: header line `jobs,sites` then one row per job of
  /// demands, then capacities, then optional workloads and weights.
  void save(std::ostream& out) const;
  static AllocationProblem load(std::istream& in);

 private:
  void validate() const;

  Matrix demands_;
  std::vector<double> capacities_;
  Matrix workloads_;
  std::vector<double> weights_;
};

}  // namespace amf::core
