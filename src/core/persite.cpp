#include "core/persite.hpp"

#include "core/single_site.hpp"
#include "core/workspace.hpp"

namespace amf::core {

Allocation PerSiteMaxMin::allocate_into(
    const AllocationProblem& problem,
    std::vector<double>& caps_scratch) const {
  const int n = problem.jobs();
  const int m = problem.sites();
  Matrix shares(static_cast<std::size_t>(n),
                std::vector<double>(static_cast<std::size_t>(m), 0.0));
  caps_scratch.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < m; ++s) {
    for (int j = 0; j < n; ++j)
      caps_scratch[static_cast<std::size_t>(j)] = problem.demand(j, s);
    auto site_alloc =
        water_fill(caps_scratch, problem.weights(), problem.capacity(s));
    for (int j = 0; j < n; ++j)
      shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          site_alloc[static_cast<std::size_t>(j)];
  }
  return Allocation(std::move(shares), name());
}

Allocation PerSiteMaxMin::allocate(const AllocationProblem& problem) const {
  std::vector<double> caps;
  return allocate_into(problem, caps);
}

Allocation PerSiteMaxMin::allocate(const AllocationProblem& problem,
                                   SolverWorkspace& workspace) const {
  workspace.report().reset();
  workspace.report().warm = true;
  return allocate_into(
      problem, workspace.scratch(static_cast<std::size_t>(problem.jobs())));
}

}  // namespace amf::core
