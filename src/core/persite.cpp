#include "core/persite.hpp"

#include "core/single_site.hpp"

namespace amf::core {

Allocation PerSiteMaxMin::allocate(const AllocationProblem& problem) const {
  const int n = problem.jobs();
  const int m = problem.sites();
  Matrix shares(static_cast<std::size_t>(n),
                std::vector<double>(static_cast<std::size_t>(m), 0.0));
  std::vector<double> caps(static_cast<std::size_t>(n));
  for (int s = 0; s < m; ++s) {
    for (int j = 0; j < n; ++j)
      caps[static_cast<std::size_t>(j)] = problem.demand(j, s);
    auto site_alloc = water_fill(caps, problem.weights(), problem.capacity(s));
    for (int j = 0; j < n; ++j)
      shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          site_alloc[static_cast<std::size_t>(j)];
  }
  return Allocation(std::move(shares), name());
}

}  // namespace amf::core
