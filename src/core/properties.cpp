#include "core/properties.hpp"

#include <algorithm>
#include <cmath>

#include "flow/transport.hpp"
#include "util/error.hpp"

namespace amf::core {

bool is_pareto_efficient(const AllocationProblem& problem,
                         const Allocation& allocation, double eps) {
  AMF_REQUIRE(problem.jobs() == allocation.jobs(),
              "problem/allocation size mismatch");
  if (problem.jobs() == 0) return true;
  flow::TransportNetwork net(problem.demands(), problem.capacities());
  net.solve(allocation.aggregates(), eps);
  AMF_REQUIRE(net.saturated(eps * 64.0),
              "allocation aggregates must be feasible");
  auto can = net.jobs_can_increase(eps);
  return std::none_of(can.begin(), can.end(), [](char c) { return c != 0; });
}

double max_envy(const AllocationProblem& problem,
                const Allocation& allocation) {
  AMF_REQUIRE(problem.jobs() == allocation.jobs(),
              "problem/allocation size mismatch");
  double worst = 0.0;
  for (int i = 0; i < problem.jobs(); ++i) {
    const double own = allocation.aggregate(i);
    for (int k = 0; k < problem.jobs(); ++k) {
      if (k == i) continue;
      const double ratio = problem.weight(i) / problem.weight(k);
      double value = 0.0;
      for (int s = 0; s < problem.sites(); ++s)
        value += std::min(allocation.share(k, s) * ratio,
                          problem.demand(i, s));
      worst = std::max(worst, value - own);
    }
  }
  return worst;
}

bool is_envy_free(const AllocationProblem& problem,
                  const Allocation& allocation, double tol) {
  return max_envy(problem, allocation) <= tol * problem.scale();
}

double max_sharing_incentive_violation(const AllocationProblem& problem,
                                       const Allocation& allocation) {
  AMF_REQUIRE(problem.jobs() == allocation.jobs(),
              "problem/allocation size mismatch");
  double worst = 0.0;
  for (int j = 0; j < problem.jobs(); ++j)
    worst = std::max(worst, problem.equal_split_share(j) -
                                allocation.aggregate(j));
  return worst;
}

bool satisfies_sharing_incentive(const AllocationProblem& problem,
                                 const Allocation& allocation, double tol) {
  return max_sharing_incentive_violation(problem, allocation) <=
         tol * problem.scale();
}

StrategyProbeResult probe_strategy_proofness(const AllocationProblem& problem,
                                             const Allocator& allocator,
                                             int job, int trials,
                                             util::Rng& rng, double tol) {
  AMF_REQUIRE(job >= 0 && job < problem.jobs(), "job index out of range");
  AMF_REQUIRE(trials >= 0, "trials must be >= 0");

  const Allocation truthful = allocator.allocate(problem);
  const double baseline = truthful.aggregate(job);
  const int m = problem.sites();

  StrategyProbeResult result;
  result.trials = trials;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> report(static_cast<std::size_t>(m));
    // Three misreport families, mixed at random: global scaling,
    // per-site jitter with hiding, and inflation toward site capacity.
    int family = static_cast<int>(rng.uniform_index(3));
    for (int s = 0; s < m; ++s) {
      double d = problem.demand(job, s);
      double r = d;
      switch (family) {
        case 0:  // scale everything by a common factor in [0, 3]
          r = d * rng.uniform(0.0, 3.0);
          break;
        case 1:  // per-site jitter; hide a site with probability 0.3
          r = rng.bernoulli(0.3) ? 0.0 : d * rng.uniform(0.2, 2.0);
          break;
        default:  // claim demand wherever capacity exists
          r = rng.bernoulli(0.5) ? problem.capacity(s)
                                 : d * rng.uniform(0.5, 1.5);
          break;
      }
      report[static_cast<std::size_t>(s)] = r;
    }

    auto lied = problem.with_reported_demands(job, report);
    Allocation manipulated = allocator.allocate(lied);
    double usable = 0.0;
    for (int s = 0; s < m; ++s)
      usable += std::min(manipulated.share(job, s), problem.demand(job, s));

    double gain = usable - baseline;
    result.max_gain = std::max(result.max_gain, gain);
    if (gain > tol * problem.scale()) ++result.profitable;
  }
  return result;
}

}  // namespace amf::core
