#include "core/reference.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "flow/transport.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"

namespace amf::core {

bool is_max_min_fair(const AllocationProblem& problem,
                     const std::vector<double>& aggregates, double tol) {
  const int n = problem.jobs();
  AMF_REQUIRE(static_cast<int>(aggregates.size()) == n,
              "aggregate vector length != job count");
  if (n == 0) return true;
  const double scale = problem.scale();
  const double tol_abs = tol * scale;

  flow::TransportNetwork net(problem.demands(), problem.capacities());

  // 1. The vector itself must be feasible.
  net.solve(aggregates);
  if (!net.saturated(tol)) return false;

  // 2. Fixed point: no job's aggregate can rise while every weakly
  //    worse-off job keeps its value (better-off jobs may be cut freely).
  // The probe increment must dominate the flow solver's saturation slack
  // (which is relative to total flow, i.e. grows with instance size).
  const double delta =
      std::max({tol_abs * 32.0, 1e-6 * scale,
                tol * problem.total_capacity() * 4.0});
  std::vector<double> norm(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    norm[static_cast<std::size_t>(j)] =
        aggregates[static_cast<std::size_t>(j)] / problem.weight(j);

  std::vector<double> floors(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double level = norm[static_cast<std::size_t>(j)];
    const double level_tol = tol * std::max(1.0, level);
    for (int k = 0; k < n; ++k) {
      if (k == j)
        floors[static_cast<std::size_t>(k)] =
            aggregates[static_cast<std::size_t>(k)] + delta;
      else if (norm[static_cast<std::size_t>(k)] <= level + level_tol)
        // Keep weakly-worse-off jobs at their exact value: relaxing them
        // even slightly frees O(n·tol) slack on large instances, which
        // would let the probe succeed against genuinely fair vectors.
        floors[static_cast<std::size_t>(k)] =
            aggregates[static_cast<std::size_t>(k)];
      else
        floors[static_cast<std::size_t>(k)] = 0.0;
    }
    net.solve(floors);
    if (net.saturated(tol / 64.0)) return false;  // j could be improved
  }
  return true;
}

namespace {

/// Sorted-ascending lexicographic "greater" for normalized vectors.
bool lex_greater(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + 1e-12) return true;
    if (a[i] < b[i] - 1e-12) return false;
  }
  return false;
}

}  // namespace

std::vector<double> brute_force_max_min_aggregates(
    const AllocationProblem& problem, long long max_points) {
  const int n = problem.jobs();
  const int m = problem.sites();
  AMF_REQUIRE(n > 0, "brute force needs at least one job");

  struct Cell {
    int job;
    int site;
    int cap;  // integer upper bound for this cell
  };
  std::vector<Cell> cells;
  long long points = 1;
  for (int j = 0; j < n; ++j)
    for (int s = 0; s < m; ++s) {
      int cap = static_cast<int>(
          std::floor(std::min(problem.demand(j, s), problem.capacity(s)) +
                     1e-9));
      if (cap > 0) {
        cells.push_back({j, s, cap});
        points *= (cap + 1);
        AMF_REQUIRE(points <= max_points,
                    "brute-force grid too large for this instance");
      }
    }

  std::vector<int> site_left(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s)
    site_left[static_cast<std::size_t>(s)] =
        static_cast<int>(std::floor(problem.capacity(s) + 1e-9));

  std::vector<double> agg(static_cast<std::size_t>(n), 0.0);
  std::vector<double> best_sorted;
  std::vector<double> best_agg(static_cast<std::size_t>(n), 0.0);

  auto consider = [&] {
    std::vector<double> sorted(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j)
      sorted[static_cast<std::size_t>(j)] =
          agg[static_cast<std::size_t>(j)] / problem.weight(j);
    std::sort(sorted.begin(), sorted.end());
    if (best_sorted.empty() || lex_greater(sorted, best_sorted)) {
      best_sorted = std::move(sorted);
      best_agg = agg;
    }
  };

  // Depth-first enumeration over all integer values of every cell.
  auto recurse = [&](auto&& self, std::size_t idx) -> void {
    if (idx == cells.size()) {
      consider();
      return;
    }
    const Cell& c = cells[idx];
    int limit = std::min(c.cap, site_left[static_cast<std::size_t>(c.site)]);
    for (int v = 0; v <= limit; ++v) {
      agg[static_cast<std::size_t>(c.job)] += v;
      site_left[static_cast<std::size_t>(c.site)] -= v;
      self(self, idx + 1);
      agg[static_cast<std::size_t>(c.job)] -= v;
      site_left[static_cast<std::size_t>(c.site)] += v;
    }
  };
  recurse(recurse, 0);
  return best_agg;
}


std::vector<double> lp_max_min_aggregates(const AllocationProblem& problem) {
  const int n = problem.jobs();
  const int m = problem.sites();
  if (n == 0) return {};

  // LP variables: one per (job, site) cell with positive demand, plus the
  // level t appended when maximizing the common minimum.
  std::vector<std::vector<int>> var_of(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(m), -1));
  int cells = 0;
  for (int j = 0; j < n; ++j)
    for (int s = 0; s < m; ++s)
      if (problem.demand(j, s) > 0.0)
        var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
            cells++;

  // Base rows shared by every solve: site capacities and demand caps.
  auto base_rows = [&](int width) {
    std::vector<lp::Row> rows;
    for (int s = 0; s < m; ++s) {
      lp::Row row;
      row.coeffs.assign(static_cast<std::size_t>(width), 0.0);
      bool any = false;
      for (int j = 0; j < n; ++j) {
        int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
        if (v >= 0) {
          row.coeffs[static_cast<std::size_t>(v)] = 1.0;
          any = true;
        }
      }
      if (!any) continue;
      row.type = lp::RowType::kLe;
      row.rhs = problem.capacity(s);
      rows.push_back(std::move(row));
    }
    for (int j = 0; j < n; ++j)
      for (int s = 0; s < m; ++s) {
        int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
        if (v < 0) continue;
        lp::Row row;
        row.coeffs.assign(static_cast<std::size_t>(width), 0.0);
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        row.type = lp::RowType::kLe;
        row.rhs = problem.demand(j, s);
        rows.push_back(std::move(row));
      }
    return rows;
  };
  auto job_row = [&](int j, int width) {
    lp::Row row;
    row.coeffs.assign(static_cast<std::size_t>(width), 0.0);
    for (int s = 0; s < m; ++s) {
      int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v >= 0) row.coeffs[static_cast<std::size_t>(v)] = 1.0;
    }
    return row;
  };

  std::vector<char> fixed(static_cast<std::size_t>(n), 0);
  std::vector<double> value(static_cast<std::size_t>(n), 0.0);
  int unfixed = 0;
  for (int j = 0; j < n; ++j) {
    if (problem.solo_ceiling(j) <= 0.0)
      fixed[static_cast<std::size_t>(j)] = 1;
    else
      ++unfixed;
  }

  // Feasibility of per-job aggregate floors (floors relaxed a hair so LP
  // noise never rejects a level the level-LP itself certified).
  auto floors_feasible = [&](const std::vector<double>& floors) {
    auto rows = base_rows(cells);
    for (int j = 0; j < n; ++j) {
      if (floors[static_cast<std::size_t>(j)] <= 0.0) continue;
      auto row = job_row(j, cells);
      row.type = lp::RowType::kGe;
      row.rhs = floors[static_cast<std::size_t>(j)];
      rows.push_back(std::move(row));
    }
    return lp::feasible(cells, rows);
  };

  for (int round = 0; round < n + 1 && unfixed > 0; ++round) {
    // Level LP: maximize t with every unfixed job's normalized aggregate
    // at least t and fixed jobs at their values.
    lp::LinearProgram program;
    program.variables = cells + 1;
    const int t_var = cells;
    program.objective.assign(static_cast<std::size_t>(program.variables),
                             0.0);
    program.objective[static_cast<std::size_t>(t_var)] = 1.0;
    for (auto& row : base_rows(cells)) {
      row.coeffs.push_back(0.0);
      program.rows.push_back(std::move(row));
    }
    for (int j = 0; j < n; ++j) {
      auto row = job_row(j, program.variables);
      if (fixed[static_cast<std::size_t>(j)]) {
        if (value[static_cast<std::size_t>(j)] <= 0.0) continue;
        row.type = lp::RowType::kGe;
        row.rhs = value[static_cast<std::size_t>(j)] * (1.0 - 1e-9);
      } else {
        row.coeffs[static_cast<std::size_t>(t_var)] = -problem.weight(j);
        row.type = lp::RowType::kGe;
        row.rhs = 0.0;
      }
      program.rows.push_back(std::move(row));
    }
    auto level_result = lp::solve(program);
    if (level_result.status == lp::LpStatus::kDeadlineExceeded)
      throw util::DeadlineExceeded(
          "leximin level LP interrupted by its stop token");
    AMF_ASSERT(level_result.status == lp::LpStatus::kOptimal,
               "leximin level LP must stay feasible");
    const double level = level_result.objective;

    // Fix exactly the jobs that cannot exceed the level while everyone
    // else holds it.
    const double step = std::max(1e-6 * problem.scale(), 1e-9);
    std::vector<double> floors(value);
    for (int j = 0; j < n; ++j)
      if (!fixed[static_cast<std::size_t>(j)])
        floors[static_cast<std::size_t>(j)] =
            level * problem.weight(j) * (1.0 - 1e-9);
    int newly = 0;
    for (int j = 0; j < n; ++j) {
      if (fixed[static_cast<std::size_t>(j)]) continue;
      auto probe = floors;
      probe[static_cast<std::size_t>(j)] =
          level * problem.weight(j) + step;
      if (!floors_feasible(probe)) {
        fixed[static_cast<std::size_t>(j)] = 1;
        value[static_cast<std::size_t>(j)] = level * problem.weight(j);
        --unfixed;
        ++newly;
      }
    }
    if (newly == 0) {
      for (int j = 0; j < n; ++j) {
        if (fixed[static_cast<std::size_t>(j)]) continue;
        fixed[static_cast<std::size_t>(j)] = 1;
        value[static_cast<std::size_t>(j)] = level * problem.weight(j);
        --unfixed;
      }
    }
  }
  return value;
}

}  // namespace amf::core
