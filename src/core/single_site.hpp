// single_site.hpp — one-site max-min fairness primitives.
//
// water_fill is the conventional single-resource water-filling the
// paper's baseline applies independently at every site, and a building
// block reused elsewhere (e.g. equal-split floors). Exact, O(n log n),
// no flow machinery needed.
//
// leontief_water_fill is its multi-resource sibling: DRF water-filling
// of one site's vector capacity over Leontief tasks (progressive
// filling on the site-local dominant share, freezing jobs at their task
// cap or on a saturated resource). It is the shared primitive behind
// multiresource::PerSiteDrfAllocator.
#pragma once

#include <vector>

namespace amf::core {

/// Weighted max-min fair division of `capacity` among jobs with upper
/// bounds `caps` and positive `weights`: lexicographically maximizes the
/// sorted vector of a[j]/weights[j] subject to 0 <= a[j] <= caps[j] and
/// Σ a[j] <= capacity. The optimum has the water-filling form
/// a[j] = min(caps[j], weights[j] * level).
///
/// Pareto note: if Σ caps <= capacity every job simply receives its cap.
std::vector<double> water_fill(const std::vector<double>& caps,
                               const std::vector<double>& weights,
                               double capacity);

/// Unweighted convenience overload (all weights 1).
std::vector<double> water_fill(const std::vector<double>& caps,
                               double capacity);

/// The final water level of the weighted fill: the value L such that
/// a[j] = min(caps[j], weights[j] * L). Returns +inf when capacity exceeds
/// total demand (every cap satisfied, level unbounded).
double water_level(const std::vector<double>& caps,
                   const std::vector<double>& weights, double capacity);

/// DRF water-filling of ONE site with vector capacity `capacities` (R
/// entries) over n Leontief jobs: job j runs tasks that each consume
/// profiles[j][r] of resource r, up to `task_caps[j]` tasks. Raises the
/// common site-local dominant share progressively, freezing a job when
/// it hits its task cap or touches a saturated resource, until no job
/// can rise; returns the per-job task counts. Jobs with a zero task
/// cap, a zero profile, or a needed resource the site lacks receive 0.
///
/// `scale` is the problem's magnitude unit (capacity-sized) used for the
/// feasibility slack `eps * scale` and the freeze tolerance, matching
/// the solver-wide epsilon convention. The level search bisects (64
/// iterations), so results carry ~1e-15 relative noise rather than the
/// closed-form exactness of the scalar water_fill.
std::vector<double> leontief_water_fill(
    const std::vector<double>& task_caps,
    const std::vector<std::vector<double>>& profiles,
    const std::vector<double>& capacities, double scale, double eps);

}  // namespace amf::core
