// single_site.hpp — classic single-resource weighted max-min fairness.
//
// This is the conventional water-filling the paper's baseline applies
// independently at every site, and a building block reused elsewhere
// (e.g. equal-split floors). Exact, O(n log n), no flow machinery needed.
#pragma once

#include <vector>

namespace amf::core {

/// Weighted max-min fair division of `capacity` among jobs with upper
/// bounds `caps` and positive `weights`: lexicographically maximizes the
/// sorted vector of a[j]/weights[j] subject to 0 <= a[j] <= caps[j] and
/// Σ a[j] <= capacity. The optimum has the water-filling form
/// a[j] = min(caps[j], weights[j] * level).
///
/// Pareto note: if Σ caps <= capacity every job simply receives its cap.
std::vector<double> water_fill(const std::vector<double>& caps,
                               const std::vector<double>& weights,
                               double capacity);

/// Unweighted convenience overload (all weights 1).
std::vector<double> water_fill(const std::vector<double>& caps,
                               double capacity);

/// The final water level of the weighted fill: the value L such that
/// a[j] = min(caps[j], weights[j] * L). Returns +inf when capacity exceeds
/// total demand (every cap satisfied, level unbounded).
double water_level(const std::vector<double>& caps,
                   const std::vector<double>& weights, double capacity);

}  // namespace amf::core
