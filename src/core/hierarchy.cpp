#include "core/hierarchy.hpp"

#include <algorithm>

#include "core/amf.hpp"
#include "util/error.hpp"

namespace amf::core {

HierarchicalAmfAllocator::HierarchicalAmfAllocator(
    std::vector<int> tenant_of, std::vector<double> tenant_weights,
    double eps)
    : tenant_of_(std::move(tenant_of)),
      tenant_weights_(std::move(tenant_weights)),
      eps_(eps) {
  AMF_REQUIRE(eps > 0.0, "eps must be positive");
  for (int t : tenant_of_) {
    AMF_REQUIRE(t >= 0, "tenant ids must be non-negative");
    tenants_ = std::max(tenants_, t + 1);
  }
  if (tenant_weights_.empty())
    tenant_weights_.assign(static_cast<std::size_t>(tenants_), 1.0);
  AMF_REQUIRE(static_cast<int>(tenant_weights_.size()) == tenants_,
              "one weight per tenant required");
  for (double w : tenant_weights_)
    AMF_REQUIRE(w > 0.0, "tenant weights must be positive");
}

Allocation HierarchicalAmfAllocator::allocate(
    const AllocationProblem& problem) const {
  const int n = problem.jobs();
  const int m = problem.sites();
  AMF_REQUIRE(static_cast<int>(tenant_of_.size()) == n,
              "tenant assignment length != job count");
  if (n == 0) {
    last_tenant_aggregates_.assign(static_cast<std::size_t>(tenants_), 0.0);
    return Allocation(Matrix{}, name());
  }

  // Level 1: the tenant problem. A tenant's demand cap at a site is the
  // union of its jobs' caps there (a tenant can never use more than the
  // site offers, so clamp).
  Matrix tenant_demands(static_cast<std::size_t>(tenants_),
                        std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int j = 0; j < n; ++j) {
    int t = tenant_of_[static_cast<std::size_t>(j)];
    for (int s = 0; s < m; ++s)
      tenant_demands[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] +=
          problem.demand(j, s);
  }
  for (int t = 0; t < tenants_; ++t)
    for (int s = 0; s < m; ++s)
      tenant_demands[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] =
          std::min(tenant_demands[static_cast<std::size_t>(t)]
                                 [static_cast<std::size_t>(s)],
                   problem.capacity(s));

  AllocationProblem tenant_problem(tenant_demands, problem.capacities(), {},
                                   tenant_weights_);
  AmfAllocator amf(eps_);
  Allocation tenant_allocation = amf.allocate(tenant_problem);
  last_tenant_aggregates_ = tenant_allocation.aggregates();

  // Level 2: within each tenant, AMF among its jobs using the tenant's
  // per-site allocation as the capacity vector.
  Matrix shares(static_cast<std::size_t>(n),
                std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int t = 0; t < tenants_; ++t) {
    std::vector<int> members;
    for (int j = 0; j < n; ++j)
      if (tenant_of_[static_cast<std::size_t>(j)] == t) members.push_back(j);
    if (members.empty()) continue;

    Matrix member_demands;
    std::vector<double> member_weights;
    member_demands.reserve(members.size());
    for (int j : members) {
      member_demands.push_back(problem.demands()[static_cast<std::size_t>(j)]);
      member_weights.push_back(problem.weight(j));
    }
    std::vector<double> envelope(static_cast<std::size_t>(m));
    for (int s = 0; s < m; ++s)
      envelope[static_cast<std::size_t>(s)] = tenant_allocation.share(t, s);

    AllocationProblem inner(std::move(member_demands), std::move(envelope),
                            {}, std::move(member_weights));
    Allocation inner_allocation = amf.allocate(inner);
    for (std::size_t i = 0; i < members.size(); ++i)
      for (int s = 0; s < m; ++s)
        shares[static_cast<std::size_t>(members[i])]
              [static_cast<std::size_t>(s)] =
            inner_allocation.share(static_cast<int>(i), s);
  }
  return Allocation(std::move(shares), name());
}

}  // namespace amf::core
