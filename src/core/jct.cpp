#include "core/jct.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "flow/lower_bounds.hpp"
#include "util/error.hpp"

namespace amf::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<double> completion_times(const AllocationProblem& problem,
                                     const Allocation& allocation) {
  AMF_REQUIRE(problem.has_workloads(),
              "completion times need workload information");
  AMF_REQUIRE(problem.jobs() == allocation.jobs(),
              "problem/allocation size mismatch");
  std::vector<double> jct(static_cast<std::size_t>(problem.jobs()), 0.0);
  for (int j = 0; j < problem.jobs(); ++j) {
    double t = 0.0;
    for (int s = 0; s < problem.sites(); ++s) {
      double w = problem.workload(j, s);
      if (w <= 0.0) continue;
      double a = allocation.share(j, s);
      t = (a <= 0.0) ? kInf : std::max(t, w / a);
    }
    jct[static_cast<std::size_t>(j)] = t;
  }
  return jct;
}

std::vector<double> slowdowns(const AllocationProblem& problem,
                              const Allocation& allocation) {
  auto jct = completion_times(problem, allocation);
  std::vector<double> sd(jct.size(), 1.0);
  for (int j = 0; j < problem.jobs(); ++j) {
    double work = problem.total_work(j);
    double agg = allocation.aggregate(j);
    if (work <= 0.0 || agg <= 0.0) continue;
    sd[static_cast<std::size_t>(j)] = jct[static_cast<std::size_t>(j)] /
                                      (work / agg);
  }
  return sd;
}

std::vector<double> aggregate_rate_completion_times(
    const AllocationProblem& problem, const Allocation& allocation) {
  AMF_REQUIRE(problem.has_workloads(),
              "completion times need workload information");
  AMF_REQUIRE(problem.jobs() == allocation.jobs(),
              "problem/allocation size mismatch");
  std::vector<double> t(static_cast<std::size_t>(problem.jobs()), 0.0);
  for (int j = 0; j < problem.jobs(); ++j) {
    double work = problem.total_work(j);
    if (work <= 0.0) continue;
    double agg = allocation.aggregate(j);
    t[static_cast<std::size_t>(j)] = agg <= 0.0 ? kInf : work / agg;
  }
  return t;
}

JctAddon::JctAddon(double eps, int search_iters, int refine_passes,
                   int max_freeze_rounds)
    : eps_(eps),
      search_iters_(search_iters),
      refine_passes_(refine_passes),
      max_freeze_rounds_(max_freeze_rounds) {
  AMF_REQUIRE(eps > 0.0, "eps must be positive");
  AMF_REQUIRE(search_iters >= 1, "at least one search iteration");
  AMF_REQUIRE(refine_passes >= 0, "refine passes must be >= 0");
  AMF_REQUIRE(max_freeze_rounds >= 1, "at least one freeze round");
}

Allocation JctAddon::optimize(const AllocationProblem& problem,
                              const Allocation& base) const {
  AMF_REQUIRE(problem.jobs() == base.jobs(),
              "problem/allocation size mismatch");
  const int n = problem.jobs();
  const int m = problem.sites();
  const std::string policy = base.policy().empty()
                                 ? std::string("JCT")
                                 : base.policy() + "+JCT";
  if (n == 0) return Allocation(Matrix{}, policy);
  AMF_REQUIRE(problem.has_workloads(), "JCT add-on needs workloads");

  const auto& aggregates = base.aggregates();

  // Per-job proportional ideal completion time and the ceiling on the
  // speed fraction u the demand caps alone allow (u = 1 means the job
  // finishes in exactly W_j / A_j).
  std::vector<double> ideal(static_cast<std::size_t>(n), 0.0);
  std::vector<double> u_cap(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    double work = problem.total_work(j);
    double agg = aggregates[static_cast<std::size_t>(j)];
    if (work <= 0.0 || agg <= 0.0) continue;
    double t_ideal = work / agg;
    ideal[static_cast<std::size_t>(j)] = t_ideal;
    double cap = 1.0;
    for (int s = 0; s < m; ++s) {
      double w = problem.workload(j, s);
      if (w <= 0.0) continue;
      cap = std::min(cap, problem.demand(j, s) * t_ideal / w);
    }
    u_cap[static_cast<std::size_t>(j)] = cap;
  }

  // Flow layout: 0 = source, 1..n jobs, n+1..n+m sites, last = sink.
  const int node_count = 2 + n + m;
  const flow::NodeId source = 0, sink = node_count - 1;
  auto job_node = [](int j) { return 1 + j; };
  auto site_node = [n](int s) { return 1 + n + s; };

  // Feasible realization of the aggregates with per-job guaranteed speed
  // fractions u[j] (rate at every worked site >= u[j] · ideal rate).
  auto solve_at = [&](const std::vector<double>& u)
      -> std::optional<std::vector<double>> {
    std::vector<flow::BoundedEdge> edges;
    edges.reserve(static_cast<std::size_t>(n) * (m + 1) + m);
    for (int j = 0; j < n; ++j) {
      double agg = aggregates[static_cast<std::size_t>(j)];
      edges.push_back({source, job_node(j), agg, agg});
      for (int s = 0; s < m; ++s) {
        double d = problem.demand(j, s);
        if (d <= 0.0) continue;
        double lower = 0.0;
        double w = problem.workload(j, s);
        if (w > 0.0 && ideal[static_cast<std::size_t>(j)] > 0.0 &&
            u[static_cast<std::size_t>(j)] > 0.0) {
          lower = std::min(
              d, w * u[static_cast<std::size_t>(j)] /
                     ideal[static_cast<std::size_t>(j)]);
        }
        edges.push_back({job_node(j), site_node(s), lower, d});
      }
    }
    for (int s = 0; s < m; ++s)
      edges.push_back({site_node(s), sink, 0.0, problem.capacity(s)});
    return flow::feasible_flow_with_lower_bounds(node_count, edges, source,
                                                 sink, eps_);
  };

  auto extract = [&](const std::vector<double>& flows) {
    Matrix a(static_cast<std::size_t>(n),
             std::vector<double>(static_cast<std::size_t>(m), 0.0));
    // Edge order mirrors solve_at: per job, the source arc then its
    // positive-demand site arcs.
    std::size_t idx = 0;
    for (int j = 0; j < n; ++j) {
      ++idx;  // source→job arc
      for (int s = 0; s < m; ++s) {
        if (problem.demand(j, s) <= 0.0) continue;
        a[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
            std::max(0.0, flows[idx]);
        ++idx;
      }
    }
    return a;
  };

  // Progressive filling on speed fractions: unfrozen jobs rise together as
  // f·u_cap[j]; jobs blocked by a tight cut freeze at the critical f.
  std::vector<char> frozen(static_cast<std::size_t>(n), 0);
  std::vector<double> u_now(static_cast<std::size_t>(n), 0.0);
  int unfrozen = 0;
  for (int j = 0; j < n; ++j) {
    if (u_cap[static_cast<std::size_t>(j)] <= 0.0)
      frozen[static_cast<std::size_t>(j)] = 1;  // no work or no allocation
    else
      ++unfrozen;
  }

  auto u_at = [&](double f) {
    std::vector<double> u(u_now);
    for (int j = 0; j < n; ++j)
      if (!frozen[static_cast<std::size_t>(j)])
        u[static_cast<std::size_t>(j)] =
            f * u_cap[static_cast<std::size_t>(j)];
    return u;
  };

  auto best = solve_at(u_now);
  AMF_ASSERT(best.has_value(),
             "aggregates must be realizable with zero lower bounds");
  double f_lo = 0.0;

  for (int round = 0; round < max_freeze_rounds_ && unfrozen > 0; ++round) {
    // Fast path: everyone can reach their demand-cap ceiling.
    if (auto full = solve_at(u_at(1.0))) {
      best = std::move(full);
      for (int j = 0; j < n; ++j)
        if (!frozen[static_cast<std::size_t>(j)])
          u_now[static_cast<std::size_t>(j)] =
              u_cap[static_cast<std::size_t>(j)];
      break;
    }

    // Binary search the critical common fraction (monotone in f).
    double lo = f_lo, hi = 1.0;
    for (int it = 0; it < search_iters_; ++it) {
      double mid = 0.5 * (lo + hi);
      if (auto flows = solve_at(u_at(mid))) {
        lo = mid;
        best = std::move(flows);
      } else {
        hi = mid;
      }
    }
    f_lo = lo;
    for (int j = 0; j < n; ++j)
      if (!frozen[static_cast<std::size_t>(j)])
        u_now[static_cast<std::size_t>(j)] =
            lo * u_cap[static_cast<std::size_t>(j)];

    const bool last_round = (round + 1 == max_freeze_rounds_);
    int newly = 0;
    if (!last_round) {
      // Identify the jobs pinned by the tight cut via residual analysis
      // of the realized allocation x: job j can keep rising only if, at
      // every worked site where x sits on its lower bound, x[j][s] can be
      // raised by rerouting other jobs' shares — i.e. the residual
      // digraph (site→job arcs where a job can shed, job→site arcs where
      // it can absorb, site→T where capacity is slack) carries a path
      // from that site to T or back to j. Conservative (freezing early
      // costs a little optimality, never correctness).
      const Matrix x = extract(*best);
      const double tol = 1e-9 * problem.scale();

      auto lower_at = [&](int j, int s) {
        double w = problem.workload(j, s);
        if (w <= 0.0 || ideal[static_cast<std::size_t>(j)] <= 0.0) return 0.0;
        return std::min(problem.demand(j, s),
                        w * u_now[static_cast<std::size_t>(j)] /
                            ideal[static_cast<std::size_t>(j)]);
      };

      // Reverse reachability to T (any site with slack) through the
      // residual digraph; nodes are jobs [0,n) and sites [n, n+m).
      auto node_of_site = [n](int s) { return n + s; };
      std::vector<std::vector<int>> radj(static_cast<std::size_t>(n + m));
      std::vector<char> reaches_T(static_cast<std::size_t>(n + m), 0);
      std::vector<int> stack;
      for (int s = 0; s < m; ++s) {
        double used = 0.0;
        for (int j = 0; j < n; ++j)
          used += x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
        if (used < problem.capacity(s) - tol) {
          reaches_T[static_cast<std::size_t>(node_of_site(s))] = 1;
          stack.push_back(node_of_site(s));
        }
      }
      // radj holds reverse arcs: radj[v] = predecessors of v.
      for (int j = 0; j < n; ++j)
        for (int s = 0; s < m; ++s) {
          double xv = x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
          if (xv < problem.demand(j, s) - tol)  // arc job→site
            radj[static_cast<std::size_t>(node_of_site(s))].push_back(j);
          if (xv > lower_at(j, s) + tol)  // arc site→job
            radj[static_cast<std::size_t>(j)].push_back(node_of_site(s));
        }
      while (!stack.empty()) {
        int v = stack.back();
        stack.pop_back();
        for (int p : radj[static_cast<std::size_t>(v)])
          if (!reaches_T[static_cast<std::size_t>(p)]) {
            reaches_T[static_cast<std::size_t>(p)] = 1;
            stack.push_back(p);
          }
      }

      // Forward reachability from a site, lazily, to answer "s reaches j".
      auto site_reaches_job = [&](int s0, int target) {
        std::vector<char> seen(static_cast<std::size_t>(n + m), 0);
        std::vector<int> bfs{node_of_site(s0)};
        seen[static_cast<std::size_t>(node_of_site(s0))] = 1;
        while (!bfs.empty()) {
          int v = bfs.back();
          bfs.pop_back();
          if (v == target) return true;
          if (v < n) {  // job node: arcs to sites it can absorb at
            for (int s = 0; s < m; ++s)
              if (x[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)] <
                      problem.demand(v, s) - tol &&
                  !seen[static_cast<std::size_t>(node_of_site(s))]) {
                seen[static_cast<std::size_t>(node_of_site(s))] = 1;
                bfs.push_back(node_of_site(s));
              }
          } else {  // site node: arcs to jobs that can shed here
            int s = v - n;
            for (int j = 0; j < n; ++j)
              if (x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] >
                      lower_at(j, s) + tol &&
                  !seen[static_cast<std::size_t>(j)]) {
                seen[static_cast<std::size_t>(j)] = 1;
                bfs.push_back(j);
              }
          }
        }
        return false;
      };

      for (int j = 0; j < n; ++j) {
        if (frozen[static_cast<std::size_t>(j)]) continue;
        if (u_now[static_cast<std::size_t>(j)] >=
            u_cap[static_cast<std::size_t>(j)] - 1e-12) {
          frozen[static_cast<std::size_t>(j)] = 1;  // at its demand ceiling
          --unfrozen;
          ++newly;
          continue;
        }
        bool can_rise = true;
        for (int s = 0; s < m && can_rise; ++s) {
          double w = problem.workload(j, s);
          if (w <= 0.0) continue;
          double xv = x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
          if (xv > lower_at(j, s) + tol) continue;  // headroom at this site
          // Tight: x[j][s] must grow with the lower bound.
          if (xv >= problem.demand(j, s) - tol) {
            can_rise = false;  // demand cap (numerically) pins it
          } else if (!reaches_T[static_cast<std::size_t>(node_of_site(s))] &&
                     !site_reaches_job(s, j)) {
            can_rise = false;  // no residual room to reroute into this site
          }
        }
        if (!can_rise) {
          frozen[static_cast<std::size_t>(j)] = 1;
          --unfrozen;
          ++newly;
        }
      }
    }
    if (last_round || newly == 0) {
      // Out of rounds (or a numerically fuzzy cut): settle everyone at
      // the last feasible common level.
      for (int j = 0; j < n; ++j)
        if (!frozen[static_cast<std::size_t>(j)]) {
          frozen[static_cast<std::size_t>(j)] = 1;
          --unfrozen;
        }
    }
  }

  // Final solve at the frozen fractions so the returned allocation honors
  // every job's guaranteed rate simultaneously.
  if (auto final_flows = solve_at(u_now)) best = std::move(final_flows);

  Matrix shares = extract(*best);

  // Per-job refinement: each pass re-splits one job's aggregate optimally
  // against the current residual site capacities (closed form), walking
  // jobs from worst slowdown to best. Only helps where headroom exists,
  // but costs little and composes with the filling above.
  std::vector<double> residual(static_cast<std::size_t>(m));
  auto recompute_residual = [&] {
    for (int s = 0; s < m; ++s) {
      double used = 0.0;
      for (int j = 0; j < n; ++j)
        used += shares[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      residual[static_cast<std::size_t>(s)] =
          std::max(0.0, problem.capacity(s) - used);
    }
  };

  for (int pass = 0; pass < refine_passes_; ++pass) {
    recompute_residual();
    Allocation current(shares, policy);
    auto sd = slowdowns(problem, current);
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return sd[static_cast<std::size_t>(a)] > sd[static_cast<std::size_t>(b)];
    });

    for (int j : order) {
      double agg = aggregates[static_cast<std::size_t>(j)];
      if (agg <= 0.0 || problem.total_work(j) <= 0.0) continue;
      auto& row = shares[static_cast<std::size_t>(j)];

      // Upper bound per site: demand cap, and current share plus whatever
      // the site has left over.
      std::vector<double> upper(static_cast<std::size_t>(m));
      double upper_total = 0.0;
      for (int s = 0; s < m; ++s) {
        upper[static_cast<std::size_t>(s)] =
            std::min(problem.demand(j, s),
                     row[static_cast<std::size_t>(s)] +
                         residual[static_cast<std::size_t>(s)]);
        upper_total += upper[static_cast<std::size_t>(s)];
      }
      if (upper_total < agg) continue;  // numeric slack; leave as is

      // Best completion time attainable within the bounds.
      double t_best = problem.total_work(j) / agg;
      for (int s = 0; s < m; ++s) {
        double w = problem.workload(j, s);
        if (w <= 0.0) continue;
        double u = upper[static_cast<std::size_t>(s)];
        if (u <= 0.0) {
          t_best = kInf;
          break;
        }
        t_best = std::max(t_best, w / u);
      }
      if (!std::isfinite(t_best)) continue;

      // Required rate per site, then spread the leftover over headroom.
      std::vector<double> next(static_cast<std::size_t>(m), 0.0);
      double needed_total = 0.0;
      for (int s = 0; s < m; ++s) {
        double w = problem.workload(j, s);
        double need = w > 0.0 ? w / t_best : 0.0;
        need = std::min(need, upper[static_cast<std::size_t>(s)]);
        next[static_cast<std::size_t>(s)] = need;
        needed_total += need;
      }
      double leftover = agg - needed_total;
      if (leftover < 0.0) continue;  // rounding; keep previous split
      for (int s = 0; s < m && leftover > 0.0; ++s) {
        double headroom =
            upper[static_cast<std::size_t>(s)] - next[static_cast<std::size_t>(s)];
        double take = std::min(headroom, leftover);
        next[static_cast<std::size_t>(s)] += take;
        leftover -= take;
      }
      if (leftover > eps_ * problem.scale()) continue;  // could not place all

      // Commit and update residuals.
      for (int s = 0; s < m; ++s) {
        residual[static_cast<std::size_t>(s)] +=
            row[static_cast<std::size_t>(s)] - next[static_cast<std::size_t>(s)];
        residual[static_cast<std::size_t>(s)] =
            std::max(0.0, residual[static_cast<std::size_t>(s)]);
        row[static_cast<std::size_t>(s)] = next[static_cast<std::size_t>(s)];
      }
    }
  }

  return Allocation(std::move(shares), policy);
}

}  // namespace amf::core
