// scenario.hpp — named workload presets shared by benches, examples and
// tests, so every experiment in EXPERIMENTS.md is reproducible from a
// one-line scenario reference.
#pragma once

#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace amf::workload {

/// The default evaluation setting: 100 jobs over 10 sites, lognormal job
/// sizes, data on 1–4 sites per job, uncapped demands. Skew is the free
/// variable of most sweeps.
GeneratorConfig paper_default(double zipf_skew = 1.0, std::uint64_t seed = 42);

/// A small setting for property sweeps (fast enough for thousands of
/// instances): 8 jobs, 4 sites, capped demands to exercise cut structure.
GeneratorConfig property_sweep(std::uint64_t seed);

/// Geo-distributed analytics: few large datacenters and several small
/// edge sites, heavy-tailed job sizes.
GeneratorConfig geo_analytics(std::uint64_t seed = 7);

/// Names every preset for bench/report output.
struct Scenario {
  std::string name;
  GeneratorConfig config;
};

std::vector<Scenario> all_scenarios();

}  // namespace amf::workload
