#include "workload/faults.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace amf::workload {

FaultInjector::FaultInjector(FaultInjectorConfig config)
    : config_(config), rng_(config.seed) {
  AMF_REQUIRE(config.mtbf > 0.0, "mtbf must be positive");
  AMF_REQUIRE(config.mttr > 0.0, "mttr must be positive");
  AMF_REQUIRE(config.degrade_prob >= 0.0 && config.degrade_prob <= 1.0,
              "degrade_prob must be in [0, 1]");
  AMF_REQUIRE(config.degraded_factor > 0.0 && config.degraded_factor < 1.0,
              "degraded_factor must be in (0, 1)");
}

std::vector<SiteEvent> FaultInjector::schedule(int sites, double horizon) {
  AMF_REQUIRE(sites > 0, "fault schedule needs at least one site");
  AMF_REQUIRE(horizon >= 0.0, "horizon must be >= 0");

  std::vector<SiteEvent> events;
  for (int s = 0; s < sites; ++s) {
    double clock = rng_.exponential(1.0 / config_.mtbf);
    while (clock < horizon) {
      SiteEvent fail;
      fail.time = clock;
      fail.site = s;
      if (rng_.bernoulli(config_.degrade_prob)) {
        fail.kind = SiteEventKind::kDegrade;
        fail.capacity_factor = config_.degraded_factor;
      } else {
        fail.kind = SiteEventKind::kOutage;
        fail.capacity_factor = 0.0;
      }
      events.push_back(fail);

      // The matching recovery is emitted unconditionally (possibly beyond
      // the horizon): a schedule must never leave a site dark forever.
      clock += rng_.exponential(1.0 / config_.mttr);
      SiteEvent repair;
      repair.time = clock;
      repair.site = s;
      repair.kind = SiteEventKind::kRecover;
      repair.capacity_factor = 1.0;
      events.push_back(repair);

      clock += rng_.exponential(1.0 / config_.mtbf);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SiteEvent& a, const SiteEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

void FaultInjector::inject(Trace& trace, double horizon) {
  AMF_REQUIRE(!trace.capacities.empty(), "trace needs at least one site");
  if (horizon <= 0.0) {
    double span = trace.jobs.empty() ? 0.0 : trace.jobs.back().arrival;
    double total_work = 0.0;
    for (const auto& job : trace.jobs)
      total_work += std::accumulate(job.workloads.begin(),
                                    job.workloads.end(), 0.0);
    double capacity = std::accumulate(trace.capacities.begin(),
                                      trace.capacities.end(), 0.0);
    double tail = capacity > 0.0 ? total_work / capacity : 0.0;
    horizon = span + tail;
  }
  trace.events =
      schedule(static_cast<int>(trace.capacities.size()), horizon);
}

}  // namespace amf::workload
