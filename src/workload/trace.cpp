#include "workload/trace.hpp"

#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace amf::workload {

double Trace::offered_load() const {
  if (jobs.empty()) return 0.0;
  double total_work = 0.0;
  for (const auto& job : jobs)
    total_work += std::accumulate(job.workloads.begin(), job.workloads.end(),
                                  0.0);
  double span = jobs.back().arrival;
  double capacity =
      std::accumulate(capacities.begin(), capacities.end(), 0.0);
  if (span <= 0.0 || capacity <= 0.0) return 0.0;
  return total_work / (span * capacity);
}

Trace generate_trace(Generator& generator, double load, int count) {
  AMF_REQUIRE(load > 0.0, "offered load must be positive");
  AMF_REQUIRE(count >= 0, "count must be >= 0");

  Trace trace;
  auto& rng = generator.rng();
  // As in Generator::generate(), every multi-resource draw is gated on
  // the config so R = 1 traces consume the exact pre-lift RNG sequence.
  const bool multi = generator.config().resources > 1;
  if (multi) {
    trace.capacity_matrix = generator.draw_capacity_matrix(rng);
    trace.capacities.resize(trace.capacity_matrix.size());
    for (std::size_t s = 0; s < trace.capacity_matrix.size(); ++s) {
      double binding = trace.capacity_matrix[s].front();
      for (double c : trace.capacity_matrix[s]) binding = std::min(binding, c);
      trace.capacities[s] = binding;
    }
  } else {
    trace.capacities = generator.draw_capacities(rng);
  }
  double capacity = std::accumulate(trace.capacities.begin(),
                                    trace.capacities.end(), 0.0);
  // Mean work per job is mean_job_work, so a Poisson arrival rate of
  // load·capacity/mean_work delivers `load` of the system per unit time.
  double rate = load * capacity / generator.config().mean_job_work;

  double clock = 0.0;
  trace.jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    clock += rng.exponential(rate);
    auto row = generator.draw_job_row(trace.capacities, rng);
    TraceJob job;
    job.arrival = clock;
    job.workloads = std::move(row.workloads);
    job.demands = std::move(row.demands);
    if (multi) job.profile = generator.draw_profile(rng);
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

namespace {

/// Hardened row reader: length-capped line, every cell a finite double,
/// every error a ContractError naming the 1-based line number. `line_no`
/// is advanced past the consumed line.
std::vector<double> read_csv_row(std::istream& in, std::size_t expected,
                                 long& line_no) {
  std::string line;
  AMF_REQUIRE(util::read_csv_line(in, line, line_no),
              "truncated trace file (line " + std::to_string(line_no) +
                  " missing)");
  auto row = util::parse_csv_doubles(line, line_no);
  AMF_REQUIRE(expected == 0 || row.size() == expected,
              "trace file row width mismatch: expected " +
                  std::to_string(expected) + " fields, got " +
                  std::to_string(row.size()) + " (line " +
                  std::to_string(line_no) + ")");
  ++line_no;
  return row;
}

/// A header count must be an exact non-negative integer (a NaN or
/// negative double cast to size_t is undefined behavior, and a fractional
/// count is a malformed file, not a rounding choice for us to make).
std::size_t header_count(double value, const char* what, long line_no) {
  AMF_REQUIRE(value >= 0.0 && value == std::floor(value),
              std::string(what) + " count must be a non-negative integer "
                                  "(line " +
                  std::to_string(line_no) + ")");
  // Far above any real trace, far below allocation-bomb territory for the
  // reserve() calls below.
  constexpr double kMaxCount = 1e9;
  AMF_REQUIRE(value <= kMaxCount,
              std::string(what) + " count implausibly large (line " +
                  std::to_string(line_no) + ")");
  return static_cast<std::size_t>(value);
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& out) {
  using util::CsvWriter;
  const std::size_t m = trace.capacities.size();
  const bool multi = trace.multi_resource();
  const std::size_t r = multi ? trace.capacity_matrix.front().size() : 1;
  out << trace.jobs.size() << ',' << m << ',' << trace.events.size();
  if (multi) out << ',' << r;
  out << '\n';
  auto emit = [&out](const std::vector<double>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << CsvWriter::format(row[i]);
    }
    out << '\n';
  };
  if (multi) {
    AMF_REQUIRE(trace.capacity_matrix.size() == m,
                "trace capacity matrix height mismatch");
    std::vector<double> caps;
    caps.reserve(m * r);
    for (const auto& row : trace.capacity_matrix) {
      AMF_REQUIRE(row.size() == r, "trace capacity matrix width mismatch");
      caps.insert(caps.end(), row.begin(), row.end());
    }
    emit(caps);
  } else {
    emit(trace.capacities);
  }
  for (const auto& job : trace.jobs) {
    AMF_REQUIRE(job.workloads.size() == m && job.demands.size() == m,
                "trace job width mismatch");
    std::vector<double> row{job.arrival, job.weight};
    row.insert(row.end(), job.workloads.begin(), job.workloads.end());
    row.insert(row.end(), job.demands.begin(), job.demands.end());
    if (multi) {
      AMF_REQUIRE(job.profile.empty() || job.profile.size() == r,
                  "trace job profile width mismatch");
      if (job.profile.empty())
        row.insert(row.end(), r, 1.0);
      else
        row.insert(row.end(), job.profile.begin(), job.profile.end());
    }
    emit(row);
  }
  for (const auto& ev : trace.events) {
    std::vector<double> row{ev.time, static_cast<double>(ev.site),
                            static_cast<double>(ev.kind)};
    if (multi && !ev.capacity_factors.empty()) {
      AMF_REQUIRE(ev.capacity_factors.size() == r,
                  "trace event factor width mismatch");
      row.insert(row.end(), ev.capacity_factors.begin(),
                 ev.capacity_factors.end());
    } else {
      row.push_back(ev.capacity_factor);
    }
    emit(row);
  }
}

Trace load_trace(std::istream& in) {
  long line_no = 1;
  const long header_line = line_no;
  auto header = read_csv_row(in, 0, line_no);
  AMF_REQUIRE(header.size() >= 2 && header.size() <= 4,
              "trace header must be jobs,sites[,events[,resources]]");
  const std::size_t count = header_count(header[0], "job", header_line);
  const std::size_t m = header_count(header[1], "site", header_line);
  const std::size_t event_count =
      header.size() >= 3 ? header_count(header[2], "event", header_line) : 0;
  const bool multi = header.size() == 4;
  const std::size_t r =
      multi ? header_count(header[3], "resource", header_line) : 1;
  AMF_REQUIRE(m > 0, "trace needs at least one site (line 1)");
  AMF_REQUIRE(r > 0, "trace needs at least one resource (line 1)");

  Trace trace;
  if (multi) {
    auto caps = read_csv_row(in, m * r, line_no);
    for (double c : caps)
      AMF_REQUIRE(c >= 0.0, "trace capacities must be >= 0 (line 2)");
    trace.capacity_matrix.resize(m);
    trace.capacities.resize(m);
    for (std::size_t s = 0; s < m; ++s) {
      trace.capacity_matrix[s].assign(
          caps.begin() + static_cast<std::ptrdiff_t>(s * r),
          caps.begin() + static_cast<std::ptrdiff_t>((s + 1) * r));
      double binding = trace.capacity_matrix[s].front();
      for (double c : trace.capacity_matrix[s]) binding = std::min(binding, c);
      trace.capacities[s] = binding;
    }
  } else {
    trace.capacities = read_csv_row(in, m, line_no);
    for (double c : trace.capacities)
      AMF_REQUIRE(c >= 0.0, "trace capacities must be >= 0 (line 2)");
  }
  trace.jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const long row_line = line_no;
    auto row = read_csv_row(in, 2 + 2 * m + (multi ? r : 0), line_no);
    TraceJob job;
    job.arrival = row[0];
    job.weight = row[1];
    AMF_REQUIRE(job.arrival >= 0.0,
                "job arrival must be >= 0 (line " + std::to_string(row_line) +
                    ")");
    AMF_REQUIRE(job.weight > 0.0,
                "job weight must be > 0 (line " + std::to_string(row_line) +
                    ")");
    job.workloads.assign(row.begin() + 2,
                         row.begin() + 2 + static_cast<std::ptrdiff_t>(m));
    job.demands.assign(row.begin() + 2 + static_cast<std::ptrdiff_t>(m),
                       row.begin() + 2 + static_cast<std::ptrdiff_t>(2 * m));
    for (std::size_t s = 0; s < m; ++s) {
      AMF_REQUIRE(job.workloads[s] >= 0.0,
                  "job workloads must be >= 0 (line " +
                      std::to_string(row_line) + ")");
      AMF_REQUIRE(job.demands[s] >= 0.0,
                  "job demands must be >= 0 (line " +
                      std::to_string(row_line) + ")");
    }
    if (multi) {
      job.profile.assign(row.begin() + 2 + static_cast<std::ptrdiff_t>(2 * m),
                         row.end());
      bool any = false;
      for (double p : job.profile) {
        AMF_REQUIRE(p >= 0.0, "job profile entries must be >= 0 (line " +
                                  std::to_string(row_line) + ")");
        any = any || p > 0.0;
      }
      AMF_REQUIRE(any, "job profile needs a positive entry (line " +
                           std::to_string(row_line) + ")");
    }
    trace.jobs.push_back(std::move(job));
  }
  trace.events.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) {
    const long row_line = line_no;
    auto row = read_csv_row(in, 0, line_no);
    AMF_REQUIRE(row.size() == 4 || (multi && row.size() == 3 + r),
                "trace event row width mismatch (line " +
                    std::to_string(row_line) + ")");
    SiteEvent ev;
    ev.time = row[0];
    AMF_REQUIRE(ev.time >= 0.0,
                "event time must be >= 0 (line " + std::to_string(row_line) +
                    ")");
    AMF_REQUIRE(row[1] >= 0.0 && row[1] == std::floor(row[1]) &&
                    row[1] < static_cast<double>(m),
                "event site index out of range (line " +
                    std::to_string(row_line) + ")");
    ev.site = static_cast<int>(row[1]);
    AMF_REQUIRE(row[2] == 0.0 || row[2] == 1.0 || row[2] == 2.0,
                "trace event kind must be 0, 1 or 2 (line " +
                    std::to_string(row_line) + ")");
    ev.kind = static_cast<SiteEventKind>(static_cast<int>(row[2]));
    for (std::size_t k = 3; k < row.size(); ++k)
      AMF_REQUIRE(row[k] >= 0.0 && row[k] <= 1.0,
                  "event capacity factor must be in [0, 1] (line " +
                      std::to_string(row_line) + ")");
    if (row.size() == 4) {
      ev.capacity_factor = row[3];
    } else {
      ev.capacity_factors.assign(row.begin() + 3, row.end());
      double binding = ev.capacity_factors.front();
      for (double f : ev.capacity_factors) binding = std::min(binding, f);
      ev.capacity_factor = binding;
    }
    trace.events.push_back(ev);
  }
  return trace;
}

}  // namespace amf::workload
