#include "workload/trace.hpp"

#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <string>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace amf::workload {

double Trace::offered_load() const {
  if (jobs.empty()) return 0.0;
  double total_work = 0.0;
  for (const auto& job : jobs)
    total_work += std::accumulate(job.workloads.begin(), job.workloads.end(),
                                  0.0);
  double span = jobs.back().arrival;
  double capacity =
      std::accumulate(capacities.begin(), capacities.end(), 0.0);
  if (span <= 0.0 || capacity <= 0.0) return 0.0;
  return total_work / (span * capacity);
}

Trace generate_trace(Generator& generator, double load, int count) {
  AMF_REQUIRE(load > 0.0, "offered load must be positive");
  AMF_REQUIRE(count >= 0, "count must be >= 0");

  Trace trace;
  auto& rng = generator.rng();
  trace.capacities = generator.draw_capacities(rng);
  double capacity = std::accumulate(trace.capacities.begin(),
                                    trace.capacities.end(), 0.0);
  // Mean work per job is mean_job_work, so a Poisson arrival rate of
  // load·capacity/mean_work delivers `load` of the system per unit time.
  double rate = load * capacity / generator.config().mean_job_work;

  double clock = 0.0;
  trace.jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    clock += rng.exponential(rate);
    auto row = generator.draw_job_row(trace.capacities, rng);
    TraceJob job;
    job.arrival = clock;
    job.workloads = std::move(row.workloads);
    job.demands = std::move(row.demands);
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

namespace {

std::vector<double> read_csv_row(std::istream& in, std::size_t expected) {
  std::string line;
  AMF_REQUIRE(static_cast<bool>(std::getline(in, line)),
              "truncated trace file");
  std::vector<double> row;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
  AMF_REQUIRE(expected == 0 || row.size() == expected,
              "trace file row width mismatch");
  return row;
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& out) {
  using util::CsvWriter;
  const std::size_t m = trace.capacities.size();
  out << trace.jobs.size() << ',' << m << ',' << trace.events.size() << '\n';
  auto emit = [&out](const std::vector<double>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << CsvWriter::format(row[i]);
    }
    out << '\n';
  };
  emit(trace.capacities);
  for (const auto& job : trace.jobs) {
    AMF_REQUIRE(job.workloads.size() == m && job.demands.size() == m,
                "trace job width mismatch");
    std::vector<double> row{job.arrival, job.weight};
    row.insert(row.end(), job.workloads.begin(), job.workloads.end());
    row.insert(row.end(), job.demands.begin(), job.demands.end());
    emit(row);
  }
  for (const auto& ev : trace.events)
    emit({ev.time, static_cast<double>(ev.site),
          static_cast<double>(ev.kind), ev.capacity_factor});
}

Trace load_trace(std::istream& in) {
  auto header = read_csv_row(in, 0);
  AMF_REQUIRE(header.size() == 2 || header.size() == 3,
              "trace header must be jobs,sites[,events]");
  auto count = static_cast<std::size_t>(header[0]);
  auto m = static_cast<std::size_t>(header[1]);
  auto event_count =
      header.size() == 3 ? static_cast<std::size_t>(header[2]) : 0;
  Trace trace;
  trace.capacities = read_csv_row(in, m);
  trace.jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto row = read_csv_row(in, 2 + 2 * m);
    TraceJob job;
    job.arrival = row[0];
    job.weight = row[1];
    job.workloads.assign(row.begin() + 2, row.begin() + 2 + static_cast<std::ptrdiff_t>(m));
    job.demands.assign(row.begin() + 2 + static_cast<std::ptrdiff_t>(m), row.end());
    trace.jobs.push_back(std::move(job));
  }
  trace.events.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) {
    auto row = read_csv_row(in, 4);
    SiteEvent ev;
    ev.time = row[0];
    ev.site = static_cast<int>(row[1]);
    const int kind = static_cast<int>(row[2]);
    AMF_REQUIRE(kind >= 0 && kind <= 2, "trace event kind must be 0, 1 or 2");
    ev.kind = static_cast<SiteEventKind>(kind);
    ev.capacity_factor = row[3];
    trace.events.push_back(ev);
  }
  return trace;
}

}  // namespace amf::workload
