// generator.hpp — synthetic multi-site workloads.
//
// The paper evaluates AMF on simulated workloads whose defining knob is
// how skewed each job's work distribution is across sites. We model that
// with two mechanisms that can be combined:
//   * site popularity follows a Zipf law with exponent `zipf_skew` — jobs
//     place their data on hot sites more often as the exponent grows
//     (z = 0 is uniform);
//   * within a job, work splits across its chosen sites by a Dirichlet
//     draw with concentration `split_alpha` (small alpha = the job's work
//     piles onto one of its sites).
// Job sizes follow a configurable distribution; demand caps come from a
// demand model (see below).
#pragma once

#include <cstdint>

#include "core/problem.hpp"
#include "util/rng.hpp"

namespace amf::workload {

/// How per-site demand caps d[j][s] derive from workloads.
enum class DemandModel {
  /// d[j][s] = C[s] wherever the job has work: the job could absorb the
  /// whole site (elastic parallelism). The paper's headline setting.
  kUncapped,
  /// d[j][s] = demand_factor · w[j][s]: parallelism proportional to the
  /// work present at the site (a task-slot model).
  kProportionalToWork,
};

/// Job size distribution for total work W_j.
enum class SizeDistribution { kUniform, kLognormal, kPareto };

struct GeneratorConfig {
  int jobs = 100;
  int sites = 10;

  /// Zipf exponent of site popularity (0 = uniform placement).
  double zipf_skew = 1.0;
  /// Number of sites holding each job's data, drawn uniformly from
  /// [sites_per_job_min, sites_per_job_max] (clamped to `sites`).
  int sites_per_job_min = 1;
  int sites_per_job_max = 4;
  /// Dirichlet concentration of the within-job work split (1 = flat
  /// simplex; < 1 skews the split itself).
  double split_alpha = 1.0;

  SizeDistribution size_distribution = SizeDistribution::kLognormal;
  /// Mean of total work per job (lognormal sigma / pareto alpha below).
  double mean_job_work = 100.0;
  double lognormal_sigma = 1.0;
  double pareto_alpha = 1.5;

  /// Site capacity before jitter.
  double capacity_per_site = 100.0;
  /// Uniform multiplicative jitter: C[s] = capacity_per_site·(1 ± jitter).
  double capacity_jitter = 0.0;

  DemandModel demand_model = DemandModel::kUncapped;
  /// Used by kProportionalToWork.
  double demand_factor = 1.0;

  /// Resource dimension R. 1 (the default) generates scalar instances
  /// with the exact pre-lift RNG draw sequence; R > 1 additionally draws
  /// a per-site capacity matrix and per-job Leontief profiles.
  int resources = 1;
  /// Uniform multiplicative jitter of each capacity[s][r] around
  /// capacity_per_site (multi-resource only).
  double resource_jitter = 0.25;
  /// Per-resource profile entries are drawn U(profile_min, profile_max)
  /// (multi-resource only).
  double profile_min = 0.25;
  double profile_max = 1.25;

  std::uint64_t seed = 42;
};

/// Deterministic workload generator (same config + seed = same instance).
class Generator {
 public:
  explicit Generator(GeneratorConfig config);

  /// One instance; advances the internal RNG (call repeatedly for a
  /// sequence of independent instances).
  core::AllocationProblem generate();

  /// Total work W_j for a fresh job (exposed for trace generation).
  double draw_job_work(util::Rng& rng) const;

  const GeneratorConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }

  /// Per-site workload row + matching demand row for one job against the
  /// given capacities (exposed for trace generation).
  struct JobRow {
    std::vector<double> workloads;
    std::vector<double> demands;
  };
  JobRow draw_job_row(const std::vector<double>& capacities, util::Rng& rng) const;

  /// Site capacities for one instance.
  std::vector<double> draw_capacities(util::Rng& rng) const;

  /// Per-site per-resource capacities (m×R, multi-resource configs only).
  core::Matrix draw_capacity_matrix(util::Rng& rng) const;

  /// One job's Leontief profile (width R, multi-resource configs only).
  std::vector<double> draw_profile(util::Rng& rng) const;

 private:
  GeneratorConfig config_;
  util::Rng rng_;
  util::ZipfSampler site_sampler_;
};

}  // namespace amf::workload
