#include "workload/scenario.hpp"

namespace amf::workload {

GeneratorConfig paper_default(double zipf_skew, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.jobs = 100;
  cfg.sites = 10;
  cfg.zipf_skew = zipf_skew;
  cfg.sites_per_job_min = 1;
  cfg.sites_per_job_max = 4;
  cfg.split_alpha = 1.0;
  cfg.size_distribution = SizeDistribution::kLognormal;
  cfg.mean_job_work = 100.0;
  cfg.lognormal_sigma = 1.0;
  cfg.capacity_per_site = 100.0;
  cfg.demand_model = DemandModel::kUncapped;
  cfg.seed = seed;
  return cfg;
}

GeneratorConfig property_sweep(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.jobs = 8;
  cfg.sites = 4;
  cfg.zipf_skew = 0.8;
  cfg.sites_per_job_min = 1;
  cfg.sites_per_job_max = 3;
  cfg.split_alpha = 0.7;
  cfg.size_distribution = SizeDistribution::kUniform;
  cfg.mean_job_work = 50.0;
  cfg.capacity_per_site = 60.0;
  cfg.capacity_jitter = 0.3;
  cfg.demand_model = DemandModel::kProportionalToWork;
  cfg.demand_factor = 1.5;
  cfg.seed = seed;
  return cfg;
}

GeneratorConfig geo_analytics(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.jobs = 150;
  cfg.sites = 12;
  cfg.zipf_skew = 1.2;
  cfg.sites_per_job_min = 2;
  cfg.sites_per_job_max = 6;
  cfg.split_alpha = 0.5;
  cfg.size_distribution = SizeDistribution::kPareto;
  cfg.pareto_alpha = 1.5;
  cfg.mean_job_work = 200.0;
  cfg.capacity_per_site = 120.0;
  cfg.capacity_jitter = 0.5;
  cfg.demand_model = DemandModel::kUncapped;
  cfg.seed = seed;
  return cfg;
}

std::vector<Scenario> all_scenarios() {
  return {
      {"paper_default", paper_default()},
      {"property_sweep", property_sweep(1)},
      {"geo_analytics", geo_analytics()},
  };
}

}  // namespace amf::workload
