// faults.hpp — seeded site-failure schedule generation (MTBF/MTTR model).
//
// Real multi-site schedulers spend most of their complexity on machines
// that disappear and come back; the fault injector grows the trace model
// in that direction. Each site alternates between healthy and failed
// states: up-times are exponential with mean `mtbf`, repair times
// exponential with mean `mttr` (a classic alternating-renewal
// availability model, steady-state availability mtbf/(mtbf+mttr)). A
// failure is a full outage or, with probability `degrade_prob`, a partial
// degradation that leaves `degraded_factor` of the capacity usable.
//
// Every failure drawn inside the horizon emits its matching recovery even
// when the repair completes after the horizon, so a generated schedule
// never strands a site permanently dark — any trace it decorates stays
// runnable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace amf::workload {

struct FaultInjectorConfig {
  /// Mean healthy time between failures, per site (time units of the
  /// trace). Smaller = more hostile environment.
  double mtbf = 200.0;
  /// Mean time to repair one failure.
  double mttr = 20.0;
  /// Probability that a failure only degrades the site instead of taking
  /// it fully down.
  double degrade_prob = 0.0;
  /// Surviving capacity fraction of a degradation event (in (0, 1)).
  double degraded_factor = 0.5;
  std::uint64_t seed = 1;
};

/// Deterministic fault-schedule generator (same config = same schedule).
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config);

  /// Fault schedule over [0, horizon) for `sites` sites, sorted by time.
  /// Advances the internal RNG (call repeatedly for independent draws).
  std::vector<SiteEvent> schedule(int sites, double horizon);

  /// Generates a schedule and attaches it to the trace. `horizon` <= 0
  /// auto-sizes to the arrival span plus a drain tail of one expected
  /// busy period (total work / total capacity).
  void inject(Trace& trace, double horizon = 0.0);

  const FaultInjectorConfig& config() const { return config_; }

 private:
  FaultInjectorConfig config_;
  util::Rng rng_;
};

}  // namespace amf::workload
