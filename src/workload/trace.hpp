// trace.hpp — arrival traces for the discrete-event simulator.
//
// A trace is a sequence of jobs with arrival timestamps over a fixed set
// of sites. Arrivals are Poisson with a rate chosen relative to system
// capacity, so sweeping `load` from light to beyond saturation reproduces
// the dynamic experiments (bench F9).
#pragma once

#include <iosfwd>
#include <vector>

#include "workload/generator.hpp"

namespace amf::workload {

/// One job of a trace.
struct TraceJob {
  double arrival = 0.0;
  std::vector<double> workloads;  // per site
  std::vector<double> demands;    // per site
  double weight = 1.0;
};

/// Kind of a timed change to a site's usable capacity.
enum class SiteEventKind {
  kOutage,   ///< the site goes fully dark (capacity factor 0)
  kDegrade,  ///< partial capacity loss (factor in (0, 1))
  kRecover,  ///< capacity restored (factor in (0, 1]; 1 = full health)
};

/// One timed fault-schedule entry: at `time`, site `site`'s usable
/// capacity becomes `capacity_factor` times its nominal capacity. The
/// factor is absolute (not cumulative), so an outage followed by a
/// recovery with factor 1 restores the site exactly.
struct SiteEvent {
  double time = 0.0;
  int site = 0;
  SiteEventKind kind = SiteEventKind::kOutage;
  double capacity_factor = 0.0;
};

/// A full trace over a fixed site set.
struct Trace {
  std::vector<double> capacities;
  std::vector<TraceJob> jobs;    // sorted by arrival
  std::vector<SiteEvent> events; // fault schedule, sorted by time

  bool has_faults() const { return !events.empty(); }

  /// Offered load: total work arriving per unit time divided by total
  /// capacity (1.0 = saturation on average).
  double offered_load() const;
};

/// Generates `count` jobs with exponential inter-arrival times such that
/// the offered load (mean arriving work per unit time over total
/// capacity) equals `load`. Workload shapes and demand caps follow the
/// generator's config; capacities are drawn once for the whole trace.
Trace generate_trace(Generator& generator, double load, int count);

/// CSV round-trip: header `jobs,sites,events`, a capacity row, per job
/// one row `arrival,weight,workloads...,demands...`, then per fault event
/// one row `time,site,kind,capacity_factor` (kind encoded 0/1/2 as in
/// SiteEventKind). Traces written by older versions (two-field header, no
/// event rows) load as fault-free.
void save_trace(const Trace& trace, std::ostream& out);
Trace load_trace(std::istream& in);

}  // namespace amf::workload
