// trace.hpp — arrival traces for the discrete-event simulator.
//
// A trace is a sequence of jobs with arrival timestamps over a fixed set
// of sites. Arrivals are Poisson with a rate chosen relative to system
// capacity, so sweeping `load` from light to beyond saturation reproduces
// the dynamic experiments (bench F9).
#pragma once

#include <iosfwd>
#include <vector>

#include "workload/generator.hpp"

namespace amf::workload {

/// One job of a trace.
struct TraceJob {
  double arrival = 0.0;
  std::vector<double> workloads;  // per site
  std::vector<double> demands;    // per site
  double weight = 1.0;
};

/// A full trace over a fixed site set.
struct Trace {
  std::vector<double> capacities;
  std::vector<TraceJob> jobs;  // sorted by arrival

  /// Offered load: total work arriving per unit time divided by total
  /// capacity (1.0 = saturation on average).
  double offered_load() const;
};

/// Generates `count` jobs with exponential inter-arrival times such that
/// the offered load (mean arriving work per unit time over total
/// capacity) equals `load`. Workload shapes and demand caps follow the
/// generator's config; capacities are drawn once for the whole trace.
Trace generate_trace(Generator& generator, double load, int count);

/// CSV round-trip: header `jobs,sites`, a capacity row, then per job one
/// row `arrival,weight,workloads...,demands...`.
void save_trace(const Trace& trace, std::ostream& out);
Trace load_trace(std::istream& in);

}  // namespace amf::workload
