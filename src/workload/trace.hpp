// trace.hpp — arrival traces for the discrete-event simulator.
//
// A trace is a sequence of jobs with arrival timestamps over a fixed set
// of sites. Arrivals are Poisson with a rate chosen relative to system
// capacity, so sweeping `load` from light to beyond saturation reproduces
// the dynamic experiments (bench F9).
#pragma once

#include <iosfwd>
#include <vector>

#include "workload/generator.hpp"

namespace amf::workload {

/// One job of a trace.
struct TraceJob {
  double arrival = 0.0;
  std::vector<double> workloads;  // per site (raw task units)
  std::vector<double> demands;    // per site (raw task units)
  double weight = 1.0;
  /// Leontief per-resource profile (width R on a multi-resource trace).
  /// Empty = the unit profile.
  std::vector<double> profile;
};

/// Kind of a timed change to a site's usable capacity.
enum class SiteEventKind {
  kOutage,   ///< the site goes fully dark (capacity factor 0)
  kDegrade,  ///< partial capacity loss (factor in (0, 1))
  kRecover,  ///< capacity restored (factor in (0, 1]; 1 = full health)
};

/// One timed fault-schedule entry: at `time`, site `site`'s usable
/// capacity becomes `capacity_factor` times its nominal capacity. The
/// factor is absolute (not cumulative), so an outage followed by a
/// recovery with factor 1 restores the site exactly.
struct SiteEvent {
  double time = 0.0;
  int site = 0;
  SiteEventKind kind = SiteEventKind::kOutage;
  double capacity_factor = 0.0;
  /// Multi-resource traces may impair resources unevenly (a NIC brownout
  /// leaves CPU whole): per-resource factors, width R. Empty = apply
  /// `capacity_factor` uniformly. The kind constraints bind on the
  /// minimum factor; an outage requires every factor to be 0.
  std::vector<double> capacity_factors;
};

/// A full trace over a fixed site set.
struct Trace {
  /// Scalar site capacities. On a multi-resource trace this holds the
  /// binding (minimum-entry) capacity of each site's row — derived from
  /// `capacity_matrix`, kept for offered-load accounting and any scalar
  /// consumer.
  std::vector<double> capacities;
  /// Per-site per-resource capacities (m×R). Empty on scalar traces.
  std::vector<std::vector<double>> capacity_matrix;
  std::vector<TraceJob> jobs;    // sorted by arrival
  std::vector<SiteEvent> events; // fault schedule, sorted by time

  bool has_faults() const { return !events.empty(); }
  bool multi_resource() const { return !capacity_matrix.empty(); }
  int resources() const {
    return multi_resource() ? static_cast<int>(capacity_matrix.front().size())
                            : 1;
  }

  /// Offered load: total work arriving per unit time divided by total
  /// capacity (1.0 = saturation on average).
  double offered_load() const;
};

/// Generates `count` jobs with exponential inter-arrival times such that
/// the offered load (mean arriving work per unit time over total
/// capacity) equals `load`. Workload shapes and demand caps follow the
/// generator's config; capacities are drawn once for the whole trace.
Trace generate_trace(Generator& generator, double load, int count);

/// CSV round-trip: header `jobs,sites,events`, a capacity row, per job
/// one row `arrival,weight,workloads...,demands...`, then per fault event
/// one row `time,site,kind,capacity_factor` (kind encoded 0/1/2 as in
/// SiteEventKind). Traces written by older versions (two-field header, no
/// event rows) load as fault-free.
///
/// Multi-resource traces use a four-field header `jobs,sites,events,
/// resources`; the capacity line then carries m·R values site-major, job
/// rows append the R profile entries, and event rows carry either one
/// uniform factor (width 4) or R per-resource factors (width 3+R).
void save_trace(const Trace& trace, std::ostream& out);
Trace load_trace(std::istream& in);

}  // namespace amf::workload
