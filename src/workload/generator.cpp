#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace amf::workload {

Generator::Generator(GeneratorConfig config)
    : config_(config),
      rng_(config.seed),
      site_sampler_(static_cast<std::size_t>(std::max(1, config.sites)),
                    std::max(0.0, config.zipf_skew)) {
  AMF_REQUIRE(config_.jobs >= 0, "jobs must be >= 0");
  AMF_REQUIRE(config_.sites >= 1, "sites must be >= 1");
  AMF_REQUIRE(config_.zipf_skew >= 0.0, "zipf_skew must be >= 0");
  AMF_REQUIRE(config_.sites_per_job_min >= 1, "sites_per_job_min must be >= 1");
  AMF_REQUIRE(config_.sites_per_job_max >= config_.sites_per_job_min,
              "sites_per_job_max must be >= sites_per_job_min");
  AMF_REQUIRE(config_.split_alpha > 0.0, "split_alpha must be > 0");
  AMF_REQUIRE(config_.mean_job_work > 0.0, "mean_job_work must be > 0");
  AMF_REQUIRE(config_.capacity_per_site > 0.0,
              "capacity_per_site must be > 0");
  AMF_REQUIRE(config_.capacity_jitter >= 0.0 && config_.capacity_jitter < 1.0,
              "capacity_jitter must be in [0, 1)");
  AMF_REQUIRE(config_.demand_factor > 0.0, "demand_factor must be > 0");
  AMF_REQUIRE(config_.resources >= 1, "resources must be >= 1");
  AMF_REQUIRE(config_.resource_jitter >= 0.0 && config_.resource_jitter < 1.0,
              "resource_jitter must be in [0, 1)");
  AMF_REQUIRE(config_.profile_min > 0.0 &&
                  config_.profile_max >= config_.profile_min,
              "profile range must satisfy 0 < profile_min <= profile_max");
}

double Generator::draw_job_work(util::Rng& rng) const {
  switch (config_.size_distribution) {
    case SizeDistribution::kUniform:
      return rng.uniform(0.5 * config_.mean_job_work,
                         1.5 * config_.mean_job_work);
    case SizeDistribution::kLognormal: {
      // Choose mu so that E[X] = mean_job_work for the given sigma.
      double sigma = config_.lognormal_sigma;
      double mu = std::log(config_.mean_job_work) - 0.5 * sigma * sigma;
      return rng.lognormal(mu, sigma);
    }
    case SizeDistribution::kPareto: {
      // E[X] = xm·alpha/(alpha-1) for alpha > 1; solve xm for the mean.
      double alpha = std::max(1.05, config_.pareto_alpha);
      double xm = config_.mean_job_work * (alpha - 1.0) / alpha;
      return rng.pareto(xm, alpha);
    }
  }
  AMF_ASSERT(false, "unknown size distribution");
  return 0.0;
}

std::vector<double> Generator::draw_capacities(util::Rng& rng) const {
  std::vector<double> caps(static_cast<std::size_t>(config_.sites));
  for (auto& c : caps) {
    double jitter =
        config_.capacity_jitter == 0.0
            ? 0.0
            : rng.uniform(-config_.capacity_jitter, config_.capacity_jitter);
    c = config_.capacity_per_site * (1.0 + jitter);
  }
  return caps;
}

core::Matrix Generator::draw_capacity_matrix(util::Rng& rng) const {
  AMF_REQUIRE(config_.resources > 1,
              "capacity matrix draws need a multi-resource config");
  core::Matrix caps(static_cast<std::size_t>(config_.sites));
  for (auto& row : caps) {
    row.resize(static_cast<std::size_t>(config_.resources));
    for (auto& c : row) {
      double jitter =
          config_.resource_jitter == 0.0
              ? 0.0
              : rng.uniform(-config_.resource_jitter, config_.resource_jitter);
      c = config_.capacity_per_site * (1.0 + jitter);
    }
  }
  return caps;
}

std::vector<double> Generator::draw_profile(util::Rng& rng) const {
  AMF_REQUIRE(config_.resources > 1,
              "profile draws need a multi-resource config");
  std::vector<double> profile(static_cast<std::size_t>(config_.resources));
  for (auto& p : profile)
    p = rng.uniform(config_.profile_min, config_.profile_max);
  return profile;
}

Generator::JobRow Generator::draw_job_row(
    const std::vector<double>& capacities, util::Rng& rng) const {
  const int m = static_cast<int>(capacities.size());
  const int span = std::min(
      m, static_cast<int>(rng.uniform_int(config_.sites_per_job_min,
                                          config_.sites_per_job_max)));

  // Pick `span` distinct sites, hot sites preferred per the Zipf law.
  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(span));
  std::vector<char> used(static_cast<std::size_t>(m), 0);
  int guard = 0;
  while (static_cast<int>(chosen.size()) < span) {
    int s = static_cast<int>(site_sampler_(rng)) % m;
    if (!used[static_cast<std::size_t>(s)]) {
      used[static_cast<std::size_t>(s)] = 1;
      chosen.push_back(s);
    } else if (++guard > 64 * m) {
      // Heavily skewed sampler keeps hitting taken sites: fill linearly.
      for (int t = 0; t < m && static_cast<int>(chosen.size()) < span; ++t)
        if (!used[static_cast<std::size_t>(t)]) {
          used[static_cast<std::size_t>(t)] = 1;
          chosen.push_back(t);
        }
    }
  }

  const double work = draw_job_work(rng);
  auto split = rng.dirichlet(chosen.size(), config_.split_alpha);

  JobRow row;
  row.workloads.assign(static_cast<std::size_t>(m), 0.0);
  row.demands.assign(static_cast<std::size_t>(m), 0.0);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    int s = chosen[i];
    double w = work * split[i];
    if (w <= 0.0) continue;
    row.workloads[static_cast<std::size_t>(s)] = w;
    switch (config_.demand_model) {
      case DemandModel::kUncapped:
        row.demands[static_cast<std::size_t>(s)] =
            capacities[static_cast<std::size_t>(s)];
        break;
      case DemandModel::kProportionalToWork:
        row.demands[static_cast<std::size_t>(s)] =
            std::min(capacities[static_cast<std::size_t>(s)],
                     config_.demand_factor * w);
        break;
    }
  }
  return row;
}

core::AllocationProblem Generator::generate() {
  // R > 1 draws a capacity matrix instead of a scalar capacity row and a
  // Leontief profile per job; every extra draw is gated on the config so
  // R = 1 consumes the exact pre-lift RNG sequence.
  if (config_.resources > 1) {
    auto capacity_matrix = draw_capacity_matrix(rng_);
    std::vector<double> binding(capacity_matrix.size());
    for (std::size_t s = 0; s < capacity_matrix.size(); ++s)
      binding[s] = flow::binding_min(capacity_matrix[s]);
    core::Matrix demands, workloads, profiles;
    demands.reserve(static_cast<std::size_t>(config_.jobs));
    workloads.reserve(static_cast<std::size_t>(config_.jobs));
    profiles.reserve(static_cast<std::size_t>(config_.jobs));
    for (int j = 0; j < config_.jobs; ++j) {
      auto row = draw_job_row(binding, rng_);
      demands.push_back(std::move(row.demands));
      workloads.push_back(std::move(row.workloads));
      profiles.push_back(draw_profile(rng_));
    }
    return core::AllocationProblem::multi(
        std::move(demands), std::move(capacity_matrix), std::move(profiles),
        std::move(workloads));
  }
  auto capacities = draw_capacities(rng_);
  core::Matrix demands, workloads;
  demands.reserve(static_cast<std::size_t>(config_.jobs));
  workloads.reserve(static_cast<std::size_t>(config_.jobs));
  for (int j = 0; j < config_.jobs; ++j) {
    auto row = draw_job_row(capacities, rng_);
    demands.push_back(std::move(row.demands));
    workloads.push_back(std::move(row.workloads));
  }
  return core::AllocationProblem(std::move(demands), std::move(capacities),
                                 std::move(workloads));
}

}  // namespace amf::workload
