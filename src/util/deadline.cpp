#include "util/deadline.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace amf::util {

Deadline Deadline::after_ms(double ms) {
  AMF_REQUIRE(std::isfinite(ms) && ms >= 0.0,
              "deadline offset must be finite and >= 0");
  Deadline d;
  d.unlimited_ = false;
  d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
  return d;
}

Deadline Deadline::at(Clock::time_point when) {
  Deadline d;
  d.unlimited_ = false;
  d.when_ = when;
  return d;
}

Deadline Deadline::earlier(const Deadline& a, const Deadline& b) {
  if (a.unlimited_) return b;
  if (b.unlimited_) return a;
  return a.when_ <= b.when_ ? a : b;
}

double Deadline::remaining_ms() const {
  if (unlimited_) return std::numeric_limits<double>::infinity();
  const double ms =
      std::chrono::duration<double, std::milli>(when_ - Clock::now()).count();
  return ms > 0.0 ? ms : 0.0;
}

CancelToken CancelToken::make() {
  CancelToken token;
  token.flag_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

void CancelToken::request_cancel() const {
  if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
}

namespace {
thread_local const StopToken* g_ambient_stop = nullptr;
}  // namespace

const StopToken* ambient_stop() { return g_ambient_stop; }

ScopedStop::ScopedStop(const StopToken& token) : previous_(g_ambient_stop) {
  g_ambient_stop = &token;
}

ScopedStop::~ScopedStop() { g_ambient_stop = previous_; }

}  // namespace amf::util
