#include "util/csv.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>

#include "util/error.hpp"

namespace amf::util {

namespace {

std::string at_line(long line_number) {
  return " (line " + std::to_string(line_number) + ")";
}

}  // namespace

bool read_csv_line(std::istream& in, std::string& line, long line_number) {
  line.clear();
  if (!std::getline(in, line)) {
    // Distinguish clean EOF from a stream that died mid-read.
    AMF_REQUIRE(in.eof() || !in.bad(),
                "CSV input stream failed" + at_line(line_number));
    return false;
  }
  AMF_REQUIRE(line.size() <= kMaxCsvLineLength,
              "CSV line exceeds " + std::to_string(kMaxCsvLineLength) +
                  " bytes" + at_line(line_number));
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

double parse_csv_double(const std::string& cell, long line_number) {
  AMF_REQUIRE(!cell.empty(), "empty CSV cell" + at_line(line_number));
  const char* begin = cell.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  AMF_REQUIRE(end == begin + cell.size() && errno != ERANGE,
              "CSV cell '" + cell + "' is not a valid number" +
                  at_line(line_number));
  AMF_REQUIRE(std::isfinite(value),
              "CSV cell '" + cell + "' is not finite" + at_line(line_number));
  return value;
}

std::vector<double> parse_csv_doubles(const std::string& line,
                                      long line_number) {
  std::vector<double> row;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    const std::size_t len =
        (comma == std::string::npos ? line.size() : comma) - start;
    row.push_back(parse_csv_double(line.substr(start, len), line_number));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return row;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  AMF_REQUIRE(columns_ > 0, "CSV header must have at least one column");
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  AMF_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  write_row(cells);
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format(v));
  row(s);
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::format(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  // %.12g round-trips every value that arises from our experiments while
  // staying human-readable.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace amf::util
