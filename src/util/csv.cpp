#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace amf::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  AMF_REQUIRE(columns_ > 0, "CSV header must have at least one column");
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  AMF_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  write_row(cells);
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format(v));
  row(s);
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::format(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  // %.12g round-trips every value that arises from our experiments while
  // staying human-readable.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace amf::util
