#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace amf::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // xoshiro's all-zero state is a fixed point; splitmix64 cannot produce
  // four zero words from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  AMF_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  AMF_REQUIRE(n > 0, "uniform_index(0) is undefined");
  // Lemire's unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (~n + 1) % n;  // (2^64 - n) mod n
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AMF_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  AMF_REQUIRE(lambda > 0, "exponential rate must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller without caching the second variate, so that the stream of
  // raw draws consumed is a deterministic function of the call sequence.
  double u1 = 1.0 - uniform();  // (0, 1]
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  AMF_REQUIRE(xm > 0 && alpha > 0, "pareto needs xm > 0 and alpha > 0");
  double u = 1.0 - uniform();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::gamma(double shape) {
  AMF_REQUIRE(shape > 0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
    double u = 1.0 - uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    double u = 1.0 - uniform();  // (0, 1]
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  ZipfSampler sampler(static_cast<std::size_t>(n), s);
  return sampler(*this);
}

std::vector<double> Rng::dirichlet(std::size_t n, double alpha) {
  AMF_REQUIRE(n > 0, "dirichlet dimension must be positive");
  AMF_REQUIRE(alpha > 0, "dirichlet concentration must be positive");
  std::vector<double> x(n);
  double sum = 0.0;
  for (auto& xi : x) {
    xi = gamma(alpha);
    sum += xi;
  }
  if (sum <= 0) {
    // Vanishingly unlikely underflow for tiny alpha: fall back to a
    // one-hot sample, which is the alpha -> 0 limit of the Dirichlet.
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<std::size_t>(uniform_index(n))] = 1.0;
    return x;
  }
  for (auto& xi : x) xi /= sum;
  return x;
}

Rng Rng::split() {
  // A child seeded from two fresh draws; streams do not overlap in practice
  // for the scale of experiments here.
  std::uint64_t a = (*this)();
  std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  AMF_REQUIRE(n > 0, "ZipfSampler needs n > 0");
  AMF_REQUIRE(s >= 0, "ZipfSampler exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  double u = rng.uniform();
  // First index whose CDF exceeds u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] > u)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t i) const {
  AMF_REQUIRE(i < cdf_.size(), "ZipfSampler::pmf index out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace amf::util
