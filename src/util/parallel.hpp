// parallel.hpp — a small work-stealing-free thread pool and parallel_for
// used by the experiment harnesses to run parameter sweeps concurrently.
// Each sweep point owns an independent Rng (via Rng::split at setup time),
// so parallel execution never perturbs the reported numbers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amf::util {

/// Fixed-size thread pool executing arbitrary tasks. Join happens on
/// destruction; tasks submitted after shutdown throw.
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future reports its completion/exception.
  std::future<void> submit(std::function<void()> task);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across a transient pool of `threads`
/// workers (0 = hardware concurrency). Exceptions from any iteration are
/// rethrown on the calling thread (first one wins). Iterations are chunked
/// contiguously to keep per-task overhead low.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace amf::util
