// parallel.hpp — a small work-stealing-free thread pool and parallel_for
// used by the experiment harnesses to run parameter sweeps concurrently.
// Each sweep point owns an independent Rng (via Rng::split at setup time),
// so parallel execution never perturbs the reported numbers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amf::util {

/// Fixed-size thread pool executing arbitrary tasks. Join happens on
/// destruction; tasks submitted after shutdown throw.
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future reports its completion/exception.
  std::future<void> submit(std::function<void()> task);

  std::size_t size() const { return workers_.size(); }

  /// The process-wide pool every parallel_for call shares, so nested and
  /// repeated sweeps reuse one set of workers instead of spawning
  /// transient threads per call. Created on first use with the size set
  /// by set_shared_threads (default: hardware concurrency); lives until
  /// process exit.
  static ThreadPool& shared();

  /// Sizes the shared pool (0 = hardware concurrency). Must be called
  /// before the pool's first use — typically from main, e.g. to honor a
  /// --threads command-line flag.
  static void set_shared_threads(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) on the shared pool, using at most
/// `threads` workers (0 = the pool's size). Exceptions from any iteration
/// are rethrown on the calling thread (first one wins). Iterations are
/// chunked contiguously to keep per-task overhead low. Safe to call from
/// inside a pool worker: the calling thread always participates and the
/// shared chunk counter lets it finish alone if the pool is saturated.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace amf::util
