#include "util/log.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace amf::util {

namespace {

void append_escaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_number(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  double back = 0.0;
  if (std::sscanf(buf, "%lf", &back) != 1 || back != v)
    std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

long long wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw ContractError("unknown log level \"" + std::string(name) +
                      "\" (debug|info|warn|error|off)");
}

Logger::Logger() = default;

Logger& Logger::global() {
  static Logger* g = new Logger();
  return *g;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::set_rate_limit(double per_second, double burst) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_per_s_ = per_second > 0.0 ? per_second : 0.0;
  burst_ = burst > 0.0 ? burst : 0.0;
  buckets_.clear();
}

Logger::Line::Line(Logger* logger, LogLevel level, std::string_view event)
    : logger_(logger), event_(event) {
  if (logger_ == nullptr) return;
  body_ = "{\"ts\":";
  body_ += std::to_string(wall_ms());
  body_ += ",\"level\":\"";
  body_ += to_string(level);
  body_ += "\",\"event\":";
  append_escaped(&body_, event);
}

Logger::Line::Line(Line&& other) noexcept
    : logger_(other.logger_),
      event_(std::move(other.event_)),
      body_(std::move(other.body_)) {
  other.logger_ = nullptr;
}

Logger::Line::~Line() {
  if (logger_ == nullptr) return;
  logger_->emit(event_, std::move(body_));
}

Logger::Line& Logger::Line::str(std::string_view key, std::string_view value) {
  if (logger_ == nullptr) return *this;
  body_ += ",";
  append_escaped(&body_, key);
  body_ += ":";
  append_escaped(&body_, value);
  return *this;
}

Logger::Line& Logger::Line::num(std::string_view key, double value) {
  if (logger_ == nullptr) return *this;
  body_ += ",";
  append_escaped(&body_, key);
  body_ += ":";
  append_number(&body_, value);
  return *this;
}

Logger::Line& Logger::Line::num(std::string_view key, long long value) {
  if (logger_ == nullptr) return *this;
  body_ += ",";
  append_escaped(&body_, key);
  body_ += ":";
  body_ += std::to_string(value);
  return *this;
}

Logger::Line& Logger::Line::boolean(std::string_view key, bool value) {
  if (logger_ == nullptr) return *this;
  body_ += ",";
  append_escaped(&body_, key);
  body_ += value ? ":true" : ":false";
  return *this;
}

Logger::Line& Logger::Line::trace(std::uint64_t id) {
  if (logger_ == nullptr || id == 0) return *this;
  return num("trace", static_cast<long long>(id));
}

Logger::Line Logger::log(LogLevel level, std::string_view event) {
  if (level == LogLevel::kOff || !enabled(level)) {
    return Line(nullptr, level, event);
  }
  return Line(this, level, event);
}

void Logger::emit(const std::string& event, std::string body) {
  std::uint64_t suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rate_per_s_ > 0.0) {
      Bucket& bucket = buckets_[event];
      const double now = steady_s();
      if (bucket.last_s == 0.0) {
        bucket.tokens = burst_ > 0.0 ? burst_ : 1.0;
      } else {
        bucket.tokens += (now - bucket.last_s) * rate_per_s_;
        const double cap = burst_ > 0.0 ? burst_ : 1.0;
        if (bucket.tokens > cap) bucket.tokens = cap;
      }
      bucket.last_s = now;
      if (bucket.tokens < 1.0) {
        ++bucket.suppressed;
        suppressed_total_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      bucket.tokens -= 1.0;
      suppressed = bucket.suppressed;
      bucket.suppressed = 0;
    }
    if (suppressed > 0) {
      body += ",\"suppressed\":";
      body += std::to_string(suppressed);
    }
    body += "}\n";
    emitted_.fetch_add(1, std::memory_order_relaxed);
    if (sink_) {
      sink_(body);
      return;
    }
    std::fwrite(body.data(), 1, body.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace amf::util
