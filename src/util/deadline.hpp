// deadline.hpp — monotonic deadlines and cooperative cancellation.
//
// An online scheduler must bound the *latency* of a reallocation point,
// not just its outcome: a solver that is correct but unbounded can stall
// the whole event loop. The primitives here let long-running solver loops
// stop cooperatively:
//
//   * Deadline — a point on the monotonic clock (never affected by wall
//     clock adjustments). Default-constructed deadlines never expire.
//   * CancelToken — a shared atomic flag for external "stop now" requests
//     (operator kill switch, superseding event). Copies observe the same
//     flag; a default-constructed token is inert and never fires.
//   * StopToken — deadline + cancel token, the single value threaded into
//     solver loops (by const pointer; nullptr = run unbounded).
//   * StopPoller — amortizes the stop check inside tight loops: the
//     cancel flag (one relaxed atomic load) is consulted every call, the
//     clock only every `stride` calls.
//
// Solvers poll, they are never interrupted asynchronously: a stopped
// solver always leaves its data structures in a consistent state and
// reports kDeadlineExceeded (or returns a conservative partial result)
// instead of throwing mid-mutation.
//
// Ambient token: ScopedStop installs a StopToken in a thread-local slot
// for the duration of a scope. Solver entry points resolve an explicit
// token first and fall back to the ambient one (effective_stop), so a
// per-event budget reaches every layer — including allocators called
// through the virtual Allocator interface — without widening every
// signature in between.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace amf::util {

/// Thrown by solvers whose interface has no way to return a partial
/// result (e.g. the LP leximin oracle) when their stop token fires.
/// Deliberately NOT an InternalError: callers that count failure causes
/// must be able to tell "ran out of time" from "solver bug".
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A point on the monotonic clock. Default-constructed = never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline that never expires (same as default construction).
  static Deadline never() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Requires ms finite and >= 0.
  static Deadline after_ms(double ms);

  /// Expires at the given monotonic time point.
  static Deadline at(Clock::time_point when);

  /// The earlier of the two deadlines (never() is the identity).
  static Deadline earlier(const Deadline& a, const Deadline& b);

  bool unlimited() const { return unlimited_; }
  bool expired() const { return !unlimited_ && Clock::now() >= when_; }

  /// Milliseconds until expiry: +inf when unlimited, clamped at 0 once
  /// expired.
  double remaining_ms() const;

 private:
  bool unlimited_ = true;
  Clock::time_point when_{};
};

/// Shared cancellation flag. Copies alias the same flag; the default
/// token has no flag and never reports cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  /// A token backed by a fresh flag (copies share it).
  static CancelToken make();

  /// True when backed by a flag (even if not yet cancelled).
  bool valid() const { return flag_ != nullptr; }

  /// Requests cancellation; every copy observes it. No-op on an inert
  /// token.
  void request_cancel() const;

  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Deadline + cancel token, passed into solver loops by const pointer.
/// A default-constructed token (or a null pointer) never stops anything.
class StopToken {
 public:
  StopToken() = default;
  explicit StopToken(Deadline deadline, CancelToken cancel = {})
      : deadline_(deadline), cancel_(std::move(cancel)) {}

  /// False when neither a deadline nor a cancel flag is attached — the
  /// token can never fire and pollers skip all checks.
  bool enabled() const { return cancel_.valid() || !deadline_.unlimited(); }

  /// Cancel flag OR expired deadline. Reads the clock; use StopPoller in
  /// tight loops.
  bool stop_requested() const {
    return cancel_.cancel_requested() || deadline_.expired();
  }

  const Deadline& deadline() const { return deadline_; }
  const CancelToken& cancel() const { return cancel_; }

 private:
  Deadline deadline_;
  CancelToken cancel_;
};

/// Amortized stop check for tight loops (pivots, augmentations, Newton
/// iterations): the cancel flag is checked on every call, the clock only
/// every `stride` calls. Once it reports stop it stays stopped.
class StopPoller {
 public:
  static constexpr int kDefaultStride = 64;

  explicit StopPoller(const StopToken* token, int stride = kDefaultStride)
      : token_(token != nullptr && token->enabled() ? token : nullptr),
        stride_(stride > 0 ? stride : 1) {}

  /// True when the loop should stop (sticky).
  bool should_stop() {
    if (token_ == nullptr) return false;
    if (stopped_) return true;
    if (token_->cancel().cancel_requested()) return stopped_ = true;
    if (--countdown_ <= 0) {
      countdown_ = stride_;
      if (token_->deadline().expired()) return stopped_ = true;
    }
    return false;
  }

  /// Whether a previous should_stop() already fired (no new checks).
  bool stopped() const { return stopped_; }

 private:
  const StopToken* token_;
  int stride_;
  int countdown_ = 0;
  bool stopped_ = false;
};

/// The ambient (thread-local) stop token, or nullptr when none is
/// installed. Installed tokens reach solvers called through interfaces
/// that cannot carry one explicitly.
const StopToken* ambient_stop();

/// `explicit_token` if given, else the ambient token. The resolution rule
/// every solver entry point applies.
inline const StopToken* effective_stop(const StopToken* explicit_token) {
  return explicit_token != nullptr ? explicit_token : ambient_stop();
}

/// RAII installation of the ambient stop token for the current scope
/// (previous token restored on destruction). The token must outlive the
/// scope.
class ScopedStop {
 public:
  explicit ScopedStop(const StopToken& token);
  ~ScopedStop();
  ScopedStop(const ScopedStop&) = delete;
  ScopedStop& operator=(const ScopedStop&) = delete;

 private:
  const StopToken* previous_;
};

}  // namespace amf::util
