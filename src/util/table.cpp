#include "util/table.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace amf::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  AMF_REQUIRE(!header_.empty(), "table header must not be empty");
}

void Table::row(std::vector<std::string> cells) {
  AMF_REQUIRE(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::row_numeric(const std::string& label,
                        const std::vector<double>& cells) {
  std::vector<std::string> r;
  r.reserve(cells.size() + 1);
  r.push_back(label);
  for (double v : cells) r.push_back(CsvWriter::format(v));
  row(std::move(r));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    width[i] = header_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) out << "  ";
      out << r[i];
      for (std::size_t p = r[i].size(); p < width[i]; ++p) out << ' ';
    }
    out << '\n';
  };

  emit(header_);
  std::string sep;
  for (std::size_t i = 0; i < width.size(); ++i) {
    if (i) sep += "  ";
    sep += std::string(width[i], '-');
  }
  out << sep << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace amf::util
