// csv.hpp — small CSV emitter for experiment output, plus the hardened
// reader helpers every CSV-ingesting path uses. Benches print their
// series to stdout in CSV so figures can be regenerated with any plotting
// tool; CsvWriter handles quoting and column consistency.
//
// The readers treat their input as hostile: lines are length-capped
// before anything is allocated for them, every cell must parse as a
// complete *finite* double, and each ContractError names the 1-based line
// number so a malformed trace points at the offending line instead of at
// whatever solver first trips over the garbage.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <ostream>
#include <string>
#include <vector>

namespace amf::util {

/// Ceiling on one line of CSV input accepted by read_csv_line: long
/// enough for any trace this library writes, short enough that hostile
/// input cannot drive unbounded allocation.
inline constexpr std::size_t kMaxCsvLineLength = 1u << 20;  // 1 MiB

/// Reads one line into `line` (strips a trailing '\r'). Returns false on
/// clean EOF; throws ContractError naming `line_number` when the line
/// exceeds kMaxCsvLineLength.
bool read_csv_line(std::istream& in, std::string& line, long line_number);

/// Parses one CSV cell as a double. Throws ContractError naming
/// `line_number` when the cell is empty, has trailing garbage, overflows,
/// or is not finite (NaN/Inf are data errors in every consumer here).
double parse_csv_double(const std::string& cell, long line_number);

/// Splits one CSV line on ',' and parses every cell via parse_csv_double.
std::vector<double> parse_csv_doubles(const std::string& line,
                                      long line_number);

/// Streams rows of a fixed-width CSV table. The header row fixes the column
/// count; subsequent rows must match it.
class CsvWriter {
 public:
  /// Writes the header immediately. `out` must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one data row; throws ContractError on column-count mismatch.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with enough digits to round-trip.
  void row_numeric(const std::vector<double>& cells);

  std::size_t columns() const { return columns_; }

  /// Escapes one CSV field (quotes when it contains comma/quote/newline).
  static std::string escape(const std::string& field);

  /// Round-trippable decimal formatting for doubles (trims trailing zeros).
  static std::string format(double v);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t columns_;
};

}  // namespace amf::util
