// csv.hpp — small CSV emitter for experiment output. Benches print their
// series to stdout in CSV so figures can be regenerated with any plotting
// tool; CsvWriter handles quoting and column consistency.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace amf::util {

/// Streams rows of a fixed-width CSV table. The header row fixes the column
/// count; subsequent rows must match it.
class CsvWriter {
 public:
  /// Writes the header immediately. `out` must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one data row; throws ContractError on column-count mismatch.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with enough digits to round-trip.
  void row_numeric(const std::vector<double>& cells);

  std::size_t columns() const { return columns_; }

  /// Escapes one CSV field (quotes when it contains comma/quote/newline).
  static std::string escape(const std::string& field);

  /// Round-trippable decimal formatting for doubles (trims trailing zeros).
  static std::string format(double v);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t columns_;
};

}  // namespace amf::util
