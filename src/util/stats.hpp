// stats.hpp — statistics used across experiments: running accumulators,
// percentiles/CDFs, and the fairness indices reported by the paper's
// evaluation (Jain's index, coefficient of variation, min/max ratio).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace amf::util {

/// Numerically stable running mean/variance (Welford) with min/max.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  /// Rehydrates an accumulator from externally maintained Welford moments
  /// (count, mean, sum of squared deviations, min, max) — the bridge that
  /// lets per-thread telemetry shards (obs::Registry) carry raw moments
  /// and still merge with the exact parallel-Welford formula in merge().
  static Accumulator from_moments(std::size_t n, double mean, double m2,
                                  double min, double max);

  std::size_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation: stddev / mean (0 if mean == 0).
  double cv() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Jain's fairness index: (Σx)² / (n·Σx²) in (0, 1]; 1 means perfectly equal.
/// Returns 1.0 for empty or all-zero input (no inequality to measure).
double jain_index(std::span<const double> x);

/// min(x) / max(x); 1 means perfectly balanced, 0 means some job starved.
/// Returns 1.0 for empty input and 0.0 when max > 0 but min == 0.
double min_max_ratio(std::span<const double> x);

/// Coefficient of variation of a sample (population stddev / mean).
double coefficient_of_variation(std::span<const double> x);

/// p-th percentile (p in [0, 100]) with linear interpolation between ranks.
/// Requires non-empty input; does not require sorted input.
double percentile(std::span<const double> x, double p);

/// Empirical CDF points (x sorted ascending, y = fraction <= x), one point
/// per distinct value. Suitable for plotting.
std::vector<std::pair<double, double>> empirical_cdf(
    std::span<const double> x);

/// Gini coefficient in [0, 1): 0 = perfect equality. Requires non-negative
/// values; returns 0 for empty or all-zero input.
double gini(std::span<const double> x);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> x, double lo,
                                   double hi, std::size_t bins);

}  // namespace amf::util
