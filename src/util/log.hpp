// log.hpp — structured, leveled, rate-limited line-JSON logging.
//
// Every emitted line is one JSON object:
//
//   {"ts":1723200000123,"level":"info","event":"svc.session_created",
//    "session":"cli","sites":6}
//
// Usage:
//
//   util::Logger::global().info("svc.session_created")
//       .str("session", name).num("sites", sites);
//
// The builder emits on destruction (end of the full expression), so a
// log statement is one line of call-site code and exactly one line of
// output. Key properties:
//
//   * leveled: a cheap atomic check gates every statement, so a
//     debug-level line in a hot path costs one relaxed load when the
//     logger runs at info;
//   * thread-safe: lines are built thread-locally and handed to the sink
//     under one mutex, so concurrent writers never interleave bytes;
//   * rate-limited: a per-event token bucket bounds the steady-state
//     line rate (hot events like load sheds cannot flood the sink); the
//     first line after a suppression window carries a "suppressed" count
//     so no drop is silent;
//   * trace-correlated: .trace(id) stamps the request's wire trace id,
//     the same id the span layer records, so a log line and a Perfetto
//     track join on one value.
//
// The default sink writes to stderr (stdout stays reserved for tool
// output contracts). Tests swap the sink for a capture function.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace amf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level);
/// Parses "debug|info|warn|error|off"; throws ContractError otherwise.
LogLevel parse_log_level(std::string_view name);

class Logger {
 public:
  /// Receives one complete line including the trailing '\n'.
  using Sink = std::function<void(std::string_view line)>;

  Logger();

  /// Process-wide logger (leaked on purpose: worker threads may log
  /// during static destruction).
  static Logger& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  /// Replaces the sink (nullptr restores the stderr default).
  void set_sink(Sink sink);

  /// Token-bucket rate limit applied per event name: at most `burst`
  /// lines instantly, refilling at `per_second`. 0 disables limiting.
  /// Suppressed lines are counted and reported on the event's next
  /// emitted line as a "suppressed" field.
  void set_rate_limit(double per_second, double burst);

  /// Lines emitted / suppressed since construction (tests, /healthz).
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t suppressed() const {
    return suppressed_total_.load(std::memory_order_relaxed);
  }

  /// RAII line builder; serializes and emits on destruction. All
  /// methods are no-ops on a disabled line, so call sites need no
  /// level checks of their own.
  class Line {
   public:
    Line(Line&& other) noexcept;
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    Line& operator=(Line&&) = delete;
    ~Line();

    Line& str(std::string_view key, std::string_view value);
    Line& num(std::string_view key, double value);
    Line& num(std::string_view key, long long value);
    Line& num(std::string_view key, int value) {
      return num(key, static_cast<long long>(value));
    }
    Line& num(std::string_view key, std::size_t value) {
      return num(key, static_cast<long long>(value));
    }
    Line& boolean(std::string_view key, bool value);
    /// Wire trace id ("trace" field); 0 is not stamped.
    Line& trace(std::uint64_t id);

   private:
    friend class Logger;
    Line(Logger* logger, LogLevel level, std::string_view event);
    Logger* logger_ = nullptr;  ///< nullptr: disabled, builder inert
    std::string event_;
    std::string body_;
  };

  Line log(LogLevel level, std::string_view event);
  Line debug(std::string_view event) { return log(LogLevel::kDebug, event); }
  Line info(std::string_view event) { return log(LogLevel::kInfo, event); }
  Line warn(std::string_view event) { return log(LogLevel::kWarn, event); }
  Line error(std::string_view event) { return log(LogLevel::kError, event); }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_s = 0.0;       ///< steady seconds at the last refill
    std::uint64_t suppressed = 0;
  };

  /// Emits the built line through the sink, applying the rate limit.
  void emit(const std::string& event, std::string body);

  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_total_{0};
  mutable std::mutex mu_;
  Sink sink_;  ///< empty: stderr
  double rate_per_s_ = 0.0;
  double burst_ = 0.0;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace amf::util
