#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace amf::util {

namespace {
std::atomic<std::size_t> g_shared_threads{0};
std::atomic<bool> g_shared_created{false};
}  // namespace

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(g_shared_threads.load());
  g_shared_created.store(true);
  return pool;
}

void ThreadPool::set_shared_threads(std::size_t threads) {
  AMF_REQUIRE(!g_shared_created.load(),
              "set_shared_threads must run before the shared pool's "
              "first use");
  g_shared_threads.store(threads);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mutex_);
    AMF_REQUIRE(!stopping_, "submit on a stopped ThreadPool");
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = ThreadPool::shared().size();
  threads = std::min(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  // Small contiguous chunks: enough granularity for skewed iteration costs
  // without pounding the atomic.
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));

  auto run = [&] {
    for (;;) {
      std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    }
  };

  // The helpers go to the shared pool; the calling thread joins in and,
  // thanks to the shared chunk counter, can drain every chunk by itself
  // if the pool is busy (or if this is a nested call from a pool worker).
  std::vector<std::future<void>> helpers;
  helpers.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t)
    helpers.push_back(ThreadPool::shared().submit(run));
  run();
  for (auto& h : helpers) h.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace amf::util
