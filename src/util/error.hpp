// error.hpp — lightweight contract checking for the amf library.
//
// The library validates its inputs at API boundaries and throws
// `amf::util::ContractError` with a descriptive message on violation.
// Internal invariants use AMF_ASSERT which is compiled in all build types
// (allocation problems are small; the cost is negligible and the safety is
// worth it for a fairness library whose outputs feed schedulers).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace amf::util {

/// Thrown when a caller violates an API precondition.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant fails (indicates a library bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_contract(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace amf::util

/// Validate a caller-supplied precondition; throws ContractError on failure.
#define AMF_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::amf::util::detail::throw_contract(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

/// Validate an internal invariant; throws InternalError on failure.
#define AMF_ASSERT(expr, msg)                                               \
  do {                                                                      \
    if (!(expr))                                                            \
      ::amf::util::detail::throw_internal(#expr, __FILE__, __LINE__, msg);  \
  } while (0)
