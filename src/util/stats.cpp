#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace amf::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

Accumulator Accumulator::from_moments(std::size_t n, double mean, double m2,
                                      double min, double max) {
  Accumulator acc;
  if (n == 0) return acc;
  acc.n_ = n;
  acc.mean_ = mean;
  acc.m2_ = m2;
  acc.min_ = min;
  acc.max_ = max;
  return acc;
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::cv() const {
  double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Accumulator::min() const { return n_ == 0 ? 0.0 : min_; }
double Accumulator::max() const { return n_ == 0 ? 0.0 : max_; }

double jain_index(std::span<const double> x) {
  if (x.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (double v : x) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sumsq);
}

double min_max_ratio(std::span<const double> x) {
  if (x.empty()) return 1.0;
  auto [mn, mx] = std::minmax_element(x.begin(), x.end());
  if (*mx == 0.0) return 1.0;
  return *mn / *mx;
}

double coefficient_of_variation(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double mean = std::accumulate(x.begin(), x.end(), 0.0) /
                static_cast<double>(x.size());
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (double v : x) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(x.size())) / mean;
}

double percentile(std::span<const double> x, double p) {
  AMF_REQUIRE(!x.empty(), "percentile of empty sample");
  AMF_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> v(x.begin(), x.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(rank));
  auto hi = static_cast<std::size_t>(std::ceil(rank));
  double frac = rank - std::floor(rank);
  return v[lo] + frac * (v[hi] - v[lo]);
}

std::vector<std::pair<double, double>> empirical_cdf(
    std::span<const double> x) {
  std::vector<double> v(x.begin(), x.end());
  std::sort(v.begin(), v.end());
  std::vector<std::pair<double, double>> cdf;
  const double n = static_cast<double>(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    // Collapse runs of equal values into one point at the run's end.
    if (i + 1 < v.size() && v[i + 1] == v[i]) continue;
    cdf.emplace_back(v[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

double gini(std::span<const double> x) {
  if (x.empty()) return 0.0;
  std::vector<double> v(x.begin(), x.end());
  for (double val : v) AMF_REQUIRE(val >= 0.0, "gini needs non-negative values");
  std::sort(v.begin(), v.end());
  double sum = std::accumulate(v.begin(), v.end(), 0.0);
  if (sum == 0.0) return 0.0;
  const double n = static_cast<double>(v.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    weighted += static_cast<double>(i + 1) * v[i];
  return (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
}

std::vector<std::size_t> histogram(std::span<const double> x, double lo,
                                   double hi, std::size_t bins) {
  AMF_REQUIRE(bins > 0, "histogram needs at least one bin");
  AMF_REQUIRE(lo < hi, "histogram needs lo < hi");
  std::vector<std::size_t> h(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : x) {
    auto idx = static_cast<std::ptrdiff_t>((v - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++h[static_cast<std::size_t>(idx)];
  }
  return h;
}

}  // namespace amf::util
