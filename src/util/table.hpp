// table.hpp — aligned console tables for bench/example output. The paper's
// tables (property satisfaction, runtime comparisons) are rendered with
// this printer so that bench output is directly readable in a terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace amf::util {

/// Collects rows then renders an aligned ASCII table. Numeric convenience
/// overloads format via CsvWriter::format.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  void row_numeric(const std::string& label, const std::vector<double>& cells);

  /// Renders with a header separator; columns padded to content width.
  void print(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amf::util
