// rng.hpp — deterministic pseudo-random number generation for experiments.
//
// All stochastic components of the library (workload generators, strategy
// probes, property sweeps) draw from `amf::util::Rng`, a xoshiro256++
// generator seeded through splitmix64. Fixing the seed fixes every
// experiment end-to-end, across platforms and standard-library versions
// (we never use std::uniform_*_distribution, whose output is
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace amf::util {

/// Deterministic, platform-independent PRNG (xoshiro256++).
///
/// Satisfies the UniformRandomBitGenerator concept, but prefer the
/// distribution helpers below for reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponential with rate lambda > 0 (mean 1/lambda).
  double exponential(double lambda);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto (Lomax-style, xm scale, alpha shape > 0): xm / U^{1/alpha}.
  double pareto(double xm, double alpha);

  /// Gamma(shape k > 0, scale 1) via Marsaglia–Tsang (k >= 1) with the
  /// standard boost for k < 1.
  double gamma(double shape);

  /// Zipf-distributed index in [0, n): P(i) ∝ 1/(i+1)^s. s = 0 is uniform.
  /// Sampling is inverse-CDF on precomputed weights; for repeated draws
  /// with the same (n, s) prefer ZipfSampler.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Dirichlet(alpha, ..., alpha) sample of dimension n: a random point on
  /// the simplex; alpha < 1 concentrates mass on few coordinates (skew),
  /// alpha -> inf approaches the uniform split.
  std::vector<double> dirichlet(std::size_t n, double alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel sweeps).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Precomputed Zipf sampler over [0, n) with exponent s >= 0.
/// O(log n) per draw via binary search over the CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  /// Probability of index i.
  double pmf(std::size_t i) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, last element == 1
};

}  // namespace amf::util
