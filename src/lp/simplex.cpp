#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace amf::lp {

namespace {

/// Dense two-phase tableau. Columns: [structural | slack/surplus |
/// artificial | rhs]. basis_[i] is the column basic in row i.
/// Outcome of one optimize() run on the tableau.
enum class PivotOutcome { kOptimal, kUnbounded, kIterationLimit, kDeadline };

class Tableau {
 public:
  Tableau(const LinearProgram& program, double eps, long max_iterations,
          const util::StopToken* stop)
      : eps_(eps), budget_(max_iterations), poller_(stop) {
    const int n = program.variables;
    AMF_REQUIRE(n >= 0, "negative variable count");
    AMF_REQUIRE(program.objective.empty() ||
                    static_cast<int>(program.objective.size()) == n,
                "objective length != variable count");

    // Count auxiliary columns (normalize rhs sign first).
    rows_.reserve(program.rows.size());
    int slack_count = 0, art_count = 0;
    for (const auto& row : program.rows) {
      AMF_REQUIRE(static_cast<int>(row.coeffs.size()) == n,
                  "constraint width != variable count");
      Row r = row;
      if (r.rhs < 0.0) {
        for (auto& c : r.coeffs) c = -c;
        r.rhs = -r.rhs;
        if (r.type == RowType::kLe)
          r.type = RowType::kGe;
        else if (r.type == RowType::kGe)
          r.type = RowType::kLe;
      }
      if (r.type == RowType::kLe) {
        ++slack_count;
      } else if (r.type == RowType::kGe) {
        ++slack_count;
        ++art_count;
      } else {
        ++art_count;
      }
      rows_.push_back(std::move(r));
    }

    n_struct_ = n;
    art_begin_ = n + slack_count;
    cols_ = n + slack_count + art_count;
    const std::size_t width = static_cast<std::size_t>(cols_) + 1;

    tab_.assign(rows_.size(), std::vector<double>(width, 0.0));
    basis_.assign(rows_.size(), -1);
    int next_slack = n, next_art = art_begin_;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      auto& t = tab_[i];
      const auto& r = rows_[i];
      for (int j = 0; j < n; ++j) t[static_cast<std::size_t>(j)] = r.coeffs[static_cast<std::size_t>(j)];
      t[width - 1] = r.rhs;
      switch (r.type) {
        case RowType::kLe:
          t[static_cast<std::size_t>(next_slack)] = 1.0;
          basis_[i] = next_slack++;
          break;
        case RowType::kGe:
          t[static_cast<std::size_t>(next_slack++)] = -1.0;
          t[static_cast<std::size_t>(next_art)] = 1.0;
          basis_[i] = next_art++;
          break;
        case RowType::kEq:
          t[static_cast<std::size_t>(next_art)] = 1.0;
          basis_[i] = next_art++;
          break;
      }
    }
  }

  /// Phase 1: drive artificial infeasibility to zero.
  LpStatus phase1() {
    if (art_begin_ == cols_) return LpStatus::kOptimal;  // no artificials
    std::vector<double> cost(static_cast<std::size_t>(cols_), 0.0);
    for (int j = art_begin_; j < cols_; ++j)
      cost[static_cast<std::size_t>(j)] = -1.0;  // maximize -(sum of artificials)
    // The phase-1 objective is bounded by construction, so the only
    // non-optimal outcomes here are running out of pivots or of time.
    switch (optimize(cost, /*allow_artificial_entering=*/false)) {
      case PivotOutcome::kIterationLimit:
        return LpStatus::kIterationLimit;
      case PivotOutcome::kDeadline:
        return LpStatus::kDeadlineExceeded;
      default:
        break;
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < tab_.size(); ++i)
      if (basis_[i] >= art_begin_) infeasibility += rhs(i);
    if (infeasibility > feas_tol()) return LpStatus::kInfeasible;
    drive_out_artificials();
    return LpStatus::kOptimal;
  }

  /// Phase 2 on a feasible basis.
  LpStatus phase2(const std::vector<double>& objective) {
    std::vector<double> cost(static_cast<std::size_t>(cols_), 0.0);
    for (std::size_t j = 0; j < objective.size(); ++j) cost[j] = objective[j];
    switch (optimize(cost, /*allow_artificial_entering=*/false)) {
      case PivotOutcome::kOptimal:
        return LpStatus::kOptimal;
      case PivotOutcome::kUnbounded:
        return LpStatus::kUnbounded;
      case PivotOutcome::kDeadline:
        return LpStatus::kDeadlineExceeded;
      case PivotOutcome::kIterationLimit:
        break;
    }
    return LpStatus::kIterationLimit;
  }

  std::vector<double> solution() const {
    std::vector<double> x(static_cast<std::size_t>(n_struct_), 0.0);
    for (std::size_t i = 0; i < tab_.size(); ++i)
      if (basis_[i] >= 0 && basis_[i] < n_struct_)
        x[static_cast<std::size_t>(basis_[i])] = std::max(0.0, rhs(i));
    return x;
  }

 private:
  double rhs(std::size_t i) const { return tab_[i].back(); }
  double feas_tol() const { return eps_ * 1024.0; }

  /// Primal simplex: Dantzig pricing with a permanent switch to Bland's
  /// rule (guaranteed termination) after a burn-in. The pivot budget is
  /// shared across calls (both phases); exhausting it is reported as a
  /// status, not a throw, so callers can fall back to another solver.
  PivotOutcome optimize(const std::vector<double>& cost,
                        bool allow_artificial_entering) {
    const int entering_limit =
        allow_artificial_entering ? cols_ : (art_begin_ == cols_ ? cols_ : art_begin_);
    long iterations = 0;
    const long bland_after = 4096;
    std::vector<double> reduced(static_cast<std::size_t>(cols_), 0.0);
    for (;;) {
      if (--budget_ < 0) return PivotOutcome::kIterationLimit;
      if (poller_.should_stop()) return PivotOutcome::kDeadline;
      const bool bland = ++iterations > bland_after;

      // Reduced costs: rc_j = c_j - c_B · column_j.
      for (int j = 0; j < entering_limit; ++j)
        reduced[static_cast<std::size_t>(j)] = cost[static_cast<std::size_t>(j)];
      for (std::size_t i = 0; i < tab_.size(); ++i) {
        double cb = basis_[i] >= 0 ? cost[static_cast<std::size_t>(basis_[i])] : 0.0;
        if (cb == 0.0) continue;
        const auto& row = tab_[i];
        for (int j = 0; j < entering_limit; ++j)
          reduced[static_cast<std::size_t>(j)] -= cb * row[static_cast<std::size_t>(j)];
      }

      int enter = -1;
      double best = eps_;
      for (int j = 0; j < entering_limit; ++j) {
        double rc = reduced[static_cast<std::size_t>(j)];
        if (rc > eps_) {
          if (bland) {
            enter = j;
            break;
          }
          if (rc > best) {
            best = rc;
            enter = j;
          }
        }
      }
      if (enter < 0) return PivotOutcome::kOptimal;

      // Ratio test (Bland tie-break on the leaving basis index).
      std::size_t leave = tab_.size();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < tab_.size(); ++i) {
        double a = tab_[i][static_cast<std::size_t>(enter)];
        if (a > eps_) {
          double ratio = rhs(i) / a;
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ && leave < tab_.size() &&
               basis_[i] < basis_[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == tab_.size()) return PivotOutcome::kUnbounded;
      pivot(leave, enter);
    }
  }

  void pivot(std::size_t row, int col) {
    auto& pr = tab_[row];
    const double p = pr[static_cast<std::size_t>(col)];
    AMF_ASSERT(std::abs(p) > eps_ * 0.5, "pivot on ~zero element");
    for (auto& v : pr) v /= p;
    pr[static_cast<std::size_t>(col)] = 1.0;  // exact
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (i == row) continue;
      double factor = tab_[i][static_cast<std::size_t>(col)];
      if (factor == 0.0) continue;
      auto& ri = tab_[i];
      for (std::size_t j = 0; j < ri.size(); ++j) ri[j] -= factor * pr[j];
      ri[static_cast<std::size_t>(col)] = 0.0;  // exact
    }
    basis_[row] = col;
  }

  /// After phase 1, basic artificials sit at value zero; pivot them out
  /// on any usable structural/slack column, or mark the row redundant by
  /// leaving it (all-zero rows can never pivot anything back in).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (basis_[i] < art_begin_) continue;
      int col = -1;
      for (int j = 0; j < art_begin_; ++j)
        if (std::abs(tab_[i][static_cast<std::size_t>(j)]) > feas_tol()) {
          col = j;
          break;
        }
      if (col >= 0) pivot(i, col);
      // else: redundant constraint; the artificial stays basic at 0 and,
      // being excluded from entering columns, at 0 it remains. A pivot in
      // another row can only change this row via its column entries,
      // which are all ~0 for structural/slack columns.
    }
  }

  double eps_;
  long budget_ = kDefaultMaxIterations;
  util::StopPoller poller_;
  std::vector<Row> rows_;
  std::vector<std::vector<double>> tab_;
  std::vector<int> basis_;
  int n_struct_ = 0;
  int art_begin_ = 0;
  int cols_ = 0;
};

}  // namespace

LpResult solve(const LinearProgram& program, double eps,
               long max_iterations, const util::StopToken* stop) {
  AMF_REQUIRE(eps > 0.0, "eps must be positive");
  AMF_REQUIRE(max_iterations > 0, "iteration budget must be positive");
  Tableau tableau(program, eps, max_iterations, util::effective_stop(stop));
  LpResult result;
  result.status = tableau.phase1();
  if (result.status != LpStatus::kOptimal) return result;
  std::vector<double> objective(program.objective);
  objective.resize(static_cast<std::size_t>(program.variables), 0.0);
  result.status = tableau.phase2(objective);
  if (result.status != LpStatus::kOptimal) return result;
  result.x = tableau.solution();
  result.objective = 0.0;
  for (std::size_t j = 0; j < result.x.size(); ++j)
    result.objective += objective[j] * result.x[j];
  return result;
}

bool feasible(int variables, const std::vector<Row>& rows,
              std::vector<double>* witness, double eps) {
  LinearProgram program;
  program.variables = variables;
  program.rows = rows;
  auto result = solve(program, eps);
  if (result.status != LpStatus::kOptimal) return false;
  if (witness != nullptr) *witness = std::move(result.x);
  return true;
}

}  // namespace amf::lp
