// simplex.hpp — a small dense linear-programming substrate.
//
// The multi-resource extension (aggregate DRF over multiple sites) needs
// feasibility and optimization over Leontief resource constraints, which
// are linear but not flow-representable. This is a self-contained
// two-phase primal simplex on a dense tableau with Bland's rule —
// unconditionally terminating, built for the small/medium LPs the
// allocators generate (hundreds of variables and rows), not for
// industrial scale.
#pragma once

#include <vector>

#include "util/deadline.hpp"

namespace amf::lp {

/// Row sense of one linear constraint.
enum class RowType { kLe, kGe, kEq };

/// One constraint: coeffs · x  (<= | >= | ==)  rhs.
struct Row {
  std::vector<double> coeffs;
  RowType type = RowType::kLe;
  double rhs = 0.0;
};

/// maximize objective · x subject to rows, x >= 0.
/// (Minimize by negating the objective; variable upper bounds are rows.)
struct LinearProgram {
  int variables = 0;
  std::vector<double> objective;  // empty = pure feasibility problem
  std::vector<Row> rows;
};

/// Solver outcome. kIterationLimit means the pivot budget ran out before
/// optimality was proven — the result carries no usable solution, but the
/// condition is surfaced as a status (not a throw) so callers can react:
/// retry with a looser tolerance, or fall back to another solver.
/// kDeadlineExceeded likewise carries no solution: the stop token fired
/// mid-pivot (a half-optimized tableau has no salvageable answer).
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kDeadlineExceeded,
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  // primal solution (valid when kOptimal)
};

/// Default pivot budget: far above anything the allocators' LPs need
/// (Bland's rule guarantees termination; the cap guards degenerate
/// cycling caused by floating-point noise).
inline constexpr long kDefaultMaxIterations = 1'000'000;

/// Solves the LP. `eps` is the pivot/feasibility tolerance;
/// `max_iterations` bounds the total pivot count across both phases.
/// `stop` (explicit, else the ambient token) is polled every few dozen
/// pivots; when it fires the solve returns kDeadlineExceeded.
LpResult solve(const LinearProgram& program, double eps = 1e-9,
               long max_iterations = kDefaultMaxIterations,
               const util::StopToken* stop = nullptr);

/// Convenience: is {rows, x >= 0} feasible? Returns a witness if so.
bool feasible(int variables, const std::vector<Row>& rows,
              std::vector<double>* witness = nullptr, double eps = 1e-9);

}  // namespace amf::lp
