// transport.hpp — the bipartite job→site transportation network.
//
// Every allocation problem induces the same network shape:
//
//   source --cap f_j--> job_j --cap d[j][s]--> site_s --cap C[s]--> sink
//
// A per-job budget vector f is realizable as aggregates iff the max flow
// saturates every source arc. This header wraps that construction so the
// core allocators never touch raw node ids, and keeps the network alive
// across repeated solves with different source caps (parametric reuse).
#pragma once

#include <optional>
#include <vector>

#include "flow/network.hpp"

namespace amf::flow {

/// Dense job×site matrix helper type used throughout the flow layer.
using Matrix = std::vector<std::vector<double>>;

/// Reusable job→site transportation network.
class TransportNetwork {
 public:
  /// `demands[j][s]` is the per-site demand cap (arc capacity job→site;
  /// arcs are only materialized for strictly positive demand);
  /// `capacities[s]` the site capacity.
  TransportNetwork(const Matrix& demands,
                   const std::vector<double>& capacities);

  int jobs() const { return jobs_; }
  int sites() const { return sites_; }

  /// Characteristic scale of the instance (max capacity/demand, >= 1);
  /// tolerances in callers should be relative to this.
  double scale() const { return scale_; }

  /// Solves max flow with the given per-job source caps (resetting any
  /// previous flow) and returns the attained flow value.
  double solve(const std::vector<double>& source_caps,
               double eps = FlowNetwork::kDefaultEps);

  /// Total of the last source caps passed to solve().
  double last_demand_total() const { return last_total_; }

  /// True when the last solve saturated every source arc (the caps are
  /// feasible as aggregates).
  bool saturated(double eps = FlowNetwork::kDefaultEps) const;

  /// Allocation matrix realized by the last solve: a[j][s] = flow(job→site).
  Matrix allocation() const;

  /// After a solve: per-job flag, true when the job still has a residual
  /// path to the sink (its aggregate could be increased). The freezing
  /// test of progressive filling.
  std::vector<char> jobs_can_increase(
      double eps = FlowNetwork::kDefaultEps) const;

  /// After a solve: source side of a min cut (residual reachability from
  /// the source), reported separately for jobs and sites.
  struct MinCut {
    std::vector<char> job_in_source_side;
    std::vector<char> site_in_source_side;
  };
  MinCut min_cut(double eps = FlowNetwork::kDefaultEps) const;

  /// Maximum aggregate job j could attain if it were alone (Σ_s min(d, C)).
  double solo_ceiling(int job) const;

 private:
  int jobs_;
  int sites_;
  double scale_;
  FlowNetwork net_;
  NodeId source_;
  NodeId sink_;
  std::vector<EdgeId> source_arcs_;               // per job
  std::vector<std::vector<std::pair<int, EdgeId>>> job_site_arcs_;  // (site, arc)
  std::vector<double> solo_ceiling_;
  double last_total_ = 0.0;
  double last_flow_ = 0.0;
};

/// True iff the aggregate vector `aggregates` is feasible for the instance
/// (some allocation matrix attains at least these per-job totals).
bool aggregates_feasible(const Matrix& demands,
                         const std::vector<double>& capacities,
                         const std::vector<double>& aggregates,
                         double eps = FlowNetwork::kDefaultEps);

/// An allocation matrix realizing exactly the given aggregates, if feasible.
std::optional<Matrix> allocation_for_aggregates(
    const Matrix& demands, const std::vector<double>& capacities,
    const std::vector<double>& aggregates,
    double eps = FlowNetwork::kDefaultEps);

}  // namespace amf::flow
