// transport.hpp — the bipartite job→site transportation network.
//
// Every allocation problem induces the same network shape:
//
//   source --cap f_j--> job_j --cap d[j][s]--> site_s --cap C[s]--> sink
//
// A per-job budget vector f is realizable as aggregates iff the max flow
// saturates every source arc. This header wraps that construction so the
// core allocators never touch raw node ids, and keeps the network alive
// across repeated solves with different source caps (parametric reuse).
//
// Two concrete networks implement the common TransportSystem interface:
//   * TransportNetwork — built once from a (dense or sparse) instance,
//     solved many times; the classic one-shot solver substrate.
//   * IncrementalTransport — persistent topology for online reallocation:
//     jobs are appended as they arrive, masked out when they depart, and
//     demand/capacity values are updated in place between solves, so the
//     network scales with the nonzero structure instead of being rebuilt
//     from nothing at every event.
#pragma once

#include <optional>
#include <vector>

#include "flow/network.hpp"

namespace amf::flow {

/// Dense job×site matrix helper type used throughout the flow layer.
using Matrix = std::vector<std::vector<double>>;

/// The multi-resource (DRF-on-aggregates) reduction's effective site
/// capacity: the binding minimum of a per-resource capacity row. The
/// transportation network itself stays single-commodity — the reduction
/// happens one layer up (core::AllocationProblem scales each job's rate
/// by its dominant-share coefficient and feeds this binding min as C[s]),
/// so every network here, persistent or one-shot, is untouched by the
/// resource dimension.
inline double binding_min(const std::vector<double>& row) {
  if (row.empty()) return 0.0;
  double c = row.front();
  for (double v : row) c = v < c ? v : c;
  return c;
}

/// CSR view of the nonzero entries of a job×site demand matrix. Network
/// construction from this form is O(nnz + sites), so sparse
/// locality-constrained instances (each job touching a handful of sites)
/// never pay for the dense n×m rectangle.
struct SparseDemands {
  int site_count = 0;
  std::vector<int> row_ptr;  ///< size jobs+1; row j spans [row_ptr[j], row_ptr[j+1])
  std::vector<int> col;      ///< site index per entry, ascending within a row
  std::vector<double> val;   ///< demand per entry, strictly positive

  int jobs() const {
    return row_ptr.empty() ? 0 : static_cast<int>(row_ptr.size()) - 1;
  }
  int sites() const { return site_count; }
  int nnz() const { return static_cast<int>(col.size()); }

  /// Compresses a dense matrix, dropping zero entries. `sites` disambiguates
  /// the width of an empty matrix.
  static SparseDemands from_dense(const Matrix& demands, int sites);
  Matrix to_dense() const;
};

/// Source side of a min cut after a solve, reported separately for jobs
/// and sites.
struct MinCut {
  std::vector<char> job_in_source_side;
  std::vector<char> site_in_source_side;
};

/// The operations progressive filling and the critical-level solver need
/// from a transportation network. Implementations must be deterministic:
/// two systems presenting the same job/site values perform identical
/// floating-point work on every operation (the bit-for-bit contract the
/// incremental simulator relies on).
class TransportSystem {
 public:
  virtual ~TransportSystem() = default;

  virtual int jobs() const = 0;
  virtual int sites() const = 0;

  /// Characteristic scale of the instance (max capacity/demand, >= 1);
  /// tolerances in callers should be relative to this.
  virtual double scale() const = 0;

  /// Solves max flow with the given per-job source caps (resetting any
  /// previous flow) and returns the attained flow value.
  virtual double solve(const std::vector<double>& source_caps,
                       double eps = FlowNetwork::kDefaultEps) = 0;

  /// Feasibility-probe solve: like solve(), but the implementation may
  /// warm-start from the flow left by the previous solve/probe instead of
  /// recomputing from zero. The attained flow *value*, the min cut, and
  /// the residual-reachability queries are flow-state invariants of a max
  /// flow, so every TransportSystem read except allocation() is unaffected
  /// by the shortcut; callers that go on to read allocation() must use
  /// solve(). Default: plain solve().
  virtual double probe(const std::vector<double>& source_caps,
                       double eps = FlowNetwork::kDefaultEps) {
    return solve(source_caps, eps);
  }

  /// True when the last solve saturated every source arc (the caps are
  /// feasible as aggregates).
  virtual bool saturated(double eps = FlowNetwork::kDefaultEps) const = 0;

  /// Allocation matrix realized by the last solve: a[j][s] = flow(job→site).
  virtual Matrix allocation() const = 0;

  /// After a solve: per-job flag, true when the job still has a residual
  /// path to the sink (its aggregate could be increased). The freezing
  /// test of progressive filling.
  virtual std::vector<char> jobs_can_increase(
      double eps = FlowNetwork::kDefaultEps) const = 0;

  /// After a solve: source side of a min cut (residual reachability from
  /// the source).
  virtual MinCut min_cut(double eps = FlowNetwork::kDefaultEps) const = 0;

  /// Maximum aggregate job j could attain if it were alone (Σ_s min(d, C)).
  virtual double solo_ceiling(int job) const = 0;

  /// Current capacity of site `s`.
  virtual double site_capacity(int site) const = 0;

  /// Adds d[job][s] for every site NOT in the cut's source side (the demand
  /// arcs of `job` crossing the cut) into `accumulator`, one addition per
  /// nonzero demand in ascending site order. Accumulating in place keeps the
  /// caller's floating-point summation order identical to a dense row scan
  /// (skipped zeros would add exactly 0.0).
  virtual void add_row_demand_across(int job,
                                     const std::vector<char>& site_in_source_side,
                                     double& accumulator) const = 0;
};

/// Reusable job→site transportation network (fixed job set).
class TransportNetwork final : public TransportSystem {
 public:
  /// `demands[j][s]` is the per-site demand cap (arc capacity job→site;
  /// arcs are only materialized for strictly positive demand);
  /// `capacities[s]` the site capacity.
  TransportNetwork(const Matrix& demands,
                   const std::vector<double>& capacities);

  /// Sparse construction: O(nnz + sites) instead of a dense scan.
  TransportNetwork(const SparseDemands& demands,
                   const std::vector<double>& capacities);

  int jobs() const override { return jobs_; }
  int sites() const override { return sites_; }
  double scale() const override { return scale_; }

  double solve(const std::vector<double>& source_caps,
               double eps = FlowNetwork::kDefaultEps) override;

  /// Total of the last source caps passed to solve().
  double last_demand_total() const { return last_total_; }

  bool saturated(double eps = FlowNetwork::kDefaultEps) const override;
  Matrix allocation() const override;
  std::vector<char> jobs_can_increase(
      double eps = FlowNetwork::kDefaultEps) const override;

  /// Back-compat alias: the cut type predates the TransportSystem split.
  using MinCut = flow::MinCut;
  flow::MinCut min_cut(double eps = FlowNetwork::kDefaultEps) const override;

  double solo_ceiling(int job) const override;
  double site_capacity(int site) const override;
  void add_row_demand_across(int job,
                             const std::vector<char>& site_in_source_side,
                             double& accumulator) const override;

 private:
  void build(const SparseDemands& demands,
             const std::vector<double>& capacities);

  int jobs_;
  int sites_;
  double scale_;
  FlowNetwork net_;
  NodeId source_;
  NodeId sink_;
  std::vector<EdgeId> source_arcs_;               // per job
  std::vector<EdgeId> site_arcs_;                 // per site
  std::vector<std::vector<std::pair<int, EdgeId>>> job_site_arcs_;  // (site, arc)
  std::vector<double> solo_ceiling_;
  double last_total_ = 0.0;
  double last_flow_ = 0.0;
};

/// Persistent-topology transportation network for online reallocation.
///
/// Jobs are added once (arcs materialized for their positive-demand
/// sites), masked to zero on departure, and demand / site-capacity values
/// are updated in place between solves. Solves run over a declared
/// *active subset* of rows (ascending ids); everything a solve reads or
/// returns is indexed by position in that subset.
///
/// Bit-for-bit contract: for any active subset, every TransportSystem
/// operation performs exactly the same floating-point work as a freshly
/// built TransportNetwork over the subset's current values — masked
/// (zero-capacity) arcs and inactive rows are invisible to the flow
/// algorithms, and the recomputed scale() matches the fresh build. The
/// incremental simulator's equivalence with the from-scratch engine rests
/// on this property (tested in incremental_test.cpp).
class IncrementalTransport final : public TransportSystem {
 public:
  explicit IncrementalTransport(std::vector<double> site_capacities);

  // --- topology and values ------------------------------------------------

  /// Appends a job with arcs to `sites` (ascending, in range) carrying
  /// `demands` (>= 0; a zero reserves the arc for later unmasking).
  /// Returns the job's stable row id.
  int add_job(const std::vector<int>& sites,
              const std::vector<double>& demands);

  /// Masks the row out: zeroes its source and demand arcs. The id stays
  /// valid but must not appear in later active sets.
  void remove_job(int row);

  /// Updates d[row][site]. The arc must have been reserved by add_job
  /// unless `value` is zero (then this is a no-op). Returns false when a
  /// positive value targets a missing arc (caller must rebuild).
  bool set_demand(int row, int site, double value);

  bool has_demand_arc(int row, int site) const;
  double demand(int row, int site) const;

  void set_site_capacity(int site, double value);

  /// Declares the rows served by subsequent solves (strictly ascending
  /// live ids). Rows leaving the active set get their source caps zeroed.
  void set_active(const std::vector<int>& rows);

  int total_rows() const { return static_cast<int>(rows_.size()); }
  int live_rows() const { return live_rows_; }

  /// Rebuilds the underlying flow network from the live rows, dropping
  /// dead rows' nodes and arcs. Stable ids and all values are preserved;
  /// solves before and after are bit-identical.
  void compact();

  // --- TransportSystem over the active subset -----------------------------

  int jobs() const override { return static_cast<int>(active_.size()); }
  int sites() const override { return static_cast<int>(site_arcs_.size()); }
  double scale() const override;
  double solve(const std::vector<double>& source_caps,
               double eps = FlowNetwork::kDefaultEps) override;

  /// Warm feasibility probe. When the network holds a max flow for the
  /// current demand/capacity values (no mutation since the last solve),
  /// only the source arcs are retargeted — excess flow on shrunk arcs is
  /// cancelled along the job's own site arcs, raised arcs gain residual in
  /// place — and Dinic augments from the surviving flow. Falls back to a
  /// cold solve() after any topology or value mutation. The flow split
  /// left behind may differ from a cold solve's, so allocation() readers
  /// must re-solve(); all other reads are flow-state invariant.
  double probe(const std::vector<double>& source_caps,
               double eps = FlowNetwork::kDefaultEps) override;

  bool saturated(double eps = FlowNetwork::kDefaultEps) const override;
  Matrix allocation() const override;
  std::vector<char> jobs_can_increase(
      double eps = FlowNetwork::kDefaultEps) const override;
  MinCut min_cut(double eps = FlowNetwork::kDefaultEps) const override;
  double solo_ceiling(int active_job) const override;
  double site_capacity(int site) const override;
  void add_row_demand_across(int active_job,
                             const std::vector<char>& site_in_source_side,
                             double& accumulator) const override;

  /// Warm-started solve: when every cap is >= its value in the previous
  /// solve, raises the source arcs in place and augments the existing
  /// flow instead of recomputing from scratch. Falls back to solve()
  /// otherwise. The attained flow value equals solve()'s up to flow
  /// tolerance, but the realized split may be a different vertex of the
  /// transportation polytope — callers needing replay-exact splits must
  /// use solve().
  double solve_warm(const std::vector<double>& source_caps,
                    double eps = FlowNetwork::kDefaultEps);

  /// Realization contract of solve(). Exact (the default) guarantees
  /// allocation() after solve() is bit-identical to a freshly built
  /// network's cold solve, so solve() only serves its memo when the held
  /// flow came from a cold solve. Relaxed accepts *any* max flow attaining
  /// the caps — the memo may then keep a warm-probed flow, which turns the
  /// materializing solve after a probe at the same caps into a no-op. Job
  /// aggregates are unaffected (the flow value and every cut are max-flow
  /// invariants); only the per-site split may differ.
  void set_exact_realization(bool exact) { exact_ = exact; }
  bool exact_realization() const { return exact_; }

 private:
  struct Row {
    bool live = false;
    NodeId node = -1;
    EdgeId source_arc = -1;
    std::vector<std::pair<int, EdgeId>> site_arcs;  // (site, arc), ascending
  };

  void invalidate_caches();

  /// Cancels all flow through `row`'s arcs (site arcs, matching sink arcs,
  /// source arc), restoring a conservative flow without it.
  void drain_row(const Row& row);

  FlowNetwork net_;
  NodeId source_ = -1;
  NodeId sink_ = -1;
  std::vector<NodeId> site_nodes_;
  std::vector<EdgeId> site_arcs_;
  // Incoming demand arcs per site, (row id, arc) in row insertion order:
  // the deterministic cancellation order when a site capacity shrinks
  // below its current throughput.
  std::vector<std::vector<std::pair<int, EdgeId>>> site_incoming_;
  std::vector<Row> rows_;
  std::vector<int> active_;  // live row ids, ascending
  int live_rows_ = 0;
  // True while the residuals hold a conservative flow respecting every
  // arc's current capacity: mutators shed excess flow locally (instead of
  // deferring to the next reset) so probes can warm-start across events.
  bool flow_valid_ = false;

  mutable double scale_ = 1.0;
  mutable bool scale_dirty_ = true;
  // Redundant-solve memo: progressive filling's final materialization
  // frequently re-solves the caps of the last in-loop solve; an exact
  // match lets us keep the flow already in the network. `canonical_`
  // records whether the held flow came from a cold solve (reset + Dinic
  // from zero): only then may solve() serve a memo hit, since a
  // warm-probed flow can be a different vertex of the optimum face.
  std::vector<double> last_caps_;
  double last_eps_ = -1.0;
  bool memo_valid_ = false;
  bool canonical_ = false;
  bool exact_ = true;
  double last_total_ = 0.0;
  double last_flow_ = 0.0;
};

/// True iff the aggregate vector `aggregates` is feasible for the instance
/// (some allocation matrix attains at least these per-job totals).
bool aggregates_feasible(const Matrix& demands,
                         const std::vector<double>& capacities,
                         const std::vector<double>& aggregates,
                         double eps = FlowNetwork::kDefaultEps);

/// An allocation matrix realizing exactly the given aggregates, if feasible.
std::optional<Matrix> allocation_for_aggregates(
    const Matrix& demands, const std::vector<double>& capacities,
    const std::vector<double>& aggregates,
    double eps = FlowNetwork::kDefaultEps);

}  // namespace amf::flow
