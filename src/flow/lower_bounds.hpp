// lower_bounds.hpp — feasible s-t flow with per-edge lower bounds.
//
// Used by the JCT add-on: realizing a fixed AMF aggregate vector while
// forcing each job's per-site rate above a completion-time target is an
// s-t flow problem with exact source-arc values (lower == upper) and lower
// bounds on job→site arcs. Solved with the classic excess transformation:
// route mandatory flow through a super source/sink and check saturation.
#pragma once

#include <optional>
#include <vector>

#include "flow/network.hpp"

namespace amf::flow {

/// A directed edge with a flow interval [lower, upper].
struct BoundedEdge {
  NodeId from = 0;
  NodeId to = 0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Finds an s-t flow satisfying every edge's [lower, upper] interval, if
/// one exists. Returns the per-edge flow values (aligned with `edges`), or
/// nullopt when infeasible. `eps` bounds the saturation tolerance.
///
/// The s-t problem is reduced to a circulation by adding a sink→source arc
/// of unbounded capacity; flow conservation then holds at s and t too.
std::optional<std::vector<double>> feasible_flow_with_lower_bounds(
    int node_count, const std::vector<BoundedEdge>& edges, NodeId source,
    NodeId sink, double eps = FlowNetwork::kDefaultEps);

}  // namespace amf::flow
