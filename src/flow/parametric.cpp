#include "flow/parametric.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace amf::flow {

namespace {

std::vector<double> caps_at(const std::vector<ParametricSource>& sources,
                            double t) {
  std::vector<double> caps(sources.size());
  for (std::size_t j = 0; j < sources.size(); ++j)
    caps[j] = std::max(0.0, sources[j].fixed + sources[j].slope * t);
  return caps;
}

// Level-solver counters, published once per solve_critical_level call.
struct LevelCounters {
  obs::Counter level_solves;
  obs::Counter newton_iters;
  obs::Counter bisection_steps;
  obs::Counter probes;
  obs::Counter hint_hits;
  obs::Counter hint_misses;
  LevelCounters() {
    auto& reg = obs::Registry::global();
    level_solves = reg.counter("amf_flow_level_solves",
                               "critical water-level solves");
    newton_iters = reg.counter("amf_flow_newton_iters",
                               "Newton-on-min-cut iterations");
    bisection_steps = reg.counter("amf_flow_bisection_steps",
                                  "bisection refinement steps");
    probes = reg.counter("amf_flow_probes",
                         "feasibility probes issued by the level solver");
    hint_hits = reg.counter(
        "amf_flow_hint_hits",
        "cut-hint warm starts whose first probe was already feasible");
    hint_misses = reg.counter(
        "amf_flow_hint_misses",
        "cut-hint warm starts that still needed Newton descent");
  }
};

LevelCounters& level_counters() {
  static LevelCounters counters;
  return counters;
}

}  // namespace

CriticalLevel solve_critical_level(
    TransportSystem& net, const std::vector<ParametricSource>& sources,
    double t_lo, double t_hi, double eps, LevelMethod method,
    LevelSolveStats* stats, LevelHint* hint, const util::StopToken* stop) {
  stop = util::effective_stop(stop);
  const int n = net.jobs();
  const int m = net.sites();
  AMF_REQUIRE(static_cast<int>(sources.size()) == n,
              "one parametric source per job required");
  AMF_REQUIRE(t_lo <= t_hi, "empty level segment");
  for (const auto& src : sources)
    AMF_REQUIRE(src.slope >= 0.0, "source slopes must be non-negative");

  const double t_tol = eps * std::max({1.0, std::abs(t_hi), std::abs(t_lo)});

  AMF_SPAN_ARG("flow/critical_level", "jobs", n);
  long long newton_iters = 0;
  long long bisection_steps = 0;
  long long probe_count = 0;

  double slope_total = 0.0, fixed_total = 0.0;
  for (const auto& src : sources) {
    slope_total += src.slope;
    fixed_total += src.fixed;
  }

  auto feasible_at = [&](double t) {
    // A probe only feeds saturated()/min_cut()/jobs_can_increase(), all
    // flow-state invariants, so the network may warm-start it. The
    // allocation itself is materialized by the caller with a full solve().
    net.probe(caps_at(sources, t), eps);
    if (stats != nullptr) ++stats->flow_solves;
    ++probe_count;
    return net.saturated(eps);
  };

  double t = t_hi;
  double known_feasible = t_lo;  // bisection lower bracket
  // Every probe is a full max flow, so a plain clock read per probe is
  // already amortized; no stride poller needed at this granularity.
  auto stop_now = [&] { return stop != nullptr && stop->stop_requested(); };
  bool found = false;
  bool hint_applied = false;
  bool hint_first_feasible = false;
  LevelStatus status = LevelStatus::kConverged;
  constexpr int kMaxNewton = 64;

  if (hint != nullptr && hint->valid && method == LevelMethod::kCutNewton &&
      static_cast<int>(hint->site_in_source_side.size()) == m) {
    // Start the descent at the hinted cut's bound instead of t_hi. Each
    // job joins the side that makes the cut tighter, judged at the hint's
    // reference level: source side (contributing its crossing demand arcs)
    // when those are cheaper than its cap, sink side (contributing cap(t))
    // otherwise. Either way the cut's capacity bounds total demand, so the
    // computed level is >= the critical one regardless of hint staleness.
    double cut_slope = 0.0, cut_fixed = 0.0;
    for (int s = 0; s < m; ++s)
      if (hint->site_in_source_side[static_cast<std::size_t>(s)])
        cut_fixed += net.site_capacity(s);
    for (int j = 0; j < n; ++j) {
      double cross = 0.0;
      net.add_row_demand_across(j, hint->site_in_source_side, cross);
      const auto& src = sources[static_cast<std::size_t>(j)];
      if (src.fixed + src.slope * hint->t_ref <= cross) {
        cut_slope += src.slope;
        cut_fixed += src.fixed;
      } else {
        cut_fixed += cross;
      }
    }
    const double dslope = slope_total - cut_slope;
    if (dslope > eps * std::max(1.0, slope_total)) {
      const double t_h = (cut_fixed - fixed_total) / dslope;
      if (t_h > t_lo + t_tol && t_h < t_hi - t_tol) {
        t = t_h;
        hint_applied = true;
      }
    }
  }
  MinCut last_cut;
  bool cut_read = false;

  if (method == LevelMethod::kBisection) {
    // Ablation baseline: plain bisection, no cut analysis. It must close
    // the bracket well below the residual threshold used by the freezing
    // BFS, otherwise the leftover level gap leaks enough slack into the
    // binding cut that no job appears frozen.
    if (stop_now()) {
      t = known_feasible;
      status = LevelStatus::kDeadlineExceeded;
      found = true;
    } else if (feasible_at(t_hi)) {
      found = true;
    } else {
      const double deep_tol = t_tol * 1e-3;
      double lo = t_lo, hi = t_hi;
      for (int it = 0; it < 200 && hi - lo > deep_tol; ++it) {
        if (stop_now()) {
          status = LevelStatus::kDeadlineExceeded;
          break;
        }
        ++bisection_steps;
        double mid = 0.5 * (lo + hi);
        (feasible_at(mid) ? lo : hi) = mid;
      }
      t = lo;
      if (status != LevelStatus::kDeadlineExceeded && !feasible_at(t))
        status = LevelStatus::kDegenerate;
      found = true;
    }
  }

  for (int iter = 0; !found && iter < kMaxNewton; ++iter) {
    AMF_SPAN("flow/newton_iter");
    if (stop_now()) {
      t = known_feasible;
      status = LevelStatus::kDeadlineExceeded;
      found = true;
      break;
    }
    ++newton_iters;
    const bool feasible = feasible_at(t);
    if (iter == 0 && hint_applied) hint_first_feasible = feasible;
    if (feasible) {
      found = true;
      break;
    }
    // Read the binding min cut and jump to where its value meets demand.
    auto cut = net.min_cut(eps);
    double cut_slope = 0.0, cut_fixed = 0.0;
    if (hint != nullptr) {
      last_cut.site_in_source_side = cut.site_in_source_side;
      cut_read = true;
    }
    for (int j = 0; j < n; ++j) {
      if (!cut.job_in_source_side[static_cast<std::size_t>(j)]) {
        // Source arc of j is cut: contributes cap_j(t).
        cut_slope += sources[static_cast<std::size_t>(j)].slope;
        cut_fixed += sources[static_cast<std::size_t>(j)].fixed;
      } else {
        // Job is on the source side: its crossing demand arcs are cut.
        net.add_row_demand_across(j, cut.site_in_source_side, cut_fixed);
      }
    }
    for (int s = 0; s < m; ++s)
      if (cut.site_in_source_side[static_cast<std::size_t>(s)])
        cut_fixed += net.site_capacity(s);

    // Solve cut_slope·t' + cut_fixed = slope_total·t' + fixed_total.
    double dslope = slope_total - cut_slope;
    double t_new;
    if (dslope <= eps * std::max(1.0, slope_total)) {
      // Degenerate cut (numerically flat): bisect instead.
      t_new = 0.5 * (known_feasible + t);
    } else {
      t_new = (cut_fixed - fixed_total) / dslope;
      // Newton must strictly descend; otherwise fall back to bisection.
      if (!(t_new < t - t_tol)) t_new = 0.5 * (known_feasible + t);
    }
    t = std::clamp(t_new, known_feasible, t);
    if (t - known_feasible <= t_tol) {
      t = known_feasible;
      // The caller guaranteed feasibility here; solve to materialize it.
      if (!feasible_at(t)) status = LevelStatus::kDegenerate;
      found = true;
      break;
    }
  }

  if (!found) {
    // Newton exhausted its budget (possible only under severe floating-
    // point degeneracy): finish with plain bisection. The result is still
    // usable but reported as iteration-capped so callers can distrust it.
    status = LevelStatus::kIterationCapped;
    double lo = known_feasible, hi = t;
    for (int i = 0; i < 80 && hi - lo > t_tol; ++i) {
      if (stop_now()) {
        status = LevelStatus::kDeadlineExceeded;
        break;
      }
      ++bisection_steps;
      double mid = 0.5 * (lo + hi);
      if (feasible_at(mid))
        lo = mid;
      else
        hi = mid;
    }
    t = lo;
    if (status != LevelStatus::kDeadlineExceeded && !feasible_at(t))
      status = LevelStatus::kDegenerate;
  }

  if (stats != nullptr) stats->observe(status);

  LevelCounters& counters = level_counters();
  counters.level_solves.add(1);
  if (newton_iters > 0) counters.newton_iters.add(newton_iters);
  if (bisection_steps > 0) counters.bisection_steps.add(bisection_steps);
  if (probe_count > 0) counters.probes.add(probe_count);
  if (hint_applied)
    (hint_first_feasible ? counters.hint_hits : counters.hint_misses).add(1);

  if (hint != nullptr) {
    if (cut_read) {
      hint->site_in_source_side = std::move(last_cut.site_in_source_side);
      hint->valid = true;
    }
    // No cut read means the first probe already succeeded — the stored
    // cut (if any) is still the binding one; only the level moved.
    if (hint->valid) hint->t_ref = t;
  }

  CriticalLevel result;
  result.status = status;
  result.level = t;
  result.segment_exhausted = (t >= t_hi - t_tol);
  // A slightly looser threshold for the freezing decision keeps jobs with a
  // numerically negligible residual path from staying unfrozen forever.
  result.can_increase = net.jobs_can_increase(eps * 16.0);
  return result;
}

}  // namespace amf::flow
