#include "flow/mincost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace amf::flow {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(int node_count) {
  AMF_REQUIRE(node_count >= 0, "node count must be non-negative");
  adj_.resize(static_cast<std::size_t>(node_count));
}

NodeId MinCostFlow::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size()) - 1;
}

EdgeId MinCostFlow::add_edge(NodeId from, NodeId to, double capacity,
                             double cost) {
  AMF_REQUIRE(from >= 0 && from < node_count(), "add_edge: bad source node");
  AMF_REQUIRE(to >= 0 && to < node_count(), "add_edge: bad target node");
  AMF_REQUIRE(capacity >= 0.0, "add_edge: negative capacity");
  AMF_REQUIRE(std::isfinite(cost), "add_edge: cost must be finite");
  EdgeId id = static_cast<EdgeId>(to_.size());
  to_.push_back(to);
  residual_.push_back(capacity);
  cost_.push_back(cost);
  adj_[static_cast<std::size_t>(from)].push_back(id);
  to_.push_back(from);
  residual_.push_back(0.0);
  cost_.push_back(-cost);
  adj_[static_cast<std::size_t>(to)].push_back(id + 1);
  return id;
}

double MinCostFlow::flow(EdgeId e) const {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "flow: not a forward arc id");
  return residual_[static_cast<std::size_t>(e) + 1];
}

MinCostFlow::Result MinCostFlow::solve(NodeId source, NodeId sink,
                                       double limit, double eps,
                                       const util::StopToken* stop) {
  stop = util::effective_stop(stop);
  AMF_REQUIRE(source >= 0 && source < node_count(), "bad source");
  AMF_REQUIRE(sink >= 0 && sink < node_count(), "bad sink");
  AMF_REQUIRE(source != sink, "source == sink");
  AMF_REQUIRE(limit >= 0.0, "negative flow limit");
  const std::size_t nodes = adj_.size();

  // Bellman–Ford initializes the potentials so negative arc costs become
  // non-negative reduced costs for the Dijkstra phases.
  Result result;
  std::vector<double> potential(nodes, kInf);
  potential[static_cast<std::size_t>(source)] = 0.0;
  for (std::size_t round = 0; round + 1 < nodes; ++round) {
    if (stop != nullptr && stop->stop_requested()) {
      result.complete = false;
      return result;  // nothing pushed yet — the zero flow is valid
    }
    bool changed = false;
    for (std::size_t v = 0; v < nodes; ++v) {
      if (potential[v] == kInf) continue;
      for (EdgeId e : adj_[v]) {
        if (residual_[static_cast<std::size_t>(e)] <= eps) continue;
        auto u = static_cast<std::size_t>(to_[static_cast<std::size_t>(e)]);
        double candidate = potential[v] + cost_[static_cast<std::size_t>(e)];
        if (candidate < potential[u] - 1e-15) {
          potential[u] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // Unreached nodes get potential 0: they will only be touched once some
  // augmentation opens a residual arc into them, at which point Dijkstra
  // distances re-anchor them.
  for (auto& p : potential)
    if (p == kInf) p = 0.0;

  std::vector<double> dist(nodes);
  std::vector<EdgeId> parent_edge(nodes);
  std::vector<char> done(nodes);

  while (result.flow < limit) {
    // Augmentations are atomic: stopping between them leaves a valid
    // partial flow on the arcs, flagged incomplete for the caller.
    if (stop != nullptr && stop->stop_requested()) {
      result.complete = false;
      break;
    }
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(done.begin(), done.end(), 0);
    dist[static_cast<std::size_t>(source)] = 0.0;
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      heap.pop();
      auto vi = static_cast<std::size_t>(v);
      if (done[vi]) continue;
      done[vi] = 1;
      for (EdgeId e : adj_[vi]) {
        if (residual_[static_cast<std::size_t>(e)] <= eps) continue;
        auto u = static_cast<std::size_t>(to_[static_cast<std::size_t>(e)]);
        if (done[u]) continue;
        // Reduced costs are non-negative up to float noise; clamp.
        double rc = std::max(0.0, cost_[static_cast<std::size_t>(e)] +
                                      potential[vi] - potential[u]);
        if (d + rc < dist[u] - 1e-15) {
          dist[u] = d + rc;
          parent_edge[u] = e;
          heap.emplace(dist[u], static_cast<NodeId>(u));
        }
      }
    }
    auto si = static_cast<std::size_t>(sink);
    if (dist[si] == kInf) break;  // no augmenting path left

    for (std::size_t v = 0; v < nodes; ++v)
      if (dist[v] < kInf) potential[v] += dist[v];

    // Bottleneck along the path, capped by the remaining limit.
    double push = limit - result.flow;
    for (NodeId v = sink; v != source;) {
      EdgeId e = parent_edge[static_cast<std::size_t>(v)];
      push = std::min(push, residual_[static_cast<std::size_t>(e)]);
      v = to_[static_cast<std::size_t>(e ^ 1)];
    }
    if (push <= eps) break;
    for (NodeId v = sink; v != source;) {
      EdgeId e = parent_edge[static_cast<std::size_t>(v)];
      residual_[static_cast<std::size_t>(e)] -= push;
      residual_[static_cast<std::size_t>(e ^ 1)] += push;
      result.cost += push * cost_[static_cast<std::size_t>(e)];
      v = to_[static_cast<std::size_t>(e ^ 1)];
    }
    result.flow += push;
  }
  return result;
}

}  // namespace amf::flow
