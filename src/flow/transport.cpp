#include "flow/transport.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace amf::flow {

namespace {

// IncrementalTransport mutation/solve-path counters.  Value updates only
// count when they actually change an arc (a no-op set is free and should
// read as such in the metrics).
struct IncCounters {
  obs::Counter rows_added;
  obs::Counter rows_masked;
  obs::Counter compactions;
  obs::Counter demand_updates;
  obs::Counter capacity_updates;
  obs::Counter memo_hits;
  obs::Counter probe_warm;
  obs::Counter probe_cold;
  obs::Counter warm_solves;
  IncCounters() {
    auto& reg = obs::Registry::global();
    rows_added = reg.counter("amf_flow_inc_rows_added",
                             "job rows appended to IncrementalTransport");
    rows_masked = reg.counter("amf_flow_inc_rows_masked",
                              "job rows masked out on departure");
    compactions = reg.counter("amf_flow_inc_compactions",
                              "dead-row compaction rebuilds");
    demand_updates = reg.counter("amf_flow_inc_demand_updates",
                                 "in-place demand arc changes");
    capacity_updates = reg.counter("amf_flow_inc_capacity_updates",
                                   "in-place site capacity changes");
    memo_hits = reg.counter("amf_flow_memo_hits",
                            "solves/probes served from the last-caps memo");
    probe_warm = reg.counter("amf_flow_probe_warm",
                             "probes warm-started from the held flow");
    probe_cold = reg.counter("amf_flow_probe_cold",
                             "probes that fell back to a cold solve");
    warm_solves = reg.counter("amf_flow_warm_solves",
                              "monotone warm solves (raised caps in place)");
  }
};

IncCounters& inc_counters() {
  static IncCounters counters;
  return counters;
}

}  // namespace


SparseDemands SparseDemands::from_dense(const Matrix& demands, int sites) {
  AMF_REQUIRE(sites > 0, "at least one site required");
  SparseDemands out;
  out.site_count = sites;
  out.row_ptr.reserve(demands.size() + 1);
  out.row_ptr.push_back(0);
  for (const auto& row : demands) {
    AMF_REQUIRE(static_cast<int>(row.size()) == sites,
                "demand row width != number of sites");
    for (int s = 0; s < sites; ++s) {
      double d = row[static_cast<std::size_t>(s)];
      AMF_REQUIRE(d >= 0.0, "negative demand");
      if (d > 0.0) {
        out.col.push_back(s);
        out.val.push_back(d);
      }
    }
    out.row_ptr.push_back(static_cast<int>(out.col.size()));
  }
  return out;
}

Matrix SparseDemands::to_dense() const {
  Matrix out(static_cast<std::size_t>(jobs()),
             std::vector<double>(static_cast<std::size_t>(site_count), 0.0));
  for (int j = 0; j < jobs(); ++j)
    for (int k = row_ptr[static_cast<std::size_t>(j)];
         k < row_ptr[static_cast<std::size_t>(j) + 1]; ++k)
      out[static_cast<std::size_t>(j)][static_cast<std::size_t>(
          col[static_cast<std::size_t>(k)])] = val[static_cast<std::size_t>(k)];
  return out;
}

TransportNetwork::TransportNetwork(const Matrix& demands,
                                   const std::vector<double>& capacities)
    : jobs_(static_cast<int>(demands.size())),
      sites_(static_cast<int>(capacities.size())),
      scale_(1.0),
      net_(2 + static_cast<int>(demands.size()) +
           static_cast<int>(capacities.size())) {
  AMF_REQUIRE(sites_ > 0, "at least one site required");
  build(SparseDemands::from_dense(demands, sites_), capacities);
}

TransportNetwork::TransportNetwork(const SparseDemands& demands,
                                   const std::vector<double>& capacities)
    : jobs_(demands.jobs()),
      sites_(static_cast<int>(capacities.size())),
      scale_(1.0),
      net_(2 + demands.jobs() + static_cast<int>(capacities.size())) {
  AMF_REQUIRE(sites_ > 0, "at least one site required");
  AMF_REQUIRE(demands.sites() == sites_,
              "sparse demand width != number of sites");
  build(demands, capacities);
}

void TransportNetwork::build(const SparseDemands& demands,
                             const std::vector<double>& capacities) {
  for (double c : capacities) {
    AMF_REQUIRE(c >= 0.0, "negative site capacity");
    scale_ = std::max(scale_, c);
  }
  for (double d : demands.val) {
    AMF_REQUIRE(d >= 0.0, "negative demand");
    scale_ = std::max(scale_, d);
  }

  // Node layout: 0 = source, 1..jobs = job nodes, jobs+1..jobs+sites =
  // site nodes, last = sink.
  source_ = 0;
  sink_ = 1 + jobs_ + sites_;
  auto job_node = [this](int j) { return 1 + j; };
  auto site_node = [this](int s) { return 1 + jobs_ + s; };

  site_arcs_.resize(static_cast<std::size_t>(sites_));
  for (int s = 0; s < sites_; ++s)
    site_arcs_[static_cast<std::size_t>(s)] = net_.add_edge(
        site_node(s), sink_, capacities[static_cast<std::size_t>(s)]);

  source_arcs_.resize(static_cast<std::size_t>(jobs_));
  job_site_arcs_.resize(static_cast<std::size_t>(jobs_));
  solo_ceiling_.resize(static_cast<std::size_t>(jobs_), 0.0);
  for (int j = 0; j < jobs_; ++j) {
    source_arcs_[static_cast<std::size_t>(j)] =
        net_.add_edge(source_, job_node(j), 0.0);
    for (int k = demands.row_ptr[static_cast<std::size_t>(j)];
         k < demands.row_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      int s = demands.col[static_cast<std::size_t>(k)];
      double d = demands.val[static_cast<std::size_t>(k)];
      AMF_REQUIRE(s >= 0 && s < sites_, "sparse demand site out of range");
      if (d > 0.0) {
        EdgeId e = net_.add_edge(job_node(j), site_node(s), d);
        job_site_arcs_[static_cast<std::size_t>(j)].emplace_back(s, e);
        solo_ceiling_[static_cast<std::size_t>(j)] +=
            std::min(d, capacities[static_cast<std::size_t>(s)]);
      }
    }
  }
}

double TransportNetwork::solve(const std::vector<double>& source_caps,
                               double eps) {
  AMF_REQUIRE(static_cast<int>(source_caps.size()) == jobs_,
              "source cap vector length != number of jobs");
  last_total_ = 0.0;
  for (int j = 0; j < jobs_; ++j) {
    double cap = source_caps[static_cast<std::size_t>(j)];
    AMF_REQUIRE(cap >= 0.0, "negative source cap");
    net_.set_capacity(source_arcs_[static_cast<std::size_t>(j)], cap);
    last_total_ += cap;
  }
  net_.reset_flow();
  last_flow_ = net_.max_flow(source_, sink_, eps * scale_);
  return last_flow_;
}

bool TransportNetwork::saturated(double eps) const {
  return last_flow_ >= last_total_ - eps * std::max(scale_, last_total_);
}

Matrix TransportNetwork::allocation() const {
  Matrix a(static_cast<std::size_t>(jobs_),
           std::vector<double>(static_cast<std::size_t>(sites_), 0.0));
  for (int j = 0; j < jobs_; ++j)
    for (const auto& [s, e] : job_site_arcs_[static_cast<std::size_t>(j)])
      a[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          std::max(0.0, net_.flow(e));
  return a;
}

std::vector<char> TransportNetwork::jobs_can_increase(double eps) const {
  auto reach = net_.residual_can_reach(sink_, eps * scale_);
  std::vector<char> can(static_cast<std::size_t>(jobs_), 0);
  for (int j = 0; j < jobs_; ++j)
    can[static_cast<std::size_t>(j)] = reach[static_cast<std::size_t>(1 + j)];
  return can;
}

flow::MinCut TransportNetwork::min_cut(double eps) const {
  auto reach = net_.residual_reachable_from(source_, eps * scale_);
  MinCut cut;
  cut.job_in_source_side.resize(static_cast<std::size_t>(jobs_));
  cut.site_in_source_side.resize(static_cast<std::size_t>(sites_));
  for (int j = 0; j < jobs_; ++j)
    cut.job_in_source_side[static_cast<std::size_t>(j)] =
        reach[static_cast<std::size_t>(1 + j)];
  for (int s = 0; s < sites_; ++s)
    cut.site_in_source_side[static_cast<std::size_t>(s)] =
        reach[static_cast<std::size_t>(1 + jobs_ + s)];
  return cut;
}

double TransportNetwork::solo_ceiling(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs_, "bad job index");
  return solo_ceiling_[static_cast<std::size_t>(job)];
}

double TransportNetwork::site_capacity(int site) const {
  AMF_REQUIRE(site >= 0 && site < sites_, "bad site index");
  return net_.capacity(site_arcs_[static_cast<std::size_t>(site)]);
}

void TransportNetwork::add_row_demand_across(
    int job, const std::vector<char>& site_in_source_side,
    double& accumulator) const {
  AMF_REQUIRE(job >= 0 && job < jobs_, "bad job index");
  AMF_REQUIRE(static_cast<int>(site_in_source_side.size()) == sites_,
              "cut width != number of sites");
  // Bit-compatible with a dense row scan: a skipped zero demand would have
  // added exactly 0.0 to the accumulator.
  for (const auto& [s, e] : job_site_arcs_[static_cast<std::size_t>(job)])
    if (!site_in_source_side[static_cast<std::size_t>(s)])
      accumulator += net_.capacity(e);
}

// ---------------------------------------------------------------------------
// IncrementalTransport

IncrementalTransport::IncrementalTransport(
    std::vector<double> site_capacities) {
  AMF_REQUIRE(!site_capacities.empty(), "at least one site required");
  // Node layout: 0 = source, 1 = sink, 2..sites+1 = site nodes; job nodes
  // are appended by add_job. Site→sink arcs come first so that site-node
  // adjacency starts with the sink arc, matching TransportNetwork's build
  // order (the bit-for-bit contract depends on relative arc order at every
  // node, not on node ids).
  source_ = net_.add_node();
  sink_ = net_.add_node();
  site_nodes_.reserve(site_capacities.size());
  site_arcs_.reserve(site_capacities.size());
  for (double c : site_capacities) {
    AMF_REQUIRE(c >= 0.0, "negative site capacity");
    NodeId node = net_.add_node();
    site_nodes_.push_back(node);
    site_arcs_.push_back(net_.add_edge(node, sink_, c));
  }
  site_incoming_.resize(site_capacities.size());
}

void IncrementalTransport::invalidate_caches() {
  memo_valid_ = false;
  scale_dirty_ = true;
}

int IncrementalTransport::add_job(const std::vector<int>& sites,
                                  const std::vector<double>& demands) {
  AMF_REQUIRE(sites.size() == demands.size(),
              "add_job: sites/demands length mismatch");
  Row row;
  row.live = true;
  row.node = net_.add_node();
  row.source_arc = net_.add_edge(source_, row.node, 0.0);
  row.site_arcs.reserve(sites.size());
  int prev = -1;
  for (std::size_t k = 0; k < sites.size(); ++k) {
    int s = sites[k];
    AMF_REQUIRE(s >= 0 && s < this->sites(), "add_job: site out of range");
    AMF_REQUIRE(s > prev, "add_job: sites must be strictly ascending");
    AMF_REQUIRE(demands[k] >= 0.0, "add_job: negative demand");
    prev = s;
    EdgeId e = net_.add_edge(
        row.node, site_nodes_[static_cast<std::size_t>(s)], demands[k]);
    row.site_arcs.emplace_back(s, e);
    site_incoming_[static_cast<std::size_t>(s)].emplace_back(
        static_cast<int>(rows_.size()), e);
  }
  rows_.push_back(std::move(row));
  ++live_rows_;
  inc_counters().rows_added.add(1);
  invalidate_caches();
  // New arcs carry no flow, so an existing conservative flow stays valid.
  return static_cast<int>(rows_.size()) - 1;
}

void IncrementalTransport::drain_row(const Row& row) {
  for (const auto& [s, e] : row.site_arcs) {
    const double f = net_.flow(e);
    if (f <= 0.0) continue;
    net_.cancel_flow(e, f);
    net_.cancel_flow(site_arcs_[static_cast<std::size_t>(s)], f);
    net_.cancel_flow(row.source_arc, f);
  }
}

void IncrementalTransport::remove_job(int row) {
  AMF_REQUIRE(row >= 0 && row < total_rows(), "remove_job: bad row id");
  Row& r = rows_[static_cast<std::size_t>(row)];
  AMF_REQUIRE(r.live, "remove_job: row already removed");
  r.live = false;
  if (flow_valid_) drain_row(r);
  net_.rebase_capacity(r.source_arc, 0.0);
  for (const auto& [s, e] : r.site_arcs) {
    (void)s;
    net_.rebase_capacity(e, 0.0);
  }
  auto it = std::find(active_.begin(), active_.end(), row);
  if (it != active_.end()) active_.erase(it);
  --live_rows_;
  inc_counters().rows_masked.add(1);
  invalidate_caches();
}

bool IncrementalTransport::set_demand(int row, int site, double value) {
  AMF_REQUIRE(row >= 0 && row < total_rows(), "set_demand: bad row id");
  AMF_REQUIRE(site >= 0 && site < sites(), "set_demand: bad site");
  AMF_REQUIRE(value >= 0.0, "set_demand: negative demand");
  const Row& r = rows_[static_cast<std::size_t>(row)];
  AMF_REQUIRE(r.live, "set_demand: row removed");
  for (const auto& [s, e] : r.site_arcs) {
    if (s == site) {
      if (net_.capacity(e) != value) {
        if (flow_valid_) {
          // Shed any flow above the new cap along this arc's own path so
          // the held flow stays conservative and capacity-respecting.
          const double excess = net_.flow(e) - value;
          if (excess > 0.0) {
            net_.cancel_flow(e, excess);
            net_.cancel_flow(site_arcs_[static_cast<std::size_t>(s)], excess);
            net_.cancel_flow(r.source_arc, excess);
          }
        }
        net_.rebase_capacity(e, value);
        inc_counters().demand_updates.add(1);
        invalidate_caches();
      }
      return true;
    }
  }
  // No arc was reserved for this site: representable only if the new
  // demand is zero (which it already is, implicitly).
  return value == 0.0;
}

bool IncrementalTransport::has_demand_arc(int row, int site) const {
  AMF_REQUIRE(row >= 0 && row < total_rows(), "has_demand_arc: bad row id");
  const Row& r = rows_[static_cast<std::size_t>(row)];
  for (const auto& [s, e] : r.site_arcs) {
    (void)e;
    if (s == site) return true;
  }
  return false;
}

double IncrementalTransport::demand(int row, int site) const {
  AMF_REQUIRE(row >= 0 && row < total_rows(), "demand: bad row id");
  const Row& r = rows_[static_cast<std::size_t>(row)];
  for (const auto& [s, e] : r.site_arcs)
    if (s == site) return net_.capacity(e);
  return 0.0;
}

void IncrementalTransport::set_site_capacity(int site, double value) {
  AMF_REQUIRE(site >= 0 && site < sites(), "set_site_capacity: bad site");
  AMF_REQUIRE(value >= 0.0, "set_site_capacity: negative capacity");
  EdgeId e = site_arcs_[static_cast<std::size_t>(site)];
  if (net_.capacity(e) != value) {
    if (flow_valid_) {
      // Shed throughput above the new cap, walking the site's incoming
      // demand arcs in row insertion order (deterministic).
      double excess = net_.flow(e) - value;
      for (const auto& [row, in] :
           site_incoming_[static_cast<std::size_t>(site)]) {
        if (excess <= 0.0) break;
        const double d = std::min(net_.flow(in), excess);
        if (d <= 0.0) continue;
        net_.cancel_flow(in, d);
        net_.cancel_flow(e, d);
        net_.cancel_flow(rows_[static_cast<std::size_t>(row)].source_arc, d);
        excess -= d;
      }
    }
    net_.rebase_capacity(e, value);
    inc_counters().capacity_updates.add(1);
    invalidate_caches();
  }
}

void IncrementalTransport::set_active(const std::vector<int>& rows) {
  int prev = -1;
  for (int row : rows) {
    AMF_REQUIRE(row >= 0 && row < total_rows(), "set_active: bad row id");
    AMF_REQUIRE(row > prev, "set_active: rows must be strictly ascending");
    AMF_REQUIRE(rows_[static_cast<std::size_t>(row)].live,
                "set_active: removed row");
    prev = row;
  }
  if (rows == active_) return;
  // Rows leaving the active set must become invisible to the next solve:
  // zero their source caps now (the solve only touches the new set's arcs)
  // and, when a warm flow is held, drain their throughput.
  for (int row : active_) {
    if (!std::binary_search(rows.begin(), rows.end(), row)) {
      const Row& r = rows_[static_cast<std::size_t>(row)];
      if (flow_valid_) drain_row(r);
      net_.rebase_capacity(r.source_arc, 0.0);
    }
  }
  active_ = rows;
  invalidate_caches();
}

void IncrementalTransport::compact() {
  AMF_SPAN_ARG("flow/compact", "live_rows", live_rows_);
  inc_counters().compactions.add(1);
  // Dead rows were drained when removed, so a held conservative flow lives
  // entirely on surviving arcs and can be transplanted onto the rebuilt
  // network arc by arc, keeping warm probes possible across compactions.
  const bool keep_flow = flow_valid_;
  // Warm cancellations can leave ulp-negative dust on an arc's flow;
  // clamp at the transplant (a conservative flow stays conservative up to
  // the same dust, far below every eps threshold).
  auto held_flow = [this](EdgeId e) { return std::max(0.0, net_.flow(e)); };
  FlowNetwork fresh;
  NodeId source = fresh.add_node();
  NodeId sink = fresh.add_node();
  std::vector<NodeId> site_nodes(site_nodes_.size());
  std::vector<EdgeId> site_arcs(site_arcs_.size());
  for (std::size_t s = 0; s < site_arcs_.size(); ++s) {
    site_nodes[s] = fresh.add_node();
    site_arcs[s] =
        fresh.add_edge(site_nodes[s], sink, net_.capacity(site_arcs_[s]));
    if (keep_flow) fresh.set_flow(site_arcs[s], held_flow(site_arcs_[s]));
  }
  std::vector<std::vector<std::pair<int, EdgeId>>> site_incoming(
      site_incoming_.size());
  for (std::size_t row = 0; row < rows_.size(); ++row) {
    Row& r = rows_[row];
    if (!r.live) {
      r.node = -1;
      r.source_arc = -1;
      r.site_arcs.clear();
      continue;
    }
    NodeId node = fresh.add_node();
    EdgeId src = fresh.add_edge(source, node, net_.capacity(r.source_arc));
    if (keep_flow) fresh.set_flow(src, held_flow(r.source_arc));
    for (auto& [s, e] : r.site_arcs) {
      EdgeId fresh_e = fresh.add_edge(
          node, site_nodes[static_cast<std::size_t>(s)], net_.capacity(e));
      if (keep_flow) fresh.set_flow(fresh_e, held_flow(e));
      e = fresh_e;
      site_incoming[static_cast<std::size_t>(s)].emplace_back(
          static_cast<int>(row), e);
    }
    r.node = node;
    r.source_arc = src;
  }
  net_ = std::move(fresh);
  source_ = source;
  sink_ = sink;
  site_nodes_ = std::move(site_nodes);
  site_arcs_ = std::move(site_arcs);
  site_incoming_ = std::move(site_incoming);
  flow_valid_ = keep_flow;
  invalidate_caches();
}

double IncrementalTransport::scale() const {
  if (!scale_dirty_) return scale_;
  // Matches a fresh TransportNetwork build over the active rows' current
  // values: capacities first, then demands (max is order-independent, but
  // we keep the same traversal anyway).
  double scale = 1.0;
  for (EdgeId e : site_arcs_) scale = std::max(scale, net_.capacity(e));
  for (int row : active_)
    for (const auto& [s, e] : rows_[static_cast<std::size_t>(row)].site_arcs) {
      (void)s;
      scale = std::max(scale, net_.capacity(e));
    }
  scale_ = scale;
  scale_dirty_ = false;
  return scale_;
}

double IncrementalTransport::solve(const std::vector<double>& source_caps,
                                   double eps) {
  AMF_REQUIRE(static_cast<int>(source_caps.size()) == jobs(),
              "source cap vector length != number of active jobs");
  if (memo_valid_ && (canonical_ || !exact_) && eps == last_eps_ &&
      source_caps == last_caps_) {
    inc_counters().memo_hits.add(1);
    return last_flow_;  // network already holds a max flow for these caps
  }
  last_total_ = 0.0;
  for (std::size_t j = 0; j < active_.size(); ++j) {
    double cap = source_caps[j];
    AMF_REQUIRE(cap >= 0.0, "negative source cap");
    net_.set_capacity(rows_[static_cast<std::size_t>(active_[j])].source_arc,
                      cap);
    last_total_ += cap;
  }
  net_.reset_flow();
  last_flow_ = net_.max_flow(source_, sink_, eps * scale());
  last_caps_ = source_caps;
  last_eps_ = eps;
  memo_valid_ = true;
  canonical_ = true;
  flow_valid_ = true;
  return last_flow_;
}

double IncrementalTransport::probe(const std::vector<double>& source_caps,
                                   double eps) {
  AMF_REQUIRE(static_cast<int>(source_caps.size()) == jobs(),
              "source cap vector length != number of active jobs");
  if (memo_valid_ && eps == last_eps_ && source_caps == last_caps_) {
    inc_counters().memo_hits.add(1);
    return last_flow_;
  }
  // Mutators keep the held flow conservative and capacity-respecting
  // (flow_valid_), so even across topology and value changes only the
  // source caps need retargeting before augmenting on top.
  if (!flow_valid_ || eps != last_eps_) {
    inc_counters().probe_cold.add(1);
    return solve(source_caps, eps);
  }
  inc_counters().probe_warm.add(1);
  const double flow_eps = eps * scale();
  for (std::size_t j = 0; j < active_.size(); ++j) {
    const Row& r = rows_[static_cast<std::size_t>(active_[j])];
    const double cap = source_caps[j];
    AMF_REQUIRE(cap >= 0.0, "negative source cap");
    double excess = net_.flow(r.source_arc) - cap;
    if (excess > 0.0) {
      // Shrink the job's inflow to fit the new cap: cancel along its own
      // site arcs (ascending site order — deterministic) and the matching
      // site→sink arcs, keeping conservation everywhere.
      for (const auto& [s, e] : r.site_arcs) {
        if (excess <= 0.0) break;
        const double d = std::min(net_.flow(e), excess);
        if (d <= 0.0) continue;
        net_.cancel_flow(e, d);
        net_.cancel_flow(site_arcs_[static_cast<std::size_t>(s)], d);
        net_.cancel_flow(r.source_arc, d);
        excess -= d;
      }
    }
    net_.rebase_capacity(r.source_arc, cap);
  }
  net_.max_flow(source_, sink_, flow_eps);
  last_total_ = 0.0;
  last_flow_ = 0.0;
  for (std::size_t j = 0; j < active_.size(); ++j) {
    last_total_ += source_caps[j];
    last_flow_ +=
        net_.flow(rows_[static_cast<std::size_t>(active_[j])].source_arc);
  }
  last_caps_ = source_caps;
  last_eps_ = eps;
  memo_valid_ = true;
  canonical_ = false;
  return last_flow_;
}

double IncrementalTransport::solve_warm(const std::vector<double>& source_caps,
                                        double eps) {
  AMF_REQUIRE(static_cast<int>(source_caps.size()) == jobs(),
              "source cap vector length != number of active jobs");
  bool monotone = memo_valid_ && eps == last_eps_ &&
                  last_caps_.size() == source_caps.size();
  if (monotone) {
    for (std::size_t j = 0; j < source_caps.size(); ++j)
      if (source_caps[j] < last_caps_[j]) {
        monotone = false;
        break;
      }
  }
  if (!monotone) return solve(source_caps, eps);
  inc_counters().warm_solves.add(1);
  for (std::size_t j = 0; j < active_.size(); ++j)
    net_.raise_capacity(rows_[static_cast<std::size_t>(active_[j])].source_arc,
                        source_caps[j]);
  last_flow_ += net_.max_flow(source_, sink_, eps * scale());
  last_total_ = 0.0;
  for (double cap : source_caps) last_total_ += cap;
  last_caps_ = source_caps;
  memo_valid_ = true;
  canonical_ = false;
  return last_flow_;
}

bool IncrementalTransport::saturated(double eps) const {
  return last_flow_ >= last_total_ - eps * std::max(scale(), last_total_);
}

Matrix IncrementalTransport::allocation() const {
  Matrix a(active_.size(),
           std::vector<double>(static_cast<std::size_t>(sites()), 0.0));
  for (std::size_t j = 0; j < active_.size(); ++j)
    for (const auto& [s, e] :
         rows_[static_cast<std::size_t>(active_[j])].site_arcs)
      a[j][static_cast<std::size_t>(s)] = std::max(0.0, net_.flow(e));
  return a;
}

std::vector<char> IncrementalTransport::jobs_can_increase(double eps) const {
  auto reach = net_.residual_can_reach(sink_, eps * scale());
  std::vector<char> can(active_.size(), 0);
  for (std::size_t j = 0; j < active_.size(); ++j)
    can[j] = reach[static_cast<std::size_t>(
        rows_[static_cast<std::size_t>(active_[j])].node)];
  return can;
}

MinCut IncrementalTransport::min_cut(double eps) const {
  auto reach = net_.residual_reachable_from(source_, eps * scale());
  MinCut cut;
  cut.job_in_source_side.resize(active_.size());
  cut.site_in_source_side.resize(site_nodes_.size());
  for (std::size_t j = 0; j < active_.size(); ++j)
    cut.job_in_source_side[j] = reach[static_cast<std::size_t>(
        rows_[static_cast<std::size_t>(active_[j])].node)];
  for (std::size_t s = 0; s < site_nodes_.size(); ++s)
    cut.site_in_source_side[s] =
        reach[static_cast<std::size_t>(site_nodes_[s])];
  return cut;
}

double IncrementalTransport::solo_ceiling(int active_job) const {
  AMF_REQUIRE(active_job >= 0 && active_job < jobs(), "bad job index");
  // Recomputed from current values (demands and capacities mutate between
  // solves); iterates positive demands in ascending site order, matching a
  // fresh build's accumulation exactly.
  const Row& r = rows_[static_cast<std::size_t>(
      active_[static_cast<std::size_t>(active_job)])];
  double sum = 0.0;
  for (const auto& [s, e] : r.site_arcs) {
    double d = net_.capacity(e);
    if (d > 0.0)
      sum +=
          std::min(d, net_.capacity(site_arcs_[static_cast<std::size_t>(s)]));
  }
  return sum;
}

double IncrementalTransport::site_capacity(int site) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "bad site index");
  return net_.capacity(site_arcs_[static_cast<std::size_t>(site)]);
}

void IncrementalTransport::add_row_demand_across(
    int active_job, const std::vector<char>& site_in_source_side,
    double& accumulator) const {
  AMF_REQUIRE(active_job >= 0 && active_job < jobs(), "bad job index");
  AMF_REQUIRE(static_cast<int>(site_in_source_side.size()) == sites(),
              "cut width != number of sites");
  const Row& r = rows_[static_cast<std::size_t>(
      active_[static_cast<std::size_t>(active_job)])];
  // Masked (zero) demands are skipped: each would add exactly 0.0.
  for (const auto& [s, e] : r.site_arcs) {
    double d = net_.capacity(e);
    if (d > 0.0 && !site_in_source_side[static_cast<std::size_t>(s)])
      accumulator += d;
  }
}

// ---------------------------------------------------------------------------

bool aggregates_feasible(const Matrix& demands,
                         const std::vector<double>& capacities,
                         const std::vector<double>& aggregates, double eps) {
  TransportNetwork net(demands, capacities);
  net.solve(aggregates, eps);
  return net.saturated(eps);
}

std::optional<Matrix> allocation_for_aggregates(
    const Matrix& demands, const std::vector<double>& capacities,
    const std::vector<double>& aggregates, double eps) {
  TransportNetwork net(demands, capacities);
  net.solve(aggregates, eps);
  if (!net.saturated(eps)) return std::nullopt;
  return net.allocation();
}

}  // namespace amf::flow
