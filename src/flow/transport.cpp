#include "flow/transport.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace amf::flow {

TransportNetwork::TransportNetwork(const Matrix& demands,
                                   const std::vector<double>& capacities)
    : jobs_(static_cast<int>(demands.size())),
      sites_(static_cast<int>(capacities.size())),
      scale_(1.0),
      net_(2 + static_cast<int>(demands.size()) +
           static_cast<int>(capacities.size())) {
  AMF_REQUIRE(sites_ > 0, "at least one site required");
  for (double c : capacities) {
    AMF_REQUIRE(c >= 0.0, "negative site capacity");
    scale_ = std::max(scale_, c);
  }
  for (const auto& row : demands) {
    AMF_REQUIRE(static_cast<int>(row.size()) == sites_,
                "demand row width != number of sites");
    for (double d : row) {
      AMF_REQUIRE(d >= 0.0, "negative demand");
      scale_ = std::max(scale_, d);
    }
  }

  // Node layout: 0 = source, 1..jobs = job nodes, jobs+1..jobs+sites =
  // site nodes, last = sink.
  source_ = 0;
  sink_ = 1 + jobs_ + sites_;
  auto job_node = [this](int j) { return 1 + j; };
  auto site_node = [this](int s) { return 1 + jobs_ + s; };

  std::vector<EdgeId> site_arcs(static_cast<std::size_t>(sites_));
  for (int s = 0; s < sites_; ++s)
    site_arcs[static_cast<std::size_t>(s)] =
        net_.add_edge(site_node(s), sink_, capacities[static_cast<std::size_t>(s)]);

  source_arcs_.resize(static_cast<std::size_t>(jobs_));
  job_site_arcs_.resize(static_cast<std::size_t>(jobs_));
  solo_ceiling_.resize(static_cast<std::size_t>(jobs_), 0.0);
  for (int j = 0; j < jobs_; ++j) {
    source_arcs_[static_cast<std::size_t>(j)] =
        net_.add_edge(source_, job_node(j), 0.0);
    for (int s = 0; s < sites_; ++s) {
      double d = demands[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (d > 0.0) {
        EdgeId e = net_.add_edge(job_node(j), site_node(s), d);
        job_site_arcs_[static_cast<std::size_t>(j)].emplace_back(s, e);
        solo_ceiling_[static_cast<std::size_t>(j)] +=
            std::min(d, capacities[static_cast<std::size_t>(s)]);
      }
    }
  }
}

double TransportNetwork::solve(const std::vector<double>& source_caps,
                               double eps) {
  AMF_REQUIRE(static_cast<int>(source_caps.size()) == jobs_,
              "source cap vector length != number of jobs");
  last_total_ = 0.0;
  for (int j = 0; j < jobs_; ++j) {
    double cap = source_caps[static_cast<std::size_t>(j)];
    AMF_REQUIRE(cap >= 0.0, "negative source cap");
    net_.set_capacity(source_arcs_[static_cast<std::size_t>(j)], cap);
    last_total_ += cap;
  }
  net_.reset_flow();
  last_flow_ = net_.max_flow(source_, sink_, eps * scale_);
  return last_flow_;
}

bool TransportNetwork::saturated(double eps) const {
  return last_flow_ >= last_total_ - eps * std::max(scale_, last_total_);
}

Matrix TransportNetwork::allocation() const {
  Matrix a(static_cast<std::size_t>(jobs_),
           std::vector<double>(static_cast<std::size_t>(sites_), 0.0));
  for (int j = 0; j < jobs_; ++j)
    for (const auto& [s, e] : job_site_arcs_[static_cast<std::size_t>(j)])
      a[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          std::max(0.0, net_.flow(e));
  return a;
}

std::vector<char> TransportNetwork::jobs_can_increase(double eps) const {
  auto reach = net_.residual_can_reach(sink_, eps * scale_);
  std::vector<char> can(static_cast<std::size_t>(jobs_), 0);
  for (int j = 0; j < jobs_; ++j)
    can[static_cast<std::size_t>(j)] = reach[static_cast<std::size_t>(1 + j)];
  return can;
}

TransportNetwork::MinCut TransportNetwork::min_cut(double eps) const {
  auto reach = net_.residual_reachable_from(source_, eps * scale_);
  MinCut cut;
  cut.job_in_source_side.resize(static_cast<std::size_t>(jobs_));
  cut.site_in_source_side.resize(static_cast<std::size_t>(sites_));
  for (int j = 0; j < jobs_; ++j)
    cut.job_in_source_side[static_cast<std::size_t>(j)] =
        reach[static_cast<std::size_t>(1 + j)];
  for (int s = 0; s < sites_; ++s)
    cut.site_in_source_side[static_cast<std::size_t>(s)] =
        reach[static_cast<std::size_t>(1 + jobs_ + s)];
  return cut;
}

double TransportNetwork::solo_ceiling(int job) const {
  AMF_REQUIRE(job >= 0 && job < jobs_, "bad job index");
  return solo_ceiling_[static_cast<std::size_t>(job)];
}

bool aggregates_feasible(const Matrix& demands,
                         const std::vector<double>& capacities,
                         const std::vector<double>& aggregates, double eps) {
  TransportNetwork net(demands, capacities);
  net.solve(aggregates, eps);
  return net.saturated(eps);
}

std::optional<Matrix> allocation_for_aggregates(
    const Matrix& demands, const std::vector<double>& capacities,
    const std::vector<double>& aggregates, double eps) {
  TransportNetwork net(demands, capacities);
  net.solve(aggregates, eps);
  if (!net.saturated(eps)) return std::nullopt;
  return net.allocation();
}

}  // namespace amf::flow
