// parametric.hpp — critical water levels on the transportation polytope.
//
// Progressive filling raises the aggregate allocation of every unfrozen
// job at a common (weighted) rate until some capacity constraint binds.
// With source caps that are affine in the level t — cap_j(t) = fixed_j +
// slope_j·t — the max-flow value maxflow(t) is concave piecewise linear,
// so the largest feasible level solves maxflow(t) = Σ_j cap_j(t).
//
// We find it by Newton iteration on min-cuts (a Dinkelbach-style scheme):
// starting from an infeasible upper bound, each round solves one max flow,
// reads off the binding cut, and jumps to the level where that cut's
// (linear) value meets the (linear) total demand. The iterates decrease
// monotonically and land exactly on the critical level after finitely many
// distinct cuts; a bisection fallback guards against floating-point stalls.
#pragma once

#include <vector>

#include "flow/transport.hpp"
#include "util/deadline.hpp"

namespace amf::flow {

/// Affine source capacity: cap(t) = max(0, fixed + slope * t).
struct ParametricSource {
  double fixed = 0.0;
  double slope = 0.0;
};

/// How the critical level is located. kCutNewton is the default
/// (few max-flow solves, lands exactly on the breakpoint); kBisection is
/// the naive alternative kept for the ablation study (bench F10).
enum class LevelMethod { kCutNewton, kBisection };

/// Convergence quality of one critical-level solve. Surfaced as data (not
/// a throw) so a resilience-minded caller can decide to retry with a
/// looser tolerance or hand off to a fallback solver.
enum class LevelStatus {
  kConverged,         ///< landed on the critical level cleanly
  kIterationCapped,   ///< Newton budget exhausted; bisection closed the
                      ///< bracket, result valid but lower-confidence
  kDegenerate,        ///< a bracket/contract invariant failed numerically;
                      ///< the returned allocation must not be trusted
  kDeadlineExceeded,  ///< the stop token fired mid-solve; the returned
                      ///< level is the best *known-feasible* one (a
                      ///< conservative partial answer, never an
                      ///< overestimate), not the critical level
};

/// Optional instrumentation collected by solve_critical_level. This is the
/// per-invocation view a caller threads through one solve; cumulative
/// process-wide counts (solves, Newton iterations, bisection steps, probe
/// flows, cut-hint hits/misses) live in the obs metric registry under
/// amf_flow_* and need no stats object to be collected.
struct LevelSolveStats {
  int flow_solves = 0;  ///< max-flow computations performed
  /// Worst status observed across all solves feeding this stats object.
  LevelStatus worst = LevelStatus::kConverged;

  void observe(LevelStatus s) {
    if (static_cast<int>(s) > static_cast<int>(worst)) worst = s;
  }
};

/// Cross-solve warm-start hint for solve_critical_level: the site set of
/// the binding min cut a previous, related solve ended on, plus the level
/// it bound (`t_ref`, used to pick each job's side of the cut when
/// re-evaluating it under new sources). The capacity of *any* cut upper-
/// bounds total demand, so a stale hint is still a sound starting level —
/// at worst the descent takes its normal course; when the cut still binds
/// (the common case in an online event stream) the first probe lands on
/// the critical level and the solve finishes with a single max flow and no
/// cut extraction. The landed-on level can differ from the cold descent's
/// in the last ulps (ties between binding cuts break differently), so
/// hints are reserved for relaxed-realization solves, never replay-exact
/// ones.
struct LevelHint {
  bool valid = false;
  std::vector<char> site_in_source_side;
  double t_ref = 0.0;
};

/// Result of a critical-level solve on one affine segment [t_lo, t_hi].
struct CriticalLevel {
  /// Convergence quality of this solve (see LevelStatus).
  LevelStatus status = LevelStatus::kConverged;
  /// The largest feasible level within the segment.
  double level = 0.0;
  /// True when the whole segment is feasible (level == t_hi and nothing
  /// binds strictly inside); the caller should advance to the next segment.
  bool segment_exhausted = false;
  /// Per-job: can this job's aggregate still increase at `level`?
  /// (Residual path to the sink exists.) Jobs with `false` are the ones a
  /// progressive-filling caller must freeze.
  std::vector<char> can_increase;
};

/// Finds the largest t in [t_lo, t_hi] such that source caps cap_j(t) are
/// simultaneously realizable (max flow saturates all source arcs). On
/// return `net` holds the solve at `level`; read net.allocation() for the
/// realizing matrix.
///
/// Preconditions: the caps at t_lo are feasible; slopes are non-negative.
/// Demand and site-capacity values are read from `net` itself (the system
/// is the single source of truth, enabling persistent-topology reuse).
///
/// `hint`, when non-null, warm-starts the Newton descent from the hinted
/// cut's bound (kCutNewton only) and is updated on return with the cut
/// this solve ended on. See LevelHint for the soundness argument and the
/// replay-exactness caveat.
///
/// `stop` (explicit, else the ambient token) is polled before every
/// feasibility probe; when it fires the solve returns immediately with
/// status kDeadlineExceeded and `level` set to the best level it had
/// already proven feasible (at worst t_lo) — a conservative answer a
/// caller can still act on.
CriticalLevel solve_critical_level(
    TransportSystem& net, const std::vector<ParametricSource>& sources,
    double t_lo, double t_hi, double eps = FlowNetwork::kDefaultEps,
    LevelMethod method = LevelMethod::kCutNewton,
    LevelSolveStats* stats = nullptr, LevelHint* hint = nullptr,
    const util::StopToken* stop = nullptr);

}  // namespace amf::flow
