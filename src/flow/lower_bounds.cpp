#include "flow/lower_bounds.hpp"

#include <cmath>

#include "util/error.hpp"

namespace amf::flow {

std::optional<std::vector<double>> feasible_flow_with_lower_bounds(
    int node_count, const std::vector<BoundedEdge>& edges, NodeId source,
    NodeId sink, double eps) {
  AMF_REQUIRE(node_count >= 2, "need at least source and sink");
  AMF_REQUIRE(source >= 0 && source < node_count, "bad source");
  AMF_REQUIRE(sink >= 0 && sink < node_count, "bad sink");

  double scale = 1.0;
  for (const auto& e : edges) {
    AMF_REQUIRE(e.from >= 0 && e.from < node_count, "bad edge source");
    AMF_REQUIRE(e.to >= 0 && e.to < node_count, "bad edge target");
    AMF_REQUIRE(e.lower >= 0.0 && e.lower <= e.upper + eps,
                "edge bounds must satisfy 0 <= lower <= upper");
    scale = std::max(scale, e.upper);
  }

  // Transformed network: original nodes + super source/sink.
  FlowNetwork net(node_count + 2);
  const NodeId ss = node_count;
  const NodeId tt = node_count + 1;

  std::vector<double> excess(static_cast<std::size_t>(node_count), 0.0);
  std::vector<EdgeId> arc(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& e = edges[i];
    arc[i] = net.add_edge(e.from, e.to, std::max(0.0, e.upper - e.lower));
    excess[static_cast<std::size_t>(e.to)] += e.lower;
    excess[static_cast<std::size_t>(e.from)] -= e.lower;
  }
  // Circulation closure: allow return flow from sink to source.
  // 2x total scale is a safe "infinite" capacity for this network.
  double big = 0.0;
  for (const auto& e : edges) big += e.upper;
  big = std::max(big, scale) * 2.0 + 1.0;
  net.add_edge(sink, source, big);

  double required = 0.0;
  for (NodeId v = 0; v < node_count; ++v) {
    double ex = excess[static_cast<std::size_t>(v)];
    if (ex > 0.0) {
      net.add_edge(ss, v, ex);
      required += ex;
    } else if (ex < 0.0) {
      net.add_edge(v, tt, -ex);
    }
  }

  double pushed = net.max_flow(ss, tt, eps);
  if (pushed < required - eps * std::max(1.0, required)) return std::nullopt;

  std::vector<double> result(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    result[i] = edges[i].lower + net.flow(arc[i]);
  return result;
}

}  // namespace amf::flow
