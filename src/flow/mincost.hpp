// mincost.hpp — minimum-cost flow substrate.
//
// Successive shortest paths with node potentials: an initial Bellman–Ford
// pass absorbs negative arc costs into the potentials, after which every
// augmentation runs Dijkstra on reduced costs. Built for the library's
// allocation-sized networks (thousands of arcs), real-valued capacities
// and costs.
//
// Used by the stability add-on's fast backend: the churn-minimizing
// realization of a fixed aggregate vector is a min-cost flow where each
// job→site cell splits into a "keep" arc (up to the previous share,
// reward -1) and a "change" arc (the rest of the demand cap, cost +1).
#pragma once

#include <limits>
#include <vector>

#include "flow/network.hpp"
#include "util/deadline.hpp"

namespace amf::flow {

/// Directed min-cost max-flow network (parallel arcs allowed).
class MinCostFlow {
 public:
  explicit MinCostFlow(int node_count = 0);

  NodeId add_node();
  int node_count() const { return static_cast<int>(adj_.size()); }

  /// Adds an arc with capacity >= 0 and arbitrary (finite) cost; returns
  /// the forward arc id (reverse is id ^ 1).
  EdgeId add_edge(NodeId from, NodeId to, double capacity, double cost);

  /// Flow currently on forward arc `e`.
  double flow(EdgeId e) const;

  struct Result {
    double flow = 0.0;  ///< total flow pushed
    double cost = 0.0;  ///< total cost of the flow
    /// False when the stop token fired before the limit was reached or
    /// the paths ran out. The flow pushed so far is still a valid
    /// (partial) flow — augmentations are atomic — just not a maximal or
    /// cost-optimal one.
    bool complete = true;
  };

  /// Pushes up to `limit` units from source to sink along cheapest paths
  /// (min-cost max-flow when limit is infinite). Augments only while a
  /// path exists; per-arc residuals below eps count as empty. May be
  /// called once per instance (no incremental reuse). `stop` (explicit,
  /// else the ambient token) is polled between augmentations.
  Result solve(NodeId source, NodeId sink,
               double limit = std::numeric_limits<double>::infinity(),
               double eps = FlowNetwork::kDefaultEps,
               const util::StopToken* stop = nullptr);

 private:
  std::vector<std::vector<EdgeId>> adj_;
  std::vector<NodeId> to_;
  std::vector<double> residual_;
  std::vector<double> cost_;
};

}  // namespace amf::flow
