// network.hpp — max-flow substrate.
//
// A real-capacity flow network with Dinic's algorithm, residual
// reachability queries and min-cut extraction. This is the computational
// core underneath every AMF operation: feasibility of a water level is a
// max-flow saturation check, freezing decisions are residual reachability,
// and critical levels are solved on min-cuts (see parametric.hpp).
//
// Capacities are doubles; an epsilon (relative to the largest capacity)
// decides when residual capacity counts as zero. All algorithms are
// deterministic: edge insertion order fixes traversal order.
#pragma once

#include <cstddef>
#include <vector>

namespace amf::flow {

/// Node index within a FlowNetwork.
using NodeId = int;
/// Edge index returned by add_edge (identifies the forward arc).
using EdgeId = int;

/// Directed flow network with Dinic max-flow.
///
/// Edges are created in forward/reverse pairs; `add_edge` returns the id of
/// the forward arc (its reverse is `id ^ 1`). Capacities can be updated
/// between solves via `set_capacity` + `reset_flow` for parametric reuse.
class FlowNetwork {
 public:
  explicit FlowNetwork(int node_count = 0);

  /// Adds a node; returns its id.
  NodeId add_node();

  int node_count() const { return static_cast<int>(adj_.size()); }
  int edge_count() const { return static_cast<int>(to_.size()) / 2; }

  /// Adds a directed edge with the given capacity (>= 0); returns the
  /// forward arc id.
  EdgeId add_edge(NodeId from, NodeId to, double capacity);

  /// Current flow on the forward arc `e` (reverse arc's residual).
  double flow(EdgeId e) const;

  /// Original capacity of the forward arc `e`.
  double capacity(EdgeId e) const;

  /// Updates the capacity of forward arc `e`. Takes effect at the next
  /// reset_flow(); flows already pushed are not adjusted.
  void set_capacity(EdgeId e, double capacity);

  /// Raises the capacity of forward arc `e` to `capacity` (>= its current
  /// value) with immediate effect: the extra headroom is added to the arc's
  /// residual, preserving all flow already pushed. The basis of warm-started
  /// monotone re-solves — follow with max_flow to augment on top.
  void raise_capacity(EdgeId e, double capacity);

  /// Removes `amount` (>= 0) of flow from forward arc `e` with immediate
  /// effect: forward residual grows, reverse residual shrinks. The caller
  /// must restore conservation by cancelling the same amount on the other
  /// arcs of the path (warm-restart primitive; see IncrementalTransport).
  void cancel_flow(EdgeId e, double amount);

  /// Sets the capacity of forward arc `e` with immediate effect, keeping
  /// the flow already on the arc: the forward residual becomes
  /// capacity - flow (clamped at zero against rounding dust). The caller
  /// must have cancelled any flow above the new capacity first.
  void rebase_capacity(EdgeId e, double capacity);

  /// Overwrites the flow on forward arc `e` (0 <= flow <= capacity):
  /// reverse residual becomes `flow`, forward residual the remaining
  /// headroom. Used to transplant a flow onto a rebuilt network; the
  /// caller is responsible for conservation across arcs.
  void set_flow(EdgeId e, double flow);

  /// Clears all flow (residuals return to capacities).
  void reset_flow();

  /// Runs Dinic from `source` to `sink` on top of any existing flow and
  /// returns the *additional* flow pushed. Residual capacities below `eps`
  /// are treated as zero.
  double max_flow(NodeId source, NodeId sink, double eps = kDefaultEps);

  /// Nodes reachable from `from` in the residual graph (arcs with residual
  /// > eps). After a max_flow this gives the source side of a min cut when
  /// called with the source.
  std::vector<char> residual_reachable_from(NodeId from,
                                            double eps = kDefaultEps) const;

  /// Nodes that can reach `to` through the residual graph. After a
  /// max_flow, a job node with `true` here can still increase its
  /// throughput to the sink — the freezing test of progressive filling.
  std::vector<char> residual_can_reach(NodeId to,
                                       double eps = kDefaultEps) const;

  /// Total flow currently leaving `node` (sum over forward arcs minus
  /// incoming reverse flow is not needed for sources; this sums flow on
  /// arcs out of `node`).
  double outflow(NodeId node) const;

  static constexpr double kDefaultEps = 1e-9;

 private:
  bool bfs_levels(NodeId source, NodeId sink, double eps);
  double dfs_blocking(NodeId v, NodeId sink, double pushed, double eps);

  std::vector<std::vector<EdgeId>> adj_;
  std::vector<NodeId> to_;
  std::vector<double> residual_;  // remaining capacity per arc
  std::vector<double> orig_;      // original capacity of forward arcs (by pair)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace amf::flow
