#include "flow/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/metrics.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace amf::flow {

namespace {

// Dinic work counters. Phases and paths are accumulated locally inside
// max_flow and published with one shard add per call, so the inner loops
// stay free of registry traffic.
struct MaxFlowCounters {
  obs::Counter calls;
  obs::Counter phases;
  obs::Counter paths;
  MaxFlowCounters() {
    auto& reg = obs::Registry::global();
    calls = reg.counter("amf_flow_maxflow_calls",
                        "Dinic max-flow invocations");
    phases = reg.counter("amf_flow_maxflow_phases",
                         "BFS level-graph phases across all max-flow calls");
    paths = reg.counter("amf_flow_augmenting_paths",
                        "augmenting paths pushed across all max-flow calls");
  }
};

MaxFlowCounters& mf_counters() {
  static MaxFlowCounters counters;
  return counters;
}

}  // namespace

FlowNetwork::FlowNetwork(int node_count) {
  AMF_REQUIRE(node_count >= 0, "node count must be non-negative");
  adj_.resize(static_cast<std::size_t>(node_count));
}

NodeId FlowNetwork::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size()) - 1;
}

EdgeId FlowNetwork::add_edge(NodeId from, NodeId to, double capacity) {
  AMF_REQUIRE(from >= 0 && from < node_count(), "add_edge: bad source node");
  AMF_REQUIRE(to >= 0 && to < node_count(), "add_edge: bad target node");
  AMF_REQUIRE(capacity >= 0.0, "add_edge: negative capacity");
  EdgeId id = static_cast<EdgeId>(to_.size());
  to_.push_back(to);
  residual_.push_back(capacity);
  adj_[static_cast<std::size_t>(from)].push_back(id);
  to_.push_back(from);
  residual_.push_back(0.0);
  adj_[static_cast<std::size_t>(to)].push_back(id + 1);
  orig_.push_back(capacity);
  return id;
}

double FlowNetwork::flow(EdgeId e) const {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "flow: not a forward arc id");
  return residual_[static_cast<std::size_t>(e) + 1];
}

double FlowNetwork::capacity(EdgeId e) const {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "capacity: not a forward arc id");
  return orig_[static_cast<std::size_t>(e) / 2];
}

void FlowNetwork::set_capacity(EdgeId e, double capacity) {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "set_capacity: not a forward arc id");
  AMF_REQUIRE(capacity >= 0.0, "set_capacity: negative capacity");
  orig_[static_cast<std::size_t>(e) / 2] = capacity;
}

void FlowNetwork::raise_capacity(EdgeId e, double capacity) {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "raise_capacity: not a forward arc id");
  double& orig = orig_[static_cast<std::size_t>(e) / 2];
  AMF_REQUIRE(capacity >= orig, "raise_capacity: capacity decrease");
  residual_[static_cast<std::size_t>(e)] += capacity - orig;
  orig = capacity;
}

void FlowNetwork::cancel_flow(EdgeId e, double amount) {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "cancel_flow: not a forward arc id");
  AMF_REQUIRE(amount >= 0.0, "cancel_flow: negative amount");
  residual_[static_cast<std::size_t>(e)] += amount;
  residual_[static_cast<std::size_t>(e) + 1] -= amount;
}

void FlowNetwork::rebase_capacity(EdgeId e, double capacity) {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "rebase_capacity: not a forward arc id");
  AMF_REQUIRE(capacity >= 0.0, "rebase_capacity: negative capacity");
  orig_[static_cast<std::size_t>(e) / 2] = capacity;
  residual_[static_cast<std::size_t>(e)] =
      std::max(0.0, capacity - residual_[static_cast<std::size_t>(e) + 1]);
}

void FlowNetwork::set_flow(EdgeId e, double flow) {
  AMF_REQUIRE(e >= 0 && e < static_cast<EdgeId>(to_.size()) && (e % 2) == 0,
              "set_flow: not a forward arc id");
  AMF_REQUIRE(flow >= 0.0, "set_flow: negative flow");
  residual_[static_cast<std::size_t>(e)] =
      std::max(0.0, orig_[static_cast<std::size_t>(e) / 2] - flow);
  residual_[static_cast<std::size_t>(e) + 1] = flow;
}

void FlowNetwork::reset_flow() {
  for (std::size_t e = 0; e < to_.size(); e += 2) {
    residual_[e] = orig_[e / 2];
    residual_[e + 1] = 0.0;
  }
}

bool FlowNetwork::bfs_levels(NodeId source, NodeId sink, double eps) {
  level_.assign(adj_.size(), -1);
  std::queue<NodeId> q;
  level_[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (EdgeId e : adj_[static_cast<std::size_t>(v)]) {
      NodeId u = to_[static_cast<std::size_t>(e)];
      if (level_[static_cast<std::size_t>(u)] < 0 &&
          residual_[static_cast<std::size_t>(e)] > eps) {
        level_[static_cast<std::size_t>(u)] =
            level_[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

double FlowNetwork::dfs_blocking(NodeId v, NodeId sink, double pushed,
                                 double eps) {
  if (v == sink) return pushed;
  auto& it = iter_[static_cast<std::size_t>(v)];
  auto& edges = adj_[static_cast<std::size_t>(v)];
  for (; it < edges.size(); ++it) {
    EdgeId e = edges[it];
    NodeId u = to_[static_cast<std::size_t>(e)];
    if (residual_[static_cast<std::size_t>(e)] > eps &&
        level_[static_cast<std::size_t>(u)] ==
            level_[static_cast<std::size_t>(v)] + 1) {
      double d = dfs_blocking(
          u, sink, std::min(pushed, residual_[static_cast<std::size_t>(e)]),
          eps);
      if (d > eps) {
        residual_[static_cast<std::size_t>(e)] -= d;
        residual_[static_cast<std::size_t>(e ^ 1)] += d;
        return d;
      }
    }
  }
  return 0.0;
}

double FlowNetwork::max_flow(NodeId source, NodeId sink, double eps) {
  AMF_REQUIRE(source >= 0 && source < node_count(), "max_flow: bad source");
  AMF_REQUIRE(sink >= 0 && sink < node_count(), "max_flow: bad sink");
  AMF_REQUIRE(source != sink, "max_flow: source == sink");
  double total = 0.0;
  long long phases = 0;
  long long paths = 0;
  // An ambient stop token bounds even one oversized max flow: polled
  // between blocking-flow phases (path augmentations are atomic), an
  // interrupted call returns a valid conservative flow that callers
  // observe as unsaturated. No ambient token installed = no clock reads.
  const util::StopToken* stop = util::ambient_stop();
  while (!(stop != nullptr && stop->stop_requested()) &&
         bfs_levels(source, sink, eps)) {
    ++phases;
    iter_.assign(adj_.size(), 0);
    for (;;) {
      double pushed = dfs_blocking(
          source, sink, std::numeric_limits<double>::infinity(), eps);
      if (pushed <= eps) break;
      total += pushed;
      ++paths;
    }
  }
  MaxFlowCounters& counters = mf_counters();
  counters.calls.add(1);
  counters.phases.add(phases);
  counters.paths.add(paths);
  return total;
}

std::vector<char> FlowNetwork::residual_reachable_from(NodeId from,
                                                       double eps) const {
  AMF_REQUIRE(from >= 0 && from < node_count(), "bad node");
  std::vector<char> seen(adj_.size(), 0);
  std::queue<NodeId> q;
  seen[static_cast<std::size_t>(from)] = 1;
  q.push(from);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (EdgeId e : adj_[static_cast<std::size_t>(v)]) {
      NodeId u = to_[static_cast<std::size_t>(e)];
      if (!seen[static_cast<std::size_t>(u)] &&
          residual_[static_cast<std::size_t>(e)] > eps) {
        seen[static_cast<std::size_t>(u)] = 1;
        q.push(u);
      }
    }
  }
  return seen;
}

std::vector<char> FlowNetwork::residual_can_reach(NodeId to,
                                                  double eps) const {
  AMF_REQUIRE(to >= 0 && to < node_count(), "bad node");
  // Reverse BFS: node v can reach `to` iff some residual arc v->u exists
  // with u already known to reach `to`. We walk arcs backwards: from node
  // u, scan its incident arcs; arc e incident to u with to_[e^1] == u means
  // e starts at u... simpler: for node u, each incident arc id `a` in
  // adj_[u] points u -> to_[a]; the arc arriving INTO u from v is the pair
  // of some arc in adj_[u] (its reverse). residual on arc v->u is
  // residual_[a ^ 1] where a in adj_[u] and to_[a] == v.
  std::vector<char> seen(adj_.size(), 0);
  std::queue<NodeId> q;
  seen[static_cast<std::size_t>(to)] = 1;
  q.push(to);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (EdgeId a : adj_[static_cast<std::size_t>(u)]) {
      NodeId v = to_[static_cast<std::size_t>(a)];
      // Arc (a ^ 1) runs v -> u; usable if it has residual capacity.
      if (!seen[static_cast<std::size_t>(v)] &&
          residual_[static_cast<std::size_t>(a ^ 1)] > eps) {
        seen[static_cast<std::size_t>(v)] = 1;
        q.push(v);
      }
    }
  }
  return seen;
}

double FlowNetwork::outflow(NodeId node) const {
  AMF_REQUIRE(node >= 0 && node < node_count(), "bad node");
  double sum = 0.0;
  for (EdgeId e : adj_[static_cast<std::size_t>(node)]) {
    if ((e % 2) == 0) sum += flow(e);
  }
  return sum;
}

}  // namespace amf::flow
