// slo.hpp — rolling SLO windows computed from registry snapshots.
//
// An SloTracker watches three already-registered metrics — a latency
// histogram, a "served" counter, and a "shed" counter — and keeps a
// fixed-size ring of per-window deltas between successive snapshots.
// Each tick() closes one window, so the caller's tick period defines the
// window width; no extra hot-path instrumentation is needed, the tracker
// reads the same counters the hot path already maintains.
//
// From the ring it derives:
//   * sliding p50/p99 latency over the whole ring (log-bucket
//     interpolation, same buckets as obs::Histogram);
//   * shed rate = sheds / (served + sheds) over the ring;
//   * multi-window burn rate: bad-event fraction divided by the error
//     budget, over a fast horizon (last `fast_windows` windows) and the
//     slow horizon (whole ring).  A budget-based alert fires when BOTH
//     are high — the classic multi-window multi-burn-rate rule.
//
// Results are republished as gauges (`<prefix>_p99_ms`, ...) so the
// Prometheus endpoint exports them with no extra wiring, and as JSON for
// the /slo endpoint.  All entry points are thread-safe: a ticker thread
// calls tick() while HTTP handlers call report()/to_json().
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace amf::obs {

struct SloConfig {
  /// Histogram the latency quantiles are computed from.
  std::string latency_metric = "amf_svc_turnaround_ms";
  /// Counter of successfully served requests (good events).
  std::string served_counter = "amf_svc_solves_served_total";
  /// Counter of load-shed / rejected requests (bad events).
  std::string shed_counter = "amf_svc_rejects_total";
  /// Nominal window width in seconds (the caller's tick period); only
  /// used for reporting horizons, not measured internally.
  double window_s = 10.0;
  /// Ring size: the slow horizon covers `windows * window_s` seconds.
  std::size_t windows = 30;
  /// Fast burn-rate horizon, in windows (must be <= windows).
  std::size_t fast_windows = 3;
  /// Latency objective: samples above this count against the budget.
  double p99_target_ms = 50.0;
  /// Allowed bad-event fraction (sheds + slow requests). Burn rate 1.0
  /// means the budget is being consumed exactly at the sustainable rate.
  double error_budget = 0.01;
  /// Prefix for the republished gauges.
  std::string gauge_prefix = "amf_svc_slo";
};

class SloTracker {
 public:
  /// Registers the output gauges on `reg` immediately; throws
  /// util::ContractError on nonsensical config (windows == 0, budget
  /// <= 0, fast_windows > windows).
  SloTracker(Registry* reg, SloConfig cfg);

  /// Closes one window: snapshots the registry, diffs against the last
  /// cumulative values, pushes the delta into the ring and republishes
  /// the derived gauges.
  void tick();
  /// Same, from a caller-provided snapshot (deterministic tests).
  void tick(const Snapshot& snap);

  struct Report {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double shed_rate = 0.0;
    double burn_rate_fast = 0.0;
    double burn_rate_slow = 0.0;
    std::uint64_t served = 0;   ///< good events over the ring
    std::uint64_t shed = 0;     ///< bad (shed) events over the ring
    std::uint64_t samples = 0;  ///< latency samples over the ring
    std::size_t windows_filled = 0;
    double horizon_s = 0.0;  ///< windows_filled * window_s
  };

  /// Derived view over the currently filled windows.
  Report report() const;
  /// JSON object for the /slo endpoint: the report plus the config
  /// targets, so a scraper can judge pass/fail without extra context.
  std::string to_json() const;

  const SloConfig& config() const { return cfg_; }

 private:
  struct Window {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t served = 0;
    std::uint64_t shed = 0;
  };

  Report report_locked() const;
  void publish(const Report& r);

  SloConfig cfg_;
  Registry* reg_ = nullptr;
  Gauge g_p50_, g_p99_, g_shed_rate_, g_burn_fast_, g_burn_slow_,
      g_windows_;

  mutable std::mutex mu_;
  std::vector<Window> ring_;
  std::size_t next_ = 0;            ///< ring slot the next tick writes
  std::size_t filled_ = 0;          ///< min(total ticks, ring size)
  bool have_baseline_ = false;      ///< first tick only sets the baseline
  Window cumulative_;               ///< last-seen cumulative values
};

/// Interpolated quantile (q in [0,1]) from log-scale histogram bucket
/// counts (obs::Histogram bucket layout).  Returns 0 when empty; samples
/// in the +inf bucket clamp to the largest finite bound.  Exposed for
/// tests and ad-hoc tooling.
double bucket_quantile(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets, double q);

}  // namespace amf::obs
