#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace amf::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  double back = 0.0;
  if (std::sscanf(buf, "%lf", &back) == 1 && back == v)
    return std::string(buf);
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

/// Latency samples at or above `target_ms`, counted conservatively: the
/// whole bucket containing the target is treated as good (its samples
/// may be below the target), buckets strictly above it as bad.
std::uint64_t samples_above(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets,
    double target_ms) {
  const std::size_t cut = Histogram::bucket_index(target_ms);
  std::uint64_t bad = 0;
  for (std::size_t i = cut + 1; i < kHistogramBuckets; ++i)
    bad += buckets[i];
  return bad;
}

}  // namespace

double bucket_quantile(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double hi = Histogram::bucket_bound(i);
    if (std::isinf(hi)) return Histogram::bucket_bound(i - 1);
    const double lo = i == 0 ? 0.0 : Histogram::bucket_bound(i - 1);
    const double frac =
        (rank - below) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return Histogram::bucket_bound(kHistogramBuckets - 2);
}

SloTracker::SloTracker(Registry* reg, SloConfig cfg)
    : cfg_(std::move(cfg)), reg_(reg) {
  if (reg_ == nullptr) throw util::ContractError("SloTracker: null registry");
  if (cfg_.windows == 0)
    throw util::ContractError("SloTracker: windows must be >= 1");
  if (cfg_.fast_windows == 0 || cfg_.fast_windows > cfg_.windows)
    throw util::ContractError(
        "SloTracker: fast_windows must be in [1, windows]");
  if (cfg_.error_budget <= 0.0)
    throw util::ContractError("SloTracker: error_budget must be > 0");
  ring_.resize(cfg_.windows);
  const std::string& p = cfg_.gauge_prefix;
  g_p50_ = reg_->gauge(p + "_p50_ms",
                       "sliding-window median latency over the SLO ring");
  g_p99_ = reg_->gauge(p + "_p99_ms",
                       "sliding-window p99 latency over the SLO ring");
  g_shed_rate_ =
      reg_->gauge(p + "_shed_rate",
                  "shed fraction (sheds / requests) over the SLO ring");
  g_burn_fast_ = reg_->gauge(
      p + "_burn_rate_fast",
      "error-budget burn rate over the fast horizon (1.0 = sustainable)");
  g_burn_slow_ = reg_->gauge(
      p + "_burn_rate_slow",
      "error-budget burn rate over the full SLO ring (1.0 = sustainable)");
  g_windows_ =
      reg_->gauge(p + "_windows", "SLO windows currently holding data");
}

void SloTracker::tick() { tick(reg_->snapshot()); }

void SloTracker::tick(const Snapshot& snap) {
  Window now;
  if (const HistogramSample* h = snap.histogram(cfg_.latency_metric))
    now.buckets = h->buckets;
  now.served =
      static_cast<std::uint64_t>(std::max<long long>(
          0, snap.counter(cfg_.served_counter)));
  now.shed = static_cast<std::uint64_t>(
      std::max<long long>(0, snap.counter(cfg_.shed_counter)));

  Report r;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!have_baseline_) {
      // First observation: nothing to diff against, just set the baseline
      // so the first real window is not polluted by pre-start traffic.
      cumulative_ = now;
      have_baseline_ = true;
      r = report_locked();
    } else {
      Window delta;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        // Counters are monotone, but a registry reset (tests) may lower
        // them; clamp instead of underflowing.
        delta.buckets[i] = now.buckets[i] >= cumulative_.buckets[i]
                               ? now.buckets[i] - cumulative_.buckets[i]
                               : 0;
      }
      delta.served =
          now.served >= cumulative_.served ? now.served - cumulative_.served
                                           : 0;
      delta.shed =
          now.shed >= cumulative_.shed ? now.shed - cumulative_.shed : 0;
      cumulative_ = now;
      ring_[next_] = delta;
      next_ = (next_ + 1) % ring_.size();
      filled_ = std::min(filled_ + 1, ring_.size());
      r = report_locked();
    }
  }
  publish(r);
}

SloTracker::Report SloTracker::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_locked();
}

SloTracker::Report SloTracker::report_locked() const {
  Report r;
  r.windows_filled = filled_;
  r.horizon_s = static_cast<double>(filled_) * cfg_.window_s;
  if (filled_ == 0) return r;

  std::array<std::uint64_t, kHistogramBuckets> merged{};
  std::uint64_t fast_bad = 0, fast_total = 0;
  for (std::size_t k = 0; k < filled_; ++k) {
    // Walk backwards from the most recently written slot.
    const std::size_t idx =
        (next_ + ring_.size() - 1 - k) % ring_.size();
    const Window& w = ring_[idx];
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      merged[i] += w.buckets[i];
    r.served += w.served;
    r.shed += w.shed;
    if (k < cfg_.fast_windows) {
      fast_bad += w.shed + samples_above(w.buckets, cfg_.p99_target_ms);
      fast_total += w.served + w.shed;
    }
  }
  for (std::uint64_t b : merged) r.samples += b;
  r.p50_ms = bucket_quantile(merged, 0.50);
  r.p99_ms = bucket_quantile(merged, 0.99);

  const std::uint64_t total = r.served + r.shed;
  r.shed_rate =
      total > 0 ? static_cast<double>(r.shed) / static_cast<double>(total)
                : 0.0;
  const std::uint64_t slow_bad =
      r.shed + samples_above(merged, cfg_.p99_target_ms);
  r.burn_rate_slow =
      total > 0 ? (static_cast<double>(slow_bad) /
                   static_cast<double>(total)) /
                      cfg_.error_budget
                : 0.0;
  r.burn_rate_fast =
      fast_total > 0 ? (static_cast<double>(fast_bad) /
                        static_cast<double>(fast_total)) /
                           cfg_.error_budget
                     : 0.0;
  return r;
}

void SloTracker::publish(const Report& r) {
  g_p50_.set(r.p50_ms);
  g_p99_.set(r.p99_ms);
  g_shed_rate_.set(r.shed_rate);
  g_burn_fast_.set(r.burn_rate_fast);
  g_burn_slow_.set(r.burn_rate_slow);
  g_windows_.set(static_cast<double>(r.windows_filled));
}

std::string SloTracker::to_json() const {
  const Report r = report();
  std::string out = "{";
  out += "\"p50_ms\":" + fmt_double(r.p50_ms);
  out += ",\"p99_ms\":" + fmt_double(r.p99_ms);
  out += ",\"shed_rate\":" + fmt_double(r.shed_rate);
  out += ",\"burn_rate_fast\":" + fmt_double(r.burn_rate_fast);
  out += ",\"burn_rate_slow\":" + fmt_double(r.burn_rate_slow);
  out += ",\"served\":" + std::to_string(r.served);
  out += ",\"shed\":" + std::to_string(r.shed);
  out += ",\"samples\":" + std::to_string(r.samples);
  out += ",\"windows\":" + std::to_string(r.windows_filled);
  out += ",\"horizon_s\":" + fmt_double(r.horizon_s);
  out += ",\"p99_target_ms\":" + fmt_double(cfg_.p99_target_ms);
  out += ",\"error_budget\":" + fmt_double(cfg_.error_budget);
  out += ",\"window_s\":" + fmt_double(cfg_.window_s);
  out += "}\n";
  return out;
}

}  // namespace amf::obs
