#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace amf::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_uid{1};

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Shard

Shard::~Shard() {
  for (auto& slot : counter_chunks_) delete slot.load(kRelaxed);
  for (auto& slot : hist_chunks_) delete slot.load(kRelaxed);
}

namespace {

/// Loads chunk `idx` from `slots`, allocating it with a CAS race if missing.
template <typename Chunk, std::size_t N>
Chunk& ensure_chunk(std::array<std::atomic<Chunk*>, N>& slots,
                    std::size_t idx) {
  AMF_ASSERT(idx < N, "metric slot exceeds shard chunk capacity");
  Chunk* chunk = slots[idx].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    auto* fresh = new Chunk();
    if (slots[idx].compare_exchange_strong(chunk, fresh,
                                           std::memory_order_acq_rel)) {
      chunk = fresh;
    } else {
      delete fresh;  // another writer won the race
    }
  }
  return *chunk;
}

}  // namespace

std::atomic<long long>& Shard::counter_cell(std::uint32_t slot) {
  auto& chunk =
      ensure_chunk(counter_chunks_, slot / detail::kCounterChunkSize);
  return chunk.cells[slot % detail::kCounterChunkSize];
}

const std::atomic<long long>* Shard::counter_cell_if(
    std::uint32_t slot) const {
  const auto* chunk = counter_chunks_[slot / detail::kCounterChunkSize].load(
      std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk->cells[slot % detail::kCounterChunkSize];
}

detail::HistCell& Shard::hist_cell(std::uint32_t slot) {
  auto& chunk = ensure_chunk(hist_chunks_, slot / detail::kHistChunkSize);
  return chunk.cells[slot % detail::kHistChunkSize];
}

const detail::HistCell* Shard::hist_cell_if(std::uint32_t slot) const {
  const auto* chunk =
      hist_chunks_[slot / detail::kHistChunkSize].load(
          std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk->cells[slot % detail::kHistChunkSize];
}

// ---------------------------------------------------------------------------
// Handles

void Counter::add(long long delta) {
  if (reg_ == nullptr) return;
  add_to(reg_->local_shard(), delta);
}

void Counter::add_to(Shard& shard, long long delta) const {
  if (reg_ == nullptr) return;
  shard.counter_cell(slot_).fetch_add(delta, kRelaxed);
}

long long Counter::value_in(const Shard& shard) const {
  if (reg_ == nullptr) return 0;
  const auto* cell = shard.counter_cell_if(slot_);
  return cell == nullptr ? 0 : cell->load(kRelaxed);
}

long long Counter::value() const {
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(reg_->mu_);
  return reg_->counter_value_locked(slot_);
}

void Gauge::set(double v) {
  if (cell_ != nullptr) cell_->store(v, kRelaxed);
}

double Gauge::value() const {
  return cell_ == nullptr ? 0.0 : cell_->load(kRelaxed);
}

double Histogram::bucket_bound(std::size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return kScale * std::ldexp(1.0, static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double x) {
  if (!(x > kScale)) return 0;  // also catches NaN and non-positive values
  // x = m * 2^e with m in [0.5, 1), so log2(x / kScale) lies in (e-1, e]
  // and bucket e (bound kScale * 2^e) is the first bound >= x — except
  // when x sits exactly on bound e-1 (m == 0.5): bounds are inclusive,
  // matching Prometheus `le` semantics. The division is exact for samples
  // on a bound (kScale * 2^i / kScale == 2^i), so the equality is reliable.
  int e = 0;
  const double m = std::frexp(x / kScale, &e);
  if (e <= 0) return 0;
  std::size_t idx = static_cast<std::size_t>(e);
  if (m == 0.5) --idx;
  return std::min(idx, kNumBuckets - 1);
}

void Histogram::observe(double x) {
  if (reg_ == nullptr) return;
  observe_in(reg_->local_shard(), x);
}

void Histogram::observe_in(Shard& shard, double x) const {
  if (reg_ == nullptr) return;
  detail::HistCell& c = shard.hist_cell(slot_);
  c.buckets[bucket_index(x)].fetch_add(1, kRelaxed);
  // Single-writer Welford update (only the shard owner observes into it);
  // atomics make concurrent scrape reads tear-free.
  const std::uint64_t n = c.n.load(kRelaxed) + 1;
  double mean = c.mean.load(kRelaxed);
  double m2 = c.m2.load(kRelaxed);
  const double delta = x - mean;
  mean += delta / static_cast<double>(n);
  m2 += delta * (x - mean);
  c.mean.store(mean, kRelaxed);
  c.m2.store(m2, kRelaxed);
  if (n == 1) {
    c.min.store(x, kRelaxed);
    c.max.store(x, kRelaxed);
  } else {
    if (x < c.min.load(kRelaxed)) c.min.store(x, kRelaxed);
    if (x > c.max.load(kRelaxed)) c.max.store(x, kRelaxed);
  }
  c.n.store(n, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Snapshot lookups

namespace {

template <typename Vec>
auto find_sample(const Vec& v, std::string_view name) -> decltype(&v[0]) {
  auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& s, std::string_view n) { return s.name < n; });
  if (it == v.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace

long long Snapshot::counter(std::string_view name) const {
  const auto* s = find_sample(counters, name);
  return s == nullptr ? 0 : s->value;
}

double Snapshot::gauge(std::string_view name) const {
  const auto* s = find_sample(gauges, name);
  return s == nullptr ? 0.0 : s->value;
}

const HistogramSample* Snapshot::histogram(std::string_view name) const {
  return find_sample(histograms, name);
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() : uid_(g_next_registry_uid.fetch_add(1, kRelaxed)) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: pool threads may record into their shards after
  // static destructors start running.
  static Registry* g = new Registry();
  return *g;
}

std::uint32_t Registry::register_metric(std::string_view name,
                                        MetricKind kind,
                                        std::string_view help) {
  AMF_REQUIRE(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const MetricInfo& info = metrics_[it->second];
    AMF_REQUIRE(info.kind == kind,
                "metric '" + info.name + "' already registered as " +
                    std::string(to_string(info.kind)) + ", requested " +
                    std::string(to_string(kind)));
    return info.slot;
  }
  MetricInfo info;
  info.name = std::string(name);
  info.help = std::string(help);
  info.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      info.slot = n_counters_++;
      retired_counters_.push_back(0);
      break;
    case MetricKind::kGauge:
      info.slot = n_gauges_++;
      gauges_.push_back(std::make_unique<std::atomic<double>>(0.0));
      break;
    case MetricKind::kHistogram:
      info.slot = n_hists_++;
      retired_hists_.emplace_back();
      break;
  }
  AMF_REQUIRE(info.slot < detail::kMaxChunks *
                              (kind == MetricKind::kHistogram
                                   ? detail::kHistChunkSize
                                   : detail::kCounterChunkSize),
              "metric registry full for kind " +
                  std::string(to_string(kind)));
  by_name_.emplace(info.name, metrics_.size());
  metrics_.push_back(std::move(info));
  return metrics_.back().slot;
}

Counter Registry::counter(std::string_view name, std::string_view help) {
  return Counter(this, register_metric(name, MetricKind::kCounter, help));
}

Gauge Registry::gauge(std::string_view name, std::string_view help) {
  std::uint32_t slot = register_metric(name, MetricKind::kGauge, help);
  std::lock_guard<std::mutex> lock(mu_);
  return Gauge(gauges_[slot].get());
}

Histogram Registry::histogram(std::string_view name, std::string_view help) {
  return Histogram(this, register_metric(name, MetricKind::kHistogram, help));
}

std::shared_ptr<Shard> Registry::new_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  auto shard = std::make_shared<Shard>(static_cast<int>(shards_.size()));
  shards_.push_back(shard);
  return shard;
}

Shard& Registry::local_shard() {
  struct CacheEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.uid == uid_) return *e.shard;
  }
  // Slow path: first touch of this registry from this thread.  The registry
  // co-owns the shard, so the raw pointer stays valid for the registry's
  // lifetime; uid keying means a dead registry's entries can never match.
  std::shared_ptr<Shard> shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shard = std::make_shared<Shard>(static_cast<int>(shards_.size()));
    shards_.push_back(shard);
  }
  cache.push_back(CacheEntry{uid_, shard.get()});
  return *shard;
}

long long Registry::counter_value_locked(std::uint32_t slot) const {
  long long total = slot < retired_counters_.size()
                        ? retired_counters_[slot]
                        : 0;
  for (const auto& shard : shards_) {
    const auto* cell = shard->counter_cell_if(slot);
    if (cell != nullptr) total += cell->load(kRelaxed);
  }
  return total;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const MetricInfo& info : metrics_) {
    switch (info.kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(CounterSample{
            info.name, counter_value_locked(info.slot), info.help});
        break;
      case MetricKind::kGauge:
        snap.gauges.push_back(GaugeSample{
            info.name, gauges_[info.slot]->load(kRelaxed), info.help});
        break;
      case MetricKind::kHistogram: {
        HistogramSample sample;
        sample.name = info.name;
        sample.help = info.help;
        const HistBase& base = retired_hists_[info.slot];
        sample.buckets = base.buckets;
        sample.stats = base.stats;
        for (const auto& shard : shards_) {
          const detail::HistCell* cell = shard->hist_cell_if(info.slot);
          if (cell == nullptr) continue;
          const std::uint64_t n = cell->n.load(std::memory_order_acquire);
          if (n == 0) continue;
          for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            sample.buckets[b] += cell->buckets[b].load(kRelaxed);
          sample.stats.merge(util::Accumulator::from_moments(
              static_cast<std::size_t>(n), cell->mean.load(kRelaxed),
              cell->m2.load(kRelaxed), cell->min.load(kRelaxed),
              cell->max.load(kRelaxed)));
        }
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::retire(Shard& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  drain_shard_locked(shard, /*fold=*/true);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(retired_counters_.begin(), retired_counters_.end(), 0);
  for (HistBase& base : retired_hists_) base = HistBase{};
  for (auto& g : gauges_) g->store(0.0, kRelaxed);
  for (const auto& shard : shards_) drain_shard_locked(*shard, /*fold=*/false);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void Registry::drain_shard_locked(Shard& shard, bool fold) {
  for (std::size_t chunk = 0; chunk < detail::kMaxChunks; ++chunk) {
    detail::CounterChunk* cc =
        shard.counter_chunks_[chunk].load(std::memory_order_acquire);
    if (cc != nullptr) {
      for (std::size_t i = 0; i < detail::kCounterChunkSize; ++i) {
        long long v = cc->cells[i].exchange(0, kRelaxed);
        if (v != 0 && fold) {
          std::size_t slot = chunk * detail::kCounterChunkSize + i;
          if (slot < retired_counters_.size()) retired_counters_[slot] += v;
        }
      }
    }
    detail::HistChunk* hc =
        shard.hist_chunks_[chunk].load(std::memory_order_acquire);
    if (hc != nullptr) {
      for (std::size_t i = 0; i < detail::kHistChunkSize; ++i) {
        detail::HistCell& cell = hc->cells[i];
        const std::uint64_t n = cell.n.exchange(0, kRelaxed);
        std::size_t slot = chunk * detail::kHistChunkSize + i;
        if (n != 0 && fold && slot < retired_hists_.size()) {
          HistBase& base = retired_hists_[slot];
          base.stats.merge(util::Accumulator::from_moments(
              static_cast<std::size_t>(n), cell.mean.load(kRelaxed),
              cell.m2.load(kRelaxed), cell.min.load(kRelaxed),
              cell.max.load(kRelaxed)));
          for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            base.buckets[b] += cell.buckets[b].exchange(0, kRelaxed);
        } else {
          for (auto& b : cell.buckets) b.store(0, kRelaxed);
        }
        cell.mean.store(0.0, kRelaxed);
        cell.m2.store(0.0, kRelaxed);
        cell.min.store(0.0, kRelaxed);
        cell.max.store(0.0, kRelaxed);
      }
    }
  }
}

}  // namespace amf::obs
