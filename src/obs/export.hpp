// export.hpp — serializers for telemetry: Chrome trace-event JSON for spans
// (loadable in Perfetto / chrome://tracing), and Prometheus text exposition
// + a JSON snapshot for metrics.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace amf::obs {

/// Chrome trace-event JSON object ({"traceEvents": [...]}).  Duration spans
/// become "ph":"X" complete events (ts/dur in microseconds); instants become
/// "ph":"i" global markers.  Events keep the order they were given — pass
/// Tracer::events()/drain() output, which is sorted parent-first.
std::string to_chrome_trace(std::span<const SpanEvent> events);

/// Prometheus text exposition format (one # TYPE line per metric; histogram
/// buckets are cumulative with the standard le labels and _sum/_count).
std::string to_prometheus_text(const Snapshot& snap);

/// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// with per-histogram count/sum/mean/stddev/min/max and non-cumulative
/// bucket counts.  `extra_json` (optional) is spliced in verbatim as one
/// additional top-level member, e.g. "\"events\": [...]".
std::string to_metrics_json(const Snapshot& snap,
                            std::string_view extra_json = {});

/// Writes content to path; returns false (no throw) on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace amf::obs
