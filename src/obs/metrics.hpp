// metrics.hpp — thread-safe metric registry: monotonic counters, gauges, and
// fixed-bucket log-scale histograms.
//
// Design: the hot path (Counter::add, Histogram::observe) touches only a
// per-thread shard — a chunked array of atomics owned by the calling thread —
// so concurrent writers never contend.  A scrape (Registry::snapshot) merges
// every shard under the registration mutex.  Histogram moments are kept as
// raw Welford fields per shard and merged exactly with
// util::Accumulator::from_moments + merge, so a multi-threaded run produces
// the same count/mean/variance as a single-threaded one regardless of
// interleaving.
//
// Shards come in two flavours:
//   * thread shards — created lazily on a thread's first write through a
//     handle (Registry::local_shard), cached in TLS keyed by a registry uid
//     so a test-local registry that dies never leaves a matching stale entry;
//   * instance shards — created explicitly (Registry::new_shard) for objects
//     like core::RobustAllocator that need exact per-instance counts
//     (Counter::add_to / value_in) while still feeding the global scrape.
//
// Retiring or resetting a shard folds its values into a registry-level base
// first, so globally scraped counters stay monotonic across instance resets.
//
// The registry is always compiled in — only span tracing (span.hpp) honours
// the AMF_OBS_ENABLED kill switch — because fallback accounting and the
// bench gates depend on counters working in every build flavour.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace amf::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricKind kind);

/// Number of histogram buckets (log2-spaced; the last bucket is +inf).
inline constexpr std::size_t kHistogramBuckets = 40;

class Registry;
class Shard;

namespace detail {

inline constexpr std::size_t kCounterChunkSize = 64;
inline constexpr std::size_t kHistChunkSize = 8;
inline constexpr std::size_t kMaxChunks = 64;

struct CounterChunk {
  std::array<std::atomic<long long>, kCounterChunkSize> cells{};
};

/// One histogram's per-shard state.  Buckets are plain atomic counts; the
/// Welford moment fields are written only by the shard's owning thread and
/// read (racily but tear-free) by scrapers.
struct HistCell {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> n{0};
  std::atomic<double> mean{0.0};
  std::atomic<double> m2{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
};

struct HistChunk {
  std::array<HistCell, kHistChunkSize> cells{};
};

}  // namespace detail

/// Handle to a monotonic counter.  Cheap to copy; add() is lock-free.
class Counter {
 public:
  Counter() = default;
  /// Adds to the calling thread's shard of the owning registry.
  void add(long long delta = 1);
  /// Adds to an explicit (instance) shard instead of the thread shard.
  void add_to(Shard& shard, long long delta = 1) const;
  /// Exact value accumulated in one shard (per-instance view).
  long long value_in(const Shard& shard) const;
  /// Globally merged value (retired base + every live shard).
  long long value() const;
  bool valid() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Handle to a last-write-wins gauge (one central cell, no sharding).
class Gauge {
 public:
  Gauge() = default;
  void set(double v);
  double value() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Handle to a log-scale histogram.  Bucket i covers
/// (bucket_bound(i-1), bucket_bound(i)] with bounds kScale * 2^i; the last
/// bucket is +inf.  observe() also maintains Welford moments per shard.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = kHistogramBuckets;
  /// Smallest finite bucket bound; tuned for latencies in milliseconds.
  static constexpr double kScale = 1e-6;

  /// Upper bound of bucket i (inclusive); +inf for the last bucket.
  static double bucket_bound(std::size_t i);
  /// Index of the bucket a sample falls into.
  static std::size_t bucket_index(double x);

  Histogram() = default;
  void observe(double x);
  void observe_in(Shard& shard, double x) const;
  bool valid() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// One writer's slice of the registry's metric cells.  Chunks are allocated
/// on demand behind atomic pointers so a scrape can race with cell creation.
class Shard {
 public:
  explicit Shard(int ordinal) : ordinal_(ordinal) {}
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Registration order within the owning registry (stable thread id).
  int ordinal() const { return ordinal_; }

 private:
  friend class Registry;
  friend class Counter;
  friend class Histogram;

  std::atomic<long long>& counter_cell(std::uint32_t slot);
  /// Read-side lookup: nullptr when the chunk was never touched.
  const std::atomic<long long>* counter_cell_if(std::uint32_t slot) const;
  detail::HistCell& hist_cell(std::uint32_t slot);
  const detail::HistCell* hist_cell_if(std::uint32_t slot) const;

  std::array<std::atomic<detail::CounterChunk*>, detail::kMaxChunks>
      counter_chunks_{};
  std::array<std::atomic<detail::HistChunk*>, detail::kMaxChunks>
      hist_chunks_{};
  int ordinal_ = 0;
};

struct CounterSample {
  std::string name;
  long long value = 0;
  std::string help;  ///< registration help text (exporters emit # HELP)
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  std::string help;
};

struct HistogramSample {
  std::string name;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  util::Accumulator stats;
  std::string help;
};

/// Point-in-time merged view of a registry, sorted by metric name.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers; counters/gauges return 0 when the metric is absent.
  long long counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry.  Intentionally leaked so worker threads that
  /// outlive main() can still touch their shards during teardown.
  static Registry& global();

  /// Registration is idempotent by name; re-registering an existing name
  /// with a different kind throws util::ContractError.
  Counter counter(std::string_view name, std::string_view help = {});
  Gauge gauge(std::string_view name, std::string_view help = {});
  Histogram histogram(std::string_view name, std::string_view help = {});

  /// Creates an instance shard (e.g. one per RobustAllocator).  The registry
  /// co-owns it, so its values survive the instance and keep feeding scrapes.
  std::shared_ptr<Shard> new_shard();

  /// The calling thread's shard, created on first use.
  Shard& local_shard();

  /// Merged view: retired base + every shard, one entry per metric.
  Snapshot snapshot() const;

  /// Folds a shard's current values into the retired base and zeroes the
  /// shard.  Globally scraped totals are unchanged (monotonicity preserved);
  /// per-instance reads via value_in restart from zero.
  void retire(Shard& shard);

  /// Zeroes everything: retired bases, all shards, all gauges.  Metric
  /// registrations (names, handles) stay valid.
  void reset();

  /// Number of registered metrics.
  std::size_t size() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct MetricInfo {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;
  };

  struct HistBase {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    util::Accumulator stats;
  };

  std::uint32_t register_metric(std::string_view name, MetricKind kind,
                                std::string_view help);
  long long counter_value_locked(std::uint32_t slot) const;
  /// Zeroes one shard; when fold is true its values move to the retired
  /// bases first (so globally scraped totals are unchanged).
  void drain_shard_locked(Shard& shard, bool fold);

  mutable std::mutex mu_;
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::vector<std::unique_ptr<std::atomic<double>>> gauges_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::vector<long long> retired_counters_;
  std::vector<HistBase> retired_hists_;
  std::uint32_t n_counters_ = 0;
  std::uint32_t n_gauges_ = 0;
  std::uint32_t n_hists_ = 0;
  std::uint64_t uid_ = 0;
};

}  // namespace amf::obs
