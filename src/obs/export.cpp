#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace amf::obs {

namespace {

/// Shortest round-trip decimal for a double; never emits inf/nan (JSON has
/// no literal for them), callers must special-case those.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == v)
    return std::string(shorter);
  return std::string(buf);
}

void append_json_string(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Emits the Chrome flow event ("s"/"t"/"f") that binds a flow-linked span
/// into its request chain.  Flow events share one name/cat and are matched
/// by id; they must start inside the slice they bind to, so ts is the
/// span's own start.
void append_flow_event(std::string* out, const SpanEvent& ev) {
  const char* ph = nullptr;
  switch (ev.flow_phase) {
    case FlowPhase::kStart: ph = "s"; break;
    case FlowPhase::kStep: ph = "t"; break;
    case FlowPhase::kEnd: ph = "f"; break;
    case FlowPhase::kNone: return;
  }
  *out += ",\n{\"name\":\"amf/request\",\"cat\":\"amf.flow\",\"ph\":\"";
  *out += ph;
  *out += "\",\"id\":";
  *out += std::to_string(ev.flow);
  *out += ",\"pid\":1,\"tid\":";
  *out += std::to_string(ev.tid);
  *out += ",\"ts\":";
  *out += fmt_double(ev.ts_us);
  if (ev.flow_phase != FlowPhase::kStart) *out += ",\"bp\":\"e\"";
  *out += "}";
}

}  // namespace

std::string to_chrome_trace(std::span<const SpanEvent> events) {
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (ev.name == nullptr) continue;
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    append_json_string(&out, ev.name);
    out += ",\"cat\":\"amf\",\"ph\":\"";
    out += ev.instant() ? "i" : "X";
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    out += fmt_double(ev.ts_us);
    if (ev.instant()) {
      out += ",\"s\":\"g\"";
    } else {
      out += ",\"dur\":";
      out += fmt_double(ev.dur_us);
    }
    if (ev.arg_name != nullptr) {
      out += ",\"args\":{";
      append_json_string(&out, ev.arg_name);
      out += ":";
      out += std::to_string(ev.arg);
      out += "}";
    }
    out += "}";
    if (ev.flow != 0 && !ev.instant()) append_flow_event(&out, ev);
  }
  out += "]}\n";
  return out;
}

namespace {

std::string prometheus_name(std::string_view name) {
  // Exposition-format metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*;
  // anything else (dots, dashes, slashes from internal names) maps to '_'.
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (alpha || (digit && i > 0)) {
      out.push_back(c);
    } else if (digit) {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out.push_back('_');
  return out;
}

void append_help_line(std::string* out, const std::string& name,
                      const std::string& help) {
  if (help.empty()) return;
  *out += "# HELP " + name + " ";
  // HELP text escaping per the exposition format: backslash and newline.
  for (char c : help) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\n');
}

}  // namespace

std::string to_prometheus_text(const Snapshot& snap) {
  std::string out;
  for (const CounterSample& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    append_help_line(&out, name, c.help);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    append_help_line(&out, name, g.help);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + fmt_double(g.value) + "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    append_help_line(&out, name, h.help);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      cumulative += h.buckets[i];
      const double bound = Histogram::bucket_bound(i);
      const std::string le =
          std::isinf(bound) ? std::string("+Inf") : fmt_double(bound);
      out += name + "_bucket{le=\"" + le +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + fmt_double(h.stats.sum()) + "\n";
    out += name + "_count " + std::to_string(h.stats.count()) + "\n";
  }
  return out;
}

std::string to_metrics_json(const Snapshot& snap,
                            std::string_view extra_json) {
  std::string out = "{\n\"counters\": {";
  bool first = true;
  for (const CounterSample& c : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_json_string(&out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += "\n},\n\"gauges\": {";
  first = true;
  for (const GaugeSample& g : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_json_string(&out, g.name);
    out += ": " + fmt_double(g.value);
  }
  out += "\n},\n\"histograms\": {";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_json_string(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.stats.count());
    out += ", \"sum\": " + fmt_double(h.stats.sum());
    out += ", \"mean\": " + fmt_double(h.stats.mean());
    out += ", \"stddev\": " + fmt_double(h.stats.stddev());
    out += ", \"min\": " + fmt_double(h.stats.min());
    out += ", \"max\": " + fmt_double(h.stats.max());
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (i > 0) out += ",";
      const double bound = Histogram::bucket_bound(i);
      out += "{\"le\": ";
      if (std::isinf(bound)) {
        out += "\"+Inf\"";
      } else {
        out += fmt_double(bound);
      }
      out += ", \"count\": " + std::to_string(h.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += "\n}";
  if (!extra_json.empty()) {
    out += ",\n";
    out += extra_json;
  }
  out += "\n}\n";
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace amf::obs
