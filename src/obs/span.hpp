// span.hpp — scoped spans with a compile-time kill switch.
//
// Usage in instrumented code:
//
//   AMF_SPAN("flow/critical_level");                 // scoped duration event
//   AMF_SPAN_ARG("sim/event", "deltas", n_deltas);   // with one integer arg
//   AMF_INSTANT("sim/fault");                        // zero-duration marker
//
// With AMF_OBS_ENABLED=0 (CMake option) the macros expand to nothing, so
// instrumented hot loops carry zero cost.  With it on (the default), an
// inactive tracer costs one relaxed atomic load and branch per span; an
// active tracer appends to a preallocated per-thread ring (drop-newest when
// full, counted in dropped()).  Span names must be string literals (or
// otherwise outlive the tracer) — events store the pointer, not a copy.
//
// The tracer itself is always compiled so exporters and tools link in every
// build flavour; only the macro call sites vanish under the kill switch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#ifndef AMF_OBS_ENABLED
#define AMF_OBS_ENABLED 1
#endif

namespace amf::obs {

/// Position of a span inside a cross-thread flow (Chrome trace "flow
/// events"): the start span emits an `s` arrow head, steps emit `t`, and
/// the end span emits `f`, all bound by the flow id.  Perfetto then draws
/// one connected arrow chain through every span that carries the id.
enum class FlowPhase : std::uint8_t { kNone = 0, kStart, kStep, kEnd };

struct SpanEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr when the event carries no arg
  double ts_us = 0.0;              // start, microseconds since tracer epoch
  double dur_us = 0.0;             // duration; < 0 marks an instant event
  long long arg = 0;
  std::uint64_t flow = 0;  // flow (trace) id; 0 when not part of a flow
  FlowPhase flow_phase = FlowPhase::kNone;
  int tid = 0;  // ring registration order, stable per thread

  bool instant() const { return dur_us < 0.0; }
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by the AMF_SPAN macros.  Leaked on purpose
  /// (worker threads may close spans during static destruction).
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Per-thread ring capacity for rings created after this call.
  void set_capacity(std::size_t events_per_thread);

  /// Microseconds since the tracer's epoch (steady clock).
  double now_us() const;

  /// Appends a duration event; no-op when disabled.  A non-zero `flow`
  /// links the span into a cross-thread flow chain (see FlowPhase).
  void record(const char* name, const char* arg_name, double ts_us,
              double dur_us, long long arg, std::uint64_t flow = 0,
              FlowPhase flow_phase = FlowPhase::kNone);
  /// Appends an instant (zero-duration) marker; no-op when disabled.
  void instant(const char* name, const char* arg_name = nullptr,
               long long arg = 0);

  /// All buffered events merged across threads, sorted by (ts, longest
  /// first) so enclosing spans precede their children.  Call while writers
  /// are quiescent for an exact picture.
  std::vector<SpanEvent> events() const;
  /// events() + clear() in one step.
  std::vector<SpanEvent> drain();
  void clear();

  /// Events currently buffered / dropped because a ring filled up.
  std::size_t recorded() const;
  std::uint64_t dropped() const;

 private:
  struct Ring {
    explicit Ring(std::size_t cap, int tid_in)
        : buf(cap), tid(tid_in) {}
    std::vector<SpanEvent> buf;
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> dropped{0};
    int tid;
  };

  Ring& local_ring();
  void collect(std::vector<SpanEvent>* out) const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::uint64_t uid_;
};

/// RAII duration span; emitted on destruction when tracing was enabled at
/// construction.  set_arg() lets a loop publish a count known only at exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, nullptr, 0) {}
  ScopedSpan(const char* name, const char* arg_name, long long arg,
             std::uint64_t flow = 0, FlowPhase phase = FlowPhase::kNone) {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      name_ = name;
      arg_name_ = arg_name;
      arg_ = arg;
      ts_us_ = tracer.now_us();
      set_flow(flow, phase);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::global();
      tracer.record(name_, arg_name_, ts_us_, tracer.now_us() - ts_us_, arg_,
                    flow_, flow_phase_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(long long arg) { arg_ = arg; }
  /// Links this span into flow `id` (no-op when id is 0, so untraced
  /// requests fall out of the flow machinery without call-site checks).
  void set_flow(std::uint64_t id, FlowPhase phase) {
    flow_ = id;
    flow_phase_ = id != 0 ? phase : FlowPhase::kNone;
  }

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  double ts_us_ = 0.0;
  long long arg_ = 0;
  std::uint64_t flow_ = 0;
  FlowPhase flow_phase_ = FlowPhase::kNone;
};

}  // namespace amf::obs

#define AMF_OBS_CONCAT_INNER(a, b) a##b
#define AMF_OBS_CONCAT(a, b) AMF_OBS_CONCAT_INNER(a, b)

#if AMF_OBS_ENABLED
#define AMF_SPAN(name) \
  ::amf::obs::ScopedSpan AMF_OBS_CONCAT(amf_obs_span_, __LINE__)(name)
#define AMF_SPAN_ARG(name, key, value)                             \
  ::amf::obs::ScopedSpan AMF_OBS_CONCAT(amf_obs_span_, __LINE__)( \
      name, key, static_cast<long long>(value))
// Flow-linked spans: carry the request's wire trace id both as an arg
// (visible in the span's detail pane) and as a flow binding, so one
// Perfetto load shows arrows from the accept thread through the batch
// worker to the reply.  A zero id degrades to a plain AMF_SPAN_ARG.
#define AMF_SPAN_FLOW_START(name, id)                               \
  ::amf::obs::ScopedSpan AMF_OBS_CONCAT(amf_obs_span_, __LINE__)(   \
      name, "trace", static_cast<long long>(id),                    \
      static_cast<std::uint64_t>(id), ::amf::obs::FlowPhase::kStart)
#define AMF_SPAN_FLOW_STEP(name, id)                                \
  ::amf::obs::ScopedSpan AMF_OBS_CONCAT(amf_obs_span_, __LINE__)(   \
      name, "trace", static_cast<long long>(id),                    \
      static_cast<std::uint64_t>(id), ::amf::obs::FlowPhase::kStep)
#define AMF_SPAN_FLOW_END(name, id)                                 \
  ::amf::obs::ScopedSpan AMF_OBS_CONCAT(amf_obs_span_, __LINE__)(   \
      name, "trace", static_cast<long long>(id),                    \
      static_cast<std::uint64_t>(id), ::amf::obs::FlowPhase::kEnd)
#define AMF_INSTANT(name) ::amf::obs::Tracer::global().instant(name)
#define AMF_INSTANT_ARG(name, key, value) \
  ::amf::obs::Tracer::global().instant(name, key, \
                                       static_cast<long long>(value))
#else
#define AMF_SPAN(name) static_cast<void>(0)
#define AMF_SPAN_ARG(name, key, value) static_cast<void>(0)
#define AMF_SPAN_FLOW_START(name, id) static_cast<void>(0)
#define AMF_SPAN_FLOW_STEP(name, id) static_cast<void>(0)
#define AMF_SPAN_FLOW_END(name, id) static_cast<void>(0)
#define AMF_INSTANT(name) static_cast<void>(0)
#define AMF_INSTANT_ARG(name, key, value) static_cast<void>(0)
#endif
