#include "obs/span.hpp"

#include <algorithm>

namespace amf::obs {

namespace {

std::atomic<std::uint64_t> g_next_tracer_uid{1};

constexpr std::size_t kDefaultCapacity = 1 << 16;  // ~3 MiB per thread

}  // namespace

Tracer::Tracer()
    : capacity_(kDefaultCapacity),
      epoch_(std::chrono::steady_clock::now()),
      uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer* g = new Tracer();
  return *g;
}

void Tracer::set_capacity(std::size_t events_per_thread) {
  capacity_.store(std::max<std::size_t>(events_per_thread, 1),
                  std::memory_order_relaxed);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Ring& Tracer::local_ring() {
  struct CacheEntry {
    std::uint64_t uid;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.uid == uid_) return *e.ring;
  }
  std::shared_ptr<Ring> ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring = std::make_shared<Ring>(capacity_.load(std::memory_order_relaxed),
                                  static_cast<int>(rings_.size()));
    rings_.push_back(ring);
  }
  cache.push_back(CacheEntry{uid_, ring.get()});
  return *ring;
}

void Tracer::record(const char* name, const char* arg_name, double ts_us,
                    double dur_us, long long arg, std::uint64_t flow,
                    FlowPhase flow_phase) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  const std::size_t size = ring.size.load(std::memory_order_relaxed);
  if (size >= ring.buf.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanEvent& ev = ring.buf[size];
  ev.name = name;
  ev.arg_name = arg_name;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg = arg;
  ev.flow = flow;
  ev.flow_phase = flow != 0 ? flow_phase : FlowPhase::kNone;
  ev.tid = ring.tid;
  ring.size.store(size + 1, std::memory_order_release);
}

void Tracer::instant(const char* name, const char* arg_name, long long arg) {
  if (!enabled()) return;
  record(name, arg_name, now_us(), -1.0, arg);
}

void Tracer::collect(std::vector<SpanEvent>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    out->insert(out->end(), ring->buf.begin(),
                ring->buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  // Sort so that an enclosing span sorts before the spans it contains:
  // earlier start first, longer duration first on ties.
  std::sort(out->begin(), out->end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;
            });
}

std::vector<SpanEvent> Tracer::events() const {
  std::vector<SpanEvent> out;
  collect(&out);
  return out;
}

std::vector<SpanEvent> Tracer::drain() {
  std::vector<SpanEvent> out;
  collect(&out);
  clear();
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    ring->size.store(0, std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

std::size_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& ring : rings_)
    total += ring->size.load(std::memory_order_acquire);
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_)
    total += ring->dropped.load(std::memory_order_relaxed);
  return total;
}

}  // namespace amf::obs
