// amf.hpp — umbrella header: the full public API of the amf library.
//
// Quickstart:
//
//   amf::core::AllocationProblem problem(demands, capacities, workloads);
//   amf::core::AmfAllocator amf;
//   auto allocation = amf.allocate(problem);             // fair aggregates
//   amf::core::JctAddon addon;
//   auto fast = addon.optimize(problem, allocation);     // same aggregates,
//                                                        // better JCTs
//
// See examples/quickstart.cpp for a guided tour.
#pragma once

#include "core/allocation.hpp"
#include "core/amf.hpp"
#include "core/eamf.hpp"
#include "core/hierarchy.hpp"
#include "core/jct.hpp"
#include "core/metrics.hpp"
#include "core/persite.hpp"
#include "core/problem.hpp"
#include "core/properties.hpp"
#include "core/reference.hpp"
#include "core/robust.hpp"
#include "core/rounding.hpp"
#include "core/single_site.hpp"
#include "core/stability.hpp"
#include "lp/simplex.hpp"
#include "multiresource/drf.hpp"
#include "multiresource/problem.hpp"
#include "sim/engine.hpp"
#include "workload/faults.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"
#include "workload/trace.hpp"
