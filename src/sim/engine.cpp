#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "core/stability.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace amf::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct ActiveJob {
  int id = 0;
  double arrival = 0.0;
  double total_work = 0.0;
  std::vector<double> remaining;  // per site
  std::vector<double> demands;    // original caps, per site
  double weight = 1.0;

  bool done(double tol) const {
    for (double r : remaining)
      if (r > tol) return false;
    return true;
  }
};

}  // namespace

Simulator::Simulator(const core::Allocator& policy, SimulatorConfig config)
    : policy_(policy), config_(config) {
  AMF_REQUIRE(config.eps > 0.0, "eps must be positive");
  AMF_REQUIRE(config.migration_penalty >= 0.0,
              "migration penalty must be >= 0");
}

std::vector<JobRecord> Simulator::run(const workload::Trace& trace) {
  const int m = static_cast<int>(trace.capacities.size());
  AMF_REQUIRE(m > 0, "trace needs at least one site");
  for (const auto& job : trace.jobs) {
    AMF_REQUIRE(static_cast<int>(job.workloads.size()) == m,
                "trace job workload width mismatch");
    AMF_REQUIRE(static_cast<int>(job.demands.size()) == m,
                "trace job demand width mismatch");
  }
  for (std::size_t i = 1; i < trace.jobs.size(); ++i)
    AMF_REQUIRE(trace.jobs[i].arrival >= trace.jobs[i - 1].arrival,
                "trace must be sorted by arrival");

  stats_ = RunStats{};
  double work_scale = 1.0;
  for (const auto& job : trace.jobs)
    for (double w : job.workloads) work_scale = std::max(work_scale, w);
  const double work_tol = 1e-9 * work_scale;
  const double total_capacity = std::accumulate(
      trace.capacities.begin(), trace.capacities.end(), 0.0);

  std::vector<JobRecord> records(trace.jobs.size());
  std::vector<ActiveJob> active;
  double jain_area = 0.0;   // ∫ jain(active aggregates) dt
  double jain_time = 0.0;   // total time with >= 2 active jobs
  std::size_t next_arrival = 0;
  double clock = 0.0;
  double busy_area = 0.0;  // ∫ used-capacity dt

  core::JctAddon addon(config_.eps);
  core::StabilityAddon stability(config_.eps);
  // Previous event's per-site shares, keyed by job id (for churn
  // accounting and the stability add-on).
  std::unordered_map<int, std::vector<double>> prev_shares;

  auto admit_due = [&] {
    while (next_arrival < trace.jobs.size() &&
           trace.jobs[next_arrival].arrival <= clock + 1e-12) {
      const auto& spec = trace.jobs[next_arrival];
      ActiveJob job;
      job.id = static_cast<int>(next_arrival);
      job.arrival = spec.arrival;
      job.remaining = spec.workloads;
      job.demands = spec.demands;
      job.weight = spec.weight;
      job.total_work = std::accumulate(spec.workloads.begin(),
                                       spec.workloads.end(), 0.0);
      auto& rec = records[next_arrival];
      rec.id = job.id;
      rec.arrival = spec.arrival;
      rec.total_work = job.total_work;
      if (job.done(work_tol)) {
        rec.completion = spec.arrival;  // empty job: completes on arrival
      } else {
        active.push_back(std::move(job));
      }
      ++next_arrival;
    }
  };

  while (!active.empty() || next_arrival < trace.jobs.size()) {
    if (active.empty()) {
      clock = trace.jobs[next_arrival].arrival;
      admit_due();
      continue;
    }

    // Build the residual allocation problem: demand caps are zeroed at
    // sites whose part already drained (no point holding resources there).
    const int n = static_cast<int>(active.size());
    core::Matrix demands(static_cast<std::size_t>(n)),
        workloads(static_cast<std::size_t>(n));
    std::vector<double> weights(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const auto& job = active[static_cast<std::size_t>(j)];
      auto& drow = demands[static_cast<std::size_t>(j)];
      drow.assign(static_cast<std::size_t>(m), 0.0);
      for (int s = 0; s < m; ++s)
        if (job.remaining[static_cast<std::size_t>(s)] > work_tol)
          drow[static_cast<std::size_t>(s)] =
              job.demands[static_cast<std::size_t>(s)];
      workloads[static_cast<std::size_t>(j)] = job.remaining;
      for (auto& w : workloads[static_cast<std::size_t>(j)])
        if (w <= work_tol) w = 0.0;
      weights[static_cast<std::size_t>(j)] = job.weight;
    }
    core::AllocationProblem problem(std::move(demands), trace.capacities,
                                    std::move(workloads), std::move(weights));
    core::Allocation alloc = policy_.allocate(problem);
    if (config_.use_jct_addon) alloc = addon.optimize(problem, alloc);

    // Previous placement of the current active set (zeros for arrivals).
    core::Matrix prev_matrix(static_cast<std::size_t>(n),
                             std::vector<double>(static_cast<std::size_t>(m),
                                                 0.0));
    for (int j = 0; j < n; ++j) {
      auto it = prev_shares.find(active[static_cast<std::size_t>(j)].id);
      if (it != prev_shares.end())
        prev_matrix[static_cast<std::size_t>(j)] = it->second;
    }
    core::Allocation prev_alloc(prev_matrix);
    if (config_.use_stability_addon)
      alloc = stability.optimize(problem, alloc, prev_alloc);
    stats_.total_churn += core::StabilityAddon::churn(alloc, prev_alloc);
    if (config_.migration_penalty > 0.0) {
      // Withdrawing allocation from an unfinished part costs progress.
      for (int j = 0; j < n; ++j) {
        auto& job = active[static_cast<std::size_t>(j)];
        for (int s = 0; s < m; ++s) {
          double r = job.remaining[static_cast<std::size_t>(s)];
          if (r <= work_tol) continue;
          double withdrawn = prev_alloc.share(j, s) - alloc.share(j, s);
          if (withdrawn > 0.0)
            job.remaining[static_cast<std::size_t>(s)] =
                r + config_.migration_penalty * withdrawn;
        }
      }
    }
    for (int j = 0; j < n; ++j) {
      stats_.aggregate_drift +=
          std::abs(alloc.aggregate(j) - prev_alloc.aggregate(j));
      prev_shares[active[static_cast<std::size_t>(j)].id] =
          alloc.shares()[static_cast<std::size_t>(j)];
    }
    ++stats_.events;

    // Next event: earliest site-part completion or next arrival.
    double dt = kInf;
    if (next_arrival < trace.jobs.size())
      dt = trace.jobs[next_arrival].arrival - clock;
    for (int j = 0; j < n; ++j) {
      const auto& job = active[static_cast<std::size_t>(j)];
      for (int s = 0; s < m; ++s) {
        double r = job.remaining[static_cast<std::size_t>(s)];
        if (r <= work_tol) continue;
        double rate = alloc.share(j, s);
        if (rate > 0.0) dt = std::min(dt, r / rate);
      }
    }
    AMF_ASSERT(std::isfinite(dt) && dt >= 0.0,
               "simulation stalled: no progress and no arrivals");

    // Advance time, drain work.
    double used = 0.0;
    for (int j = 0; j < n; ++j) {
      auto& job = active[static_cast<std::size_t>(j)];
      for (int s = 0; s < m; ++s) {
        double r = job.remaining[static_cast<std::size_t>(s)];
        if (r <= work_tol) continue;
        double rate = alloc.share(j, s);
        used += rate;
        double left = r - rate * dt;
        job.remaining[static_cast<std::size_t>(s)] =
            left <= work_tol ? 0.0 : left;
      }
    }
    busy_area += used * dt;
    if (n >= 2) {
      jain_area += util::jain_index(alloc.aggregates()) * dt;
      jain_time += dt;
    }
    clock += dt;

    // Retire finished jobs.
    for (auto it = active.begin(); it != active.end();) {
      if (it->done(work_tol)) {
        records[static_cast<std::size_t>(it->id)].completion = clock;
        prev_shares.erase(it->id);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    admit_due();
  }

  stats_.makespan = clock;
  stats_.time_avg_jain = jain_time > 0.0 ? jain_area / jain_time : 1.0;
  stats_.avg_utilization =
      (clock > 0.0 && total_capacity > 0.0) ? busy_area / (clock * total_capacity)
                                            : 0.0;
  return records;
}

}  // namespace amf::sim
