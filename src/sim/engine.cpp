#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/stability.hpp"
#include "core/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace amf::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct SimCounters {
  obs::Counter events;
  obs::Counter fault_events;
  obs::Counter deltas;
  obs::Counter warm_events;
  obs::Histogram alloc_ms;
  SimCounters() {
    auto& reg = obs::Registry::global();
    events = reg.counter("amf_sim_events", "reallocation events processed");
    fault_events = reg.counter("amf_sim_fault_events",
                               "site fault events (outage/degrade/recover) "
                               "applied");
    deltas = reg.counter("amf_sim_deltas",
                         "problem deltas fed to the incremental engine");
    warm_events = reg.counter(
        "amf_sim_warm_events",
        "events whose workspace was still primed when they arrived");
    alloc_ms = reg.histogram("amf_sim_alloc_ms",
                             "per-event policy allocate wall time (ms)");
  }
};

SimCounters& sim_counters() {
  static SimCounters counters;
  return counters;
}

struct ActiveJob {
  int id = 0;
  double arrival = 0.0;
  double total_work = 0.0;
  std::vector<double> remaining;  // per site
  std::vector<double> demands;    // original caps, per site
  /// Uncommitted progress per site: work processed there since the part's
  /// last loss point. What an outage (partially) destroys.
  std::vector<double> processed;
  /// Sites where this job can ever have residual work (initial workload
  /// above tolerance). Work only moves between sites in this list
  /// (migration penalties and outage losses re-inflate existing residual
  /// parts, never create new ones), so every per-site engine loop can
  /// iterate it instead of all m sites. The skipped sites contribute
  /// exact zeros, so sparse iteration is bit-identical to dense.
  std::vector<int> sites;
  double weight = 1.0;
  /// Leontief profile and its dominant-share coefficient γ = max entry
  /// (empty / 1.0 outside multi-resource traces). Allocation shares are
  /// dominant units; the task rate that drains `remaining` is share/γ.
  std::vector<double> profile;
  double gamma = 1.0;

  bool done(double tol) const {
    for (double r : remaining)
      if (r > tol) return false;
    return true;
  }
};

/// Previous event's placement of one job: the share row the policy chose
/// plus its aggregate as the Allocation constructor computed it (stored,
/// not recomputed, so the incremental churn path reuses the exact double).
struct PrevPlacement {
  std::vector<double> shares;
  double aggregate = 0.0;
};

/// Trace contract checks at the Simulator::run boundary: a malformed
/// trace must throw ContractError before touching the event loop.
void validate_trace(const workload::Trace& trace) {
  const int m = static_cast<int>(trace.capacities.size());
  AMF_REQUIRE(m > 0, "trace needs at least one site");
  for (double c : trace.capacities)
    AMF_REQUIRE(std::isfinite(c) && c >= 0.0,
                "trace capacities must be finite, >= 0");
  for (const auto& job : trace.jobs) {
    AMF_REQUIRE(static_cast<int>(job.workloads.size()) == m,
                "trace job workload width mismatch");
    AMF_REQUIRE(static_cast<int>(job.demands.size()) == m,
                "trace job demand width mismatch");
    AMF_REQUIRE(std::isfinite(job.arrival) && job.arrival >= 0.0,
                "trace arrivals must be finite, >= 0");
    AMF_REQUIRE(std::isfinite(job.weight) && job.weight > 0.0,
                "trace job weights must be finite, > 0");
    for (int s = 0; s < m; ++s) {
      const double w = job.workloads[static_cast<std::size_t>(s)];
      const double d = job.demands[static_cast<std::size_t>(s)];
      AMF_REQUIRE(std::isfinite(w) && w >= 0.0,
                  "trace workloads must be finite, >= 0");
      AMF_REQUIRE(std::isfinite(d) && d >= 0.0,
                  "trace demands must be finite, >= 0");
      AMF_REQUIRE(w == 0.0 || d > 0.0,
                  "positive trace workload requires positive demand cap");
    }
  }
  for (std::size_t i = 1; i < trace.jobs.size(); ++i)
    AMF_REQUIRE(trace.jobs[i].arrival >= trace.jobs[i - 1].arrival,
                "trace must be sorted by arrival");
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const auto& ev = trace.events[i];
    AMF_REQUIRE(std::isfinite(ev.time) && ev.time >= 0.0,
                "fault event times must be finite, >= 0");
    AMF_REQUIRE(ev.site >= 0 && ev.site < m,
                "fault event site index out of range");
    // The kind constraints bind on the minimum surviving factor: with
    // per-resource factors that is the binding resource, otherwise the
    // uniform scalar factor.
    double factor = ev.capacity_factor;
    if (!ev.capacity_factors.empty()) {
      AMF_REQUIRE(static_cast<int>(ev.capacity_factors.size()) ==
                      trace.resources(),
                  "fault event factor width mismatch");
      factor = ev.capacity_factors.front();
      for (double f : ev.capacity_factors) {
        AMF_REQUIRE(std::isfinite(f) && f >= 0.0 && f <= 1.0,
                    "fault capacity factor must be finite, in [0, 1]");
        factor = std::min(factor, f);
      }
    } else {
      AMF_REQUIRE(std::isfinite(ev.capacity_factor) &&
                      ev.capacity_factor >= 0.0 && ev.capacity_factor <= 1.0,
                  "fault capacity factor must be finite, in [0, 1]");
    }
    switch (ev.kind) {
      case workload::SiteEventKind::kOutage:
        AMF_REQUIRE(factor == 0.0,
                    "outage events must carry capacity factor 0");
        for (double f : ev.capacity_factors)
          AMF_REQUIRE(f == 0.0,
                      "outage events must zero every resource factor");
        break;
      case workload::SiteEventKind::kDegrade:
        AMF_REQUIRE(factor > 0.0 && factor < 1.0,
                    "degrade events must carry a factor in (0, 1)");
        break;
      case workload::SiteEventKind::kRecover:
        AMF_REQUIRE(factor > 0.0,
                    "recover events must carry a factor in (0, 1]");
        break;
    }
    if (i > 0)
      AMF_REQUIRE(ev.time >= trace.events[i - 1].time,
                  "fault events must be sorted by time");
  }
  if (trace.multi_resource()) {
    const int r = trace.resources();
    AMF_REQUIRE(static_cast<int>(trace.capacity_matrix.size()) == m,
                "trace capacity matrix height mismatch");
    for (int s = 0; s < m; ++s) {
      const auto& row = trace.capacity_matrix[static_cast<std::size_t>(s)];
      AMF_REQUIRE(static_cast<int>(row.size()) == r,
                  "trace capacity matrix width mismatch");
      double binding = row.front();
      for (double c : row) {
        AMF_REQUIRE(std::isfinite(c) && c >= 0.0,
                    "trace capacity matrix entries must be finite, >= 0");
        binding = std::min(binding, c);
      }
      AMF_REQUIRE(trace.capacities[static_cast<std::size_t>(s)] == binding,
                  "trace capacities must hold each row's binding minimum");
    }
    for (const auto& job : trace.jobs) {
      if (job.profile.empty()) continue;  // empty = the unit profile
      AMF_REQUIRE(static_cast<int>(job.profile.size()) == r,
                  "trace job profile width mismatch");
      bool any = false;
      for (double p : job.profile) {
        AMF_REQUIRE(std::isfinite(p) && p >= 0.0,
                    "trace job profiles must be finite, >= 0");
        any = any || p > 0.0;
      }
      AMF_REQUIRE(any, "trace job profiles need a positive entry");
    }
  } else {
    for (const auto& job : trace.jobs)
      AMF_REQUIRE(job.profile.empty(),
                  "job profiles need a multi-resource trace");
    for (const auto& ev : trace.events)
      AMF_REQUIRE(ev.capacity_factors.empty(),
                  "per-resource fault factors need a multi-resource trace");
  }
}

}  // namespace

Simulator::Simulator(const core::Allocator& policy, SimulatorConfig config)
    : policy_(policy), config_(config) {
  AMF_REQUIRE(config.eps > 0.0, "eps must be positive");
  AMF_REQUIRE(config.migration_penalty >= 0.0,
              "migration penalty must be >= 0");
  AMF_REQUIRE(config.loss_factor >= 0.0 && config.loss_factor <= 1.0,
              "loss factor must be in [0, 1]");
  AMF_REQUIRE(std::isfinite(config.event_budget_ms) &&
                  config.event_budget_ms >= 0.0,
              "event budget must be finite and >= 0");
}

std::vector<JobRecord> Simulator::run(const workload::Trace& trace) {
  const int m = static_cast<int>(trace.capacities.size());
  validate_trace(trace);

  stats_ = RunStats{};
  series_.clear();
  auto& tracer = obs::Tracer::global();
  const long long spans_base = tracer.recorded();
  const long long dropped_base = tracer.dropped();
  double work_scale = 1.0;
  for (const auto& job : trace.jobs)
    for (double w : job.workloads) work_scale = std::max(work_scale, w);
  const double work_tol = 1e-9 * work_scale;
  const double total_capacity = std::accumulate(
      trace.capacities.begin(), trace.capacities.end(), 0.0);

  std::vector<JobRecord> records(trace.jobs.size());
  std::vector<ActiveJob> active;
  double jain_area = 0.0;   // ∫ jain(active aggregates) dt
  double jain_time = 0.0;   // total time with >= 2 active jobs
  std::size_t next_arrival = 0;
  double clock = 0.0;
  double busy_area = 0.0;  // ∫ used-capacity dt
  double cap_area = 0.0;   // ∫ surviving-capacity dt

  // Fault state: per-site capacity factor and surviving capacity. On a
  // fault-free trace none of this is ever touched, so the engine's
  // numerical path (and output) is identical to the fault-unaware one.
  std::vector<double> avail(static_cast<std::size_t>(m), 1.0);
  std::vector<double> eff_cap = trace.capacities;
  double eff_total = total_capacity;
  // Multi-resource state: the surviving per-resource capacity matrix.
  // eff_cap keeps mirroring its binding minima, so every scalar code path
  // below is untouched; `multi` gates the few places where dominant-unit
  // shares and raw task units diverge.
  const bool multi = trace.multi_resource();
  core::Matrix eff_mat = trace.capacity_matrix;
  std::vector<double> down_since(static_cast<std::size_t>(m), -1.0);
  double latency_sum = 0.0;
  std::size_t next_event = 0;

  // Incremental solve state: one problem instance plus one persistent
  // solver workspace, both mutated by the same delta stream. Row j of the
  // live problem always describes active[j].
  const bool inc = config_.incremental;
  std::optional<core::AllocationProblem> live;
  core::SolverWorkspace ws;
  if (inc) {
    if (multi)
      live = core::AllocationProblem::multi(core::Matrix{}, eff_mat, {});
    else
      live.emplace(core::Matrix{}, eff_cap);
    ws.set_exact_realization(config_.exact_replay);
  }
  long long pending_deltas = 0;  // deltas since the last allocate call
  auto apply_delta = [&](core::ProblemDelta delta) {
    ws.apply(delta);  // before the problem consumes the delta's buffers
    *live = std::move(*live).apply(delta);
    sim_counters().deltas.add(1);
    ++pending_deltas;
  };

  // The demand cap row j of the allocation problem carries for site s:
  // zero once the part there drained (no point holding resources there),
  // masked to the surviving capacity at impaired sites so the policy only
  // places work where it can actually run.
  auto desired_demand = [&](const ActiveJob& job, int s) {
    const auto su = static_cast<std::size_t>(s);
    if (job.remaining[su] <= work_tol) return 0.0;
    double cap = job.demands[su];
    if (avail[su] < 1.0) {
      if (multi) {
        // Leontief fit: an impaired site hosts at most
        // min_r eff[s][r]/profile[r] tasks of this job (the scarcest
        // resource per task binds, not the binding-min capacity).
        const auto& eff = eff_mat[su];
        double fit = kInf;
        for (std::size_t r = 0; r < eff.size(); ++r) {
          const double p = job.profile.empty() ? 1.0 : job.profile[r];
          if (p > 0.0) fit = std::min(fit, eff[r] / p);
        }
        cap = std::min(cap, fit);
      } else {
        cap = std::min(cap, eff_cap[su]);
      }
    }
    return cap;
  };
  // Workload at a dark site is hidden from the allocator (it cannot be
  // served there until recovery); the engine still tracks it.
  auto desired_workload = [&](const ActiveJob& job, int s, double demand_cap) {
    const double r = job.remaining[static_cast<std::size_t>(s)];
    return (r > work_tol && demand_cap != 0.0) ? r : 0.0;
  };

  // Applies every fault event due at the current clock: rescale the
  // site's surviving capacity, destroy uncommitted progress on outages,
  // and account recovery episodes.
  auto apply_due_events = [&] {
    while (next_event < trace.events.size() &&
           trace.events[next_event].time <= clock + 1e-12) {
      const auto& ev = trace.events[next_event];
      const auto s = static_cast<std::size_t>(ev.site);
      if (ev.kind == workload::SiteEventKind::kOutage &&
          config_.loss_factor > 0.0) {
        for (auto& job : active) {
          double& r = job.remaining[s];
          if (r <= work_tol) continue;  // committed part: safe
          const double lost = config_.loss_factor * job.processed[s];
          r += lost;
          stats_.work_lost += lost;
          job.processed[s] = 0.0;
        }
      } else if (ev.kind == workload::SiteEventKind::kOutage) {
        // Perfect checkpointing: progress survives, the loss point moves.
        for (auto& job : active) job.processed[s] = 0.0;
      }
      // The site counts as impaired while its *binding* factor is below 1
      // (with per-resource factors that is their minimum).
      double minf = ev.capacity_factor;
      if (!ev.capacity_factors.empty())
        minf = *std::min_element(ev.capacity_factors.begin(),
                                 ev.capacity_factors.end());
      if (down_since[s] < 0.0 && minf < 1.0) down_since[s] = ev.time;
      if (down_since[s] >= 0.0 && minf >= 1.0) {
        latency_sum += ev.time - down_since[s];
        ++stats_.recoveries;
        down_since[s] = -1.0;
      }
      avail[s] = minf;
      if (multi) {
        auto& eff = eff_mat[s];
        const auto& nominal = trace.capacity_matrix[s];
        for (std::size_t r = 0; r < eff.size(); ++r) {
          const double f = ev.capacity_factors.empty()
                               ? ev.capacity_factor
                               : ev.capacity_factors[r];
          eff[r] = nominal[r] * f;
        }
        eff_cap[s] = flow::binding_min(eff);
        if (inc)
          apply_delta(core::ProblemDelta::set_capacity_vec(ev.site, eff));
      } else {
        eff_cap[s] = trace.capacities[s] * ev.capacity_factor;
        if (inc)
          apply_delta(core::ProblemDelta::site_capacity(ev.site, eff_cap[s]));
      }
      eff_total = std::accumulate(eff_cap.begin(), eff_cap.end(), 0.0);
      AMF_INSTANT_ARG("sim/fault", "site", ev.site);
      sim_counters().fault_events.add(1);
      ++stats_.fault_events;
      ++next_event;
    }
  };

  core::JctAddon addon(config_.eps);
  core::StabilityAddon stability(config_.eps);
  // Previous event's per-site shares, keyed by job id (for churn
  // accounting and the stability add-on).
  std::unordered_map<int, PrevPlacement> prev_shares;

  auto admit_due = [&] {
    while (next_arrival < trace.jobs.size() &&
           trace.jobs[next_arrival].arrival <= clock + 1e-12) {
      const auto& spec = trace.jobs[next_arrival];
      ActiveJob job;
      job.id = static_cast<int>(next_arrival);
      job.arrival = spec.arrival;
      job.remaining = spec.workloads;
      job.demands = spec.demands;
      job.processed.assign(static_cast<std::size_t>(m), 0.0);
      job.weight = spec.weight;
      if (!spec.profile.empty()) {
        job.profile = spec.profile;
        job.gamma = 0.0;
        for (double p : job.profile) job.gamma = std::max(job.gamma, p);
      }
      job.total_work = std::accumulate(spec.workloads.begin(),
                                       spec.workloads.end(), 0.0);
      for (int s = 0; s < m; ++s)
        if (spec.workloads[static_cast<std::size_t>(s)] > work_tol)
          job.sites.push_back(s);
      auto& rec = records[next_arrival];
      rec.id = job.id;
      rec.arrival = spec.arrival;
      rec.total_work = job.total_work;
      if (job.done(work_tol)) {
        rec.completion = spec.arrival;  // empty job: completes on arrival
      } else {
        active.push_back(std::move(job));
        if (inc) {
          const ActiveJob& jb = active.back();
          std::vector<double> drow(static_cast<std::size_t>(m), 0.0);
          std::vector<double> wrow(static_cast<std::size_t>(m), 0.0);
          std::vector<double> ceiling(static_cast<std::size_t>(m), 0.0);
          for (int s : jb.sites) {
            const auto su = static_cast<std::size_t>(s);
            ceiling[su] = jb.demands[su];  // reserve for post-fault unmasking
            drow[su] = desired_demand(jb, s);
            wrow[su] = desired_workload(jb, s, drow[su]);
          }
          apply_delta(core::ProblemDelta::job_arrived(
              std::move(drow), std::move(wrow), jb.weight,
              std::move(ceiling), jb.profile));
        }
      }
      ++next_arrival;
    }
  };

  while (!active.empty() || next_arrival < trace.jobs.size()) {
    if (config_.max_events > 0 && stats_.events >= config_.max_events) break;
    apply_due_events();
    if (active.empty()) {
      // Idle until the next arrival, processing any fault events that
      // fire in between so the availability integral stays exact.
      const double t_next = trace.jobs[next_arrival].arrival;
      while (next_event < trace.events.size() &&
             trace.events[next_event].time <= t_next + 1e-12) {
        const double t_ev = std::max(clock, trace.events[next_event].time);
        cap_area += eff_total * (t_ev - clock);
        clock = t_ev;
        apply_due_events();
      }
      cap_area += eff_total * std::max(0.0, t_next - clock);
      clock = std::max(clock, t_next);
      admit_due();
      continue;
    }

    const int n = static_cast<int>(active.size());
    std::optional<core::AllocationProblem> scratch_problem;
    if (inc) {
      // Sync pass: bring the live problem's demand/workload entries up to
      // date with the drained and fault-masked state. Only entries that
      // actually changed turn into deltas; when lowering a demand cap to
      // zero the workload entry must be cleared first (a positive
      // workload with a zero cap is a contract violation). Comparisons
      // read the raw task-unit entries — the `want` values and delta
      // payloads are raw, and on a multi-resource problem the plain
      // accessors report γ-scaled dominant units.
      for (int j = 0; j < n; ++j) {
        const auto& job = active[static_cast<std::size_t>(j)];
        for (int s : job.sites) {
          const double want_d = desired_demand(job, s);
          const double want_w = desired_workload(job, s, want_d);
          if (want_w == 0.0 && live->task_workload(j, s) != 0.0)
            apply_delta(core::ProblemDelta::workload_set(j, s, 0.0));
          if (live->task_demand(j, s) != want_d)
            apply_delta(core::ProblemDelta::demand_set(j, s, want_d));
          if (want_w != 0.0 && live->task_workload(j, s) != want_w)
            apply_delta(core::ProblemDelta::workload_set(j, s, want_w));
        }
      }
    } else {
      // From-scratch path: build the residual allocation problem anew.
      core::Matrix demands(static_cast<std::size_t>(n)),
          workloads(static_cast<std::size_t>(n));
      std::vector<double> weights(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const auto& job = active[static_cast<std::size_t>(j)];
        auto& drow = demands[static_cast<std::size_t>(j)];
        drow.assign(static_cast<std::size_t>(m), 0.0);
        for (int s = 0; s < m; ++s)
          drow[static_cast<std::size_t>(s)] = desired_demand(job, s);
        auto& wrow = workloads[static_cast<std::size_t>(j)];
        wrow.assign(static_cast<std::size_t>(m), 0.0);
        for (int s = 0; s < m; ++s)
          wrow[static_cast<std::size_t>(s)] = desired_workload(
              job, s, drow[static_cast<std::size_t>(s)]);
        weights[static_cast<std::size_t>(j)] = job.weight;
      }
      if (multi) {
        core::Matrix profiles(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          const auto& job = active[static_cast<std::size_t>(j)];
          profiles[static_cast<std::size_t>(j)] =
              job.profile.empty()
                  ? std::vector<double>(eff_mat.front().size(), 1.0)
                  : job.profile;
        }
        scratch_problem = core::AllocationProblem::multi(
            std::move(demands), eff_mat, std::move(profiles),
            std::move(workloads), std::move(weights));
      } else {
        scratch_problem.emplace(std::move(demands), eff_cap,
                                std::move(workloads), std::move(weights));
      }
    }
    const core::AllocationProblem& problem = inc ? *live : *scratch_problem;

    // One span per reallocation event, carrying how many problem deltas
    // it took to bring the live state up to date (0 on the scratch path).
    // The span covers the allocate call and all per-event accounting, so
    // every child span (core/allocate, flow/...) nests inside it.
    AMF_SPAN_ARG("sim/event", "deltas", pending_deltas);
    pending_deltas = 0;
    EventSample sample;
    sample.time = clock;
    sample.warm = inc && ws.primed();
    if (sample.warm) sim_counters().warm_events.add(1);
    const auto alloc_begin = std::chrono::steady_clock::now();

    // Optional per-event time budget, installed ambiently so it reaches
    // the policy's solvers through the virtual Allocator interface. Scoped
    // to the allocate call only: the JCT/stability add-ons below run
    // unbudgeted by design (their LP/flow substrate would otherwise throw
    // DeadlineExceeded with no salvage path to catch it).
    std::optional<util::StopToken> event_stop;
    std::optional<util::ScopedStop> event_scope;
    if (config_.event_budget_ms > 0.0) {
      event_stop.emplace(util::Deadline::after_ms(config_.event_budget_ms));
      event_scope.emplace(*event_stop);
    }

    core::Allocation alloc;
    if (inc) {
      if (!ws.primed()) {
        // First event, or the workspace dropped its network (fallback
        // tier switch, unrepresentable delta): re-prime with full arc
        // ceilings so future fault unmasking stays incremental.
        core::Matrix ceilings(static_cast<std::size_t>(n),
                              std::vector<double>(static_cast<std::size_t>(m),
                                                  0.0));
        for (int j = 0; j < n; ++j) {
          const auto& job = active[static_cast<std::size_t>(j)];
          for (int s : job.sites)
            ceilings[static_cast<std::size_t>(j)][static_cast<std::size_t>(
                s)] = job.demands[static_cast<std::size_t>(s)];
        }
        ws.prime(problem, &ceilings);
      }
      alloc = policy_.allocate(problem, ws);
    } else {
      alloc = policy_.allocate(problem);
    }
    event_scope.reset();
    sample.alloc_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - alloc_begin)
                          .count();
    if (config_.event_budget_ms > 0.0 &&
        sample.alloc_ms > config_.event_budget_ms)
      ++stats_.events_over_budget;
    sample.tier = inc ? ws.serving_tier : -1;
    stats_.alloc_ms += sample.alloc_ms;
    sim_counters().alloc_ms.observe(sample.alloc_ms);
    sim_counters().events.add(1);
    series_.push_back(sample);
    if (config_.use_jct_addon) alloc = addon.optimize(problem, alloc);

    if (!inc || config_.use_stability_addon) {
      // Previous placement of the current active set (zeros for
      // arrivals), materialized densely: the stability add-on needs the
      // full matrix, and the from-scratch path keeps its original shape.
      core::Matrix prev_matrix(
          static_cast<std::size_t>(n),
          std::vector<double>(static_cast<std::size_t>(m), 0.0));
      for (int j = 0; j < n; ++j) {
        auto it = prev_shares.find(active[static_cast<std::size_t>(j)].id);
        if (it != prev_shares.end())
          prev_matrix[static_cast<std::size_t>(j)] = it->second.shares;
      }
      core::Allocation prev_alloc(prev_matrix);
      if (config_.use_stability_addon)
        alloc = stability.optimize(problem, alloc, prev_alloc);
      stats_.total_churn += core::StabilityAddon::churn(alloc, prev_alloc);
      if (config_.migration_penalty > 0.0) {
        // Withdrawing allocation from an unfinished part costs progress.
        for (int j = 0; j < n; ++j) {
          auto& job = active[static_cast<std::size_t>(j)];
          for (int s : job.sites) {
            double r = job.remaining[static_cast<std::size_t>(s)];
            if (r <= work_tol) continue;
            double withdrawn = prev_alloc.share(j, s) - alloc.share(j, s);
            if (multi) withdrawn /= job.gamma;  // dominant units -> tasks
            if (withdrawn > 0.0)
              job.remaining[static_cast<std::size_t>(s)] =
                  r + config_.migration_penalty * withdrawn;
          }
        }
      }
      for (int j = 0; j < n; ++j) {
        stats_.aggregate_drift +=
            std::abs(alloc.aggregate(j) - prev_alloc.aggregate(j));
        prev_shares[active[static_cast<std::size_t>(j)].id] = {
            alloc.shares()[static_cast<std::size_t>(j)], alloc.aggregate(j)};
      }
    } else {
      // Sparse accounting: shares (current and previous) are zero outside
      // a job's site list, so churn, migration and drift only need the
      // list entries. Summation order matches the dense path — same jobs
      // ascending, same sites ascending, skipped terms exactly zero.
      double churn = 0.0;
      for (int j = 0; j < n; ++j) {
        auto& job = active[static_cast<std::size_t>(j)];
        auto it = prev_shares.find(job.id);
        const PrevPlacement* prev =
            it != prev_shares.end() ? &it->second : nullptr;
        for (int s : job.sites) {
          const double before =
              prev != nullptr ? prev->shares[static_cast<std::size_t>(s)]
                              : 0.0;
          churn += std::abs(alloc.share(j, s) - before);
        }
        if (config_.migration_penalty > 0.0 && prev != nullptr) {
          for (int s : job.sites) {
            double r = job.remaining[static_cast<std::size_t>(s)];
            if (r <= work_tol) continue;
            double withdrawn = prev->shares[static_cast<std::size_t>(s)] -
                               alloc.share(j, s);
            if (multi) withdrawn /= job.gamma;  // dominant units -> tasks
            if (withdrawn > 0.0)
              job.remaining[static_cast<std::size_t>(s)] =
                  r + config_.migration_penalty * withdrawn;
          }
        }
      }
      stats_.total_churn += churn;
      for (int j = 0; j < n; ++j) {
        auto it = prev_shares.find(active[static_cast<std::size_t>(j)].id);
        const double prev_aggregate =
            it != prev_shares.end() ? it->second.aggregate : 0.0;
        stats_.aggregate_drift +=
            std::abs(alloc.aggregate(j) - prev_aggregate);
        prev_shares[active[static_cast<std::size_t>(j)].id] = {
            alloc.shares()[static_cast<std::size_t>(j)], alloc.aggregate(j)};
      }
    }
    ++stats_.events;

    // Next event: earliest site-part completion, next arrival, or next
    // fault event.
    double dt = kInf;
    if (next_arrival < trace.jobs.size())
      dt = trace.jobs[next_arrival].arrival - clock;
    if (next_event < trace.events.size())
      dt = std::min(dt, trace.events[next_event].time - clock);
    for (int j = 0; j < n; ++j) {
      const auto& job = active[static_cast<std::size_t>(j)];
      for (int s : job.sites) {
        double r = job.remaining[static_cast<std::size_t>(s)];
        if (r <= work_tol) continue;
        double rate = alloc.share(j, s);
        if (multi) rate /= job.gamma;  // dominant units -> task rate
        if (rate > 0.0) dt = std::min(dt, r / rate);
      }
    }
    AMF_ASSERT(std::isfinite(dt) && dt >= 0.0,
               "simulation stalled: no progress, no arrivals and no "
               "pending fault events (permanent outage with work left?)");

    // Advance time, drain work.
    double used = 0.0;
    for (int j = 0; j < n; ++j) {
      auto& job = active[static_cast<std::size_t>(j)];
      for (int s : job.sites) {
        double r = job.remaining[static_cast<std::size_t>(s)];
        if (r <= work_tol) continue;
        // Utilization integrates the allocated (dominant-unit) share
        // against capacity; work drains at the task rate share/γ.
        double rate = alloc.share(j, s);
        used += rate;
        if (multi) rate /= job.gamma;
        if (rate > 0.0)
          job.processed[static_cast<std::size_t>(s)] += rate * dt;
        double left = r - rate * dt;
        job.remaining[static_cast<std::size_t>(s)] =
            left <= work_tol ? 0.0 : left;
      }
    }
    busy_area += used * dt;
    cap_area += eff_total * dt;
    if (n >= 2) {
      jain_area += util::jain_index(alloc.aggregates()) * dt;
      jain_time += dt;
    }
    clock += dt;

    // Retire finished jobs. Row indices shift as rows are erased; the
    // departure deltas carry the index at erase time, matching the
    // order-preserving erase on `active`.
    int row = 0;
    for (auto it = active.begin(); it != active.end();) {
      if (it->done(work_tol)) {
        records[static_cast<std::size_t>(it->id)].completion = clock;
        prev_shares.erase(it->id);
        if (inc) apply_delta(core::ProblemDelta::job_departed(row));
        it = active.erase(it);
      } else {
        ++it;
        ++row;
      }
    }
    if (inc) ws.maybe_compact();
    admit_due();
  }

  stats_.makespan = clock;
  stats_.time_avg_jain = jain_time > 0.0 ? jain_area / jain_time : 1.0;
  stats_.avg_utilization =
      (clock > 0.0 && total_capacity > 0.0) ? busy_area / (clock * total_capacity)
                                            : 0.0;
  stats_.avail_utilization = cap_area > 0.0 ? busy_area / cap_area : 0.0;
  stats_.mean_recovery_latency =
      stats_.recoveries > 0 ? latency_sum / stats_.recoveries : 0.0;
  stats_.spans_recorded = tracer.recorded() - spans_base;
  stats_.spans_dropped = tracer.dropped() - dropped_base;
  if (stats_.events > 0) {
    long long warm = 0;
    for (const EventSample& s : series_) warm += s.warm ? 1 : 0;
    obs::Registry::global()
        .gauge("amf_core_warm_hit_rate",
               "fraction of the last run's events served from a still-primed "
               "workspace")
        .set(static_cast<double>(warm) / stats_.events);
  }
  return records;
}

}  // namespace amf::sim
