// engine.hpp — discrete-event simulator for online distributed job
// execution.
//
// Jobs arrive over time, each carrying per-site workloads and demand
// caps. The simulator holds rates constant between events; at every event
// (arrival, or completion of some job's site-part) it re-runs the
// configured allocation policy on the remaining work of the active jobs —
// exactly the recompute-on-change operation of a cluster scheduler. Site
// parts drain independently; a job completes when its last part does.
//
// The engine is exact: the next event time is computed in closed form
// from the current rates, so no time-stepping error is introduced.
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/jct.hpp"
#include "workload/trace.hpp"

namespace amf::sim {

/// Per-job outcome of a simulation run.
struct JobRecord {
  int id = 0;
  double arrival = 0.0;
  double completion = 0.0;
  double total_work = 0.0;
  double jct() const { return completion - arrival; }
};

/// Aggregate run statistics.
struct RunStats {
  int events = 0;          ///< number of reallocation points
  double makespan = 0.0;   ///< completion time of the last job
  double avg_utilization = 0.0;  ///< time-averaged fraction of capacity used
  /// Σ over events of the L1 distance between consecutive allocations of
  /// the active jobs (new arrivals count from zero — their initial
  /// placement is real work too). The reallocation cost a stability-aware
  /// scheduler wants to keep low.
  double total_churn = 0.0;
  /// Σ over events of |ΔA_j| (per-job aggregate changes): a lower bound
  /// on total_churn that no realization choice can avoid. The difference
  /// total_churn - aggregate_drift is the churn attributable to the
  /// *placement* choice — what the stability add-on minimizes.
  double aggregate_drift = 0.0;
  /// Time-averaged Jain index of the active jobs' aggregate allocations
  /// (weighted by interval length, over intervals with >= 2 active jobs):
  /// the dynamic counterpart of the paper's balance metric.
  double time_avg_jain = 1.0;
};

struct SimulatorConfig {
  /// Re-split each allocation with the JCT add-on before applying it.
  bool use_jct_addon = false;
  /// Re-split toward the previous event's placement (churn-minimizing LP,
  /// see core/stability.hpp). Applied after the JCT add-on when both are
  /// set, i.e. stability wins. Noticeably slower (one LP per event).
  bool use_stability_addon = false;
  /// Reallocation overhead: for every unit of allocation withdrawn from a
  /// job's *unfinished* site-part, this much work is added back to that
  /// part (preempted tasks lose progress / pay migration cost). 0 (the
  /// default) models free preemption; positive values make placement
  /// churn cost real completion time — the regime where the stability
  /// add-on pays off in JCT, not just in churn (bench F11).
  double migration_penalty = 0.0;
  /// Flow tolerance handed to allocators that accept one.
  double eps = 1e-9;
};

/// Discrete-event execution engine. The policy must outlive the simulator.
class Simulator {
 public:
  explicit Simulator(const core::Allocator& policy,
                     SimulatorConfig config = {});

  /// Runs the trace to completion and returns one record per job (in
  /// arrival order). Run statistics are available via stats() afterwards.
  std::vector<JobRecord> run(const workload::Trace& trace);

  const RunStats& stats() const { return stats_; }

 private:
  const core::Allocator& policy_;
  SimulatorConfig config_;
  RunStats stats_;
};

}  // namespace amf::sim
