// engine.hpp — discrete-event simulator for online distributed job
// execution.
//
// Jobs arrive over time, each carrying per-site workloads and demand
// caps. The simulator holds rates constant between events; at every event
// (arrival, completion of some job's site-part, or a timed site fault) it
// re-runs the configured allocation policy on the remaining work of the
// active jobs — exactly the recompute-on-change operation of a cluster
// scheduler. Site parts drain independently; a job completes when its
// last part does.
//
// Fault semantics (trace.events): each SiteEvent rescales one site's
// usable capacity. While a site is impaired, demand caps at that site are
// masked to the surviving capacity (zero during a full outage), so the
// policy reallocates the displaced jobs elsewhere. An outage additionally
// destroys the *uncommitted* progress of every unfinished site-part
// there: `loss_factor` of the work processed at the site since the part's
// last loss point re-enters the job's remaining workload (completed parts
// are committed and never reopen). A permanently dark site with pending
// work and no recovery event stalls the simulation and is reported as an
// error.
//
// The engine is exact: the next event time is computed in closed form
// from the current rates, so no time-stepping error is introduced.
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/jct.hpp"
#include "workload/trace.hpp"

namespace amf::sim {

/// Per-job outcome of a simulation run.
struct JobRecord {
  int id = 0;
  double arrival = 0.0;
  double completion = 0.0;
  double total_work = 0.0;
  double jct() const { return completion - arrival; }
};

/// Aggregate run statistics.
struct RunStats {
  int events = 0;          ///< number of reallocation points
  double makespan = 0.0;   ///< completion time of the last job
  double avg_utilization = 0.0;  ///< time-averaged fraction of capacity used
  /// Σ over events of the L1 distance between consecutive allocations of
  /// the active jobs (new arrivals count from zero — their initial
  /// placement is real work too). The reallocation cost a stability-aware
  /// scheduler wants to keep low.
  double total_churn = 0.0;
  /// Σ over events of |ΔA_j| (per-job aggregate changes): a lower bound
  /// on total_churn that no realization choice can avoid. The difference
  /// total_churn - aggregate_drift is the churn attributable to the
  /// *placement* choice — what the stability add-on minimizes.
  double aggregate_drift = 0.0;
  /// Time-averaged Jain index of the active jobs' aggregate allocations
  /// (weighted by interval length, over intervals with >= 2 active jobs):
  /// the dynamic counterpart of the paper's balance metric.
  double time_avg_jain = 1.0;
  /// Fault events (outage / degradation / recovery) processed before the
  /// last job completed.
  int fault_events = 0;
  /// Work units destroyed by outages (uncommitted progress × loss factor)
  /// that had to be re-processed.
  double work_lost = 0.0;
  /// Completed failure episodes: a site leaving full health and later
  /// returning to capacity factor 1.
  int recoveries = 0;
  /// Mean wall-clock length of the completed failure episodes.
  double mean_recovery_latency = 0.0;
  /// Availability-weighted utilization: work processed divided by the
  /// capacity that actually survived the fault schedule, ∫ used dt /
  /// ∫ surviving-capacity dt. Equals avg_utilization on a fault-free
  /// trace; under faults it measures how well the policy exploits what
  /// capacity was left.
  double avail_utilization = 0.0;
  /// Wall-clock milliseconds spent inside policy allocate calls (the
  /// solver cost of the run, excluding engine bookkeeping).
  double alloc_ms = 0.0;
  /// Span events recorded (and dropped on ring overflow) by the global
  /// tracer during this run. Zero when tracing is disabled at runtime or
  /// compiled out (AMF_OBS_ENABLED=0).
  long long spans_recorded = 0;
  long long spans_dropped = 0;
  /// Events whose policy allocate call overran the configured
  /// event_budget_ms (0 when unbudgeted). The call still returned a
  /// feasible allocation — cooperative cancellation plus the robust
  /// chain's salvage guarantee that — it just took longer than the slice.
  int events_over_budget = 0;
};

/// One reallocation point of a run, in event order: the raw material for
/// per-event observability plots (warm-start hit rate, serving-tier
/// timelines, solver latency over time).
struct EventSample {
  double time = 0.0;      ///< simulation clock at the event
  double alloc_ms = 0.0;  ///< wall time of the policy allocate call
  /// The persistent workspace was still primed when the event arrived
  /// (always false on the from-scratch path).
  bool warm = false;
  /// Serving fallback tier (core::FallbackTier) the workspace reported,
  /// -1 when no tier wrote one (unwrapped policy or from-scratch path).
  int tier = -1;
};

struct SimulatorConfig {
  /// Re-split each allocation with the JCT add-on before applying it.
  bool use_jct_addon = false;
  /// Re-split toward the previous event's placement (churn-minimizing LP,
  /// see core/stability.hpp). Applied after the JCT add-on when both are
  /// set, i.e. stability wins. Noticeably slower (one LP per event).
  bool use_stability_addon = false;
  /// Reallocation overhead: for every unit of allocation withdrawn from a
  /// job's *unfinished* site-part, this much work is added back to that
  /// part (preempted tasks lose progress / pay migration cost). 0 (the
  /// default) models free preemption; positive values make placement
  /// churn cost real completion time — the regime where the stability
  /// add-on pays off in JCT, not just in churn (bench F11).
  double migration_penalty = 0.0;
  /// Fraction of a site-part's uncommitted progress destroyed when its
  /// site suffers an outage: 0 models perfect checkpointing (displaced
  /// work resumes elsewhere unharmed), 1 models losing everything since
  /// the part started (or since its last outage).
  double loss_factor = 1.0;
  /// Flow tolerance handed to allocators that accept one.
  double eps = 1e-9;
  /// Maintain one AllocationProblem + SolverWorkspace across events and
  /// feed both the per-event deltas (arrivals, departures, drained or
  /// fault-masked demands), instead of rebuilding the problem and the
  /// flow network from scratch at every reallocation point. Results are
  /// bit-for-bit identical to the from-scratch path; per-event cost drops
  /// from O(n·m) rebuild work to O(changes + active nonzeros).
  bool incremental = true;
  /// Replay contract of the incremental engine. true (the default): every
  /// event's allocation is bit-for-bit the one the from-scratch engine
  /// would compute — warm starts are limited to max-flow invariants.
  /// false: each allocation is still max-min optimal with identical job
  /// aggregates (within flow tolerance), but the engine may keep any
  /// per-site realization of them (a different vertex of the optimum
  /// face) and reuses critical-level cut hints across events, trading
  /// replay-exactness for substantially higher event throughput. Ignored
  /// by the from-scratch engine.
  bool exact_replay = true;
  /// Replay budget: stop after this many reallocation events (0 = run the
  /// trace to completion). A truncated run leaves the remaining jobs'
  /// completion records at zero; stats cover the processed prefix. Lets
  /// benchmarks compare engines on an identical event prefix of traces
  /// too long to replay in full.
  int max_events = 0;
  /// Wall-clock budget (milliseconds) for each event's policy allocate
  /// call, installed as the ambient util::StopToken around the call so it
  /// reaches the solvers through the Allocator interface. 0 (the default)
  /// = unbudgeted, and the event loop is byte-identical to earlier
  /// releases. Pair with a RobustAllocator policy: the budget makes bare
  /// solvers return *partial* allocations, which only the robust chain
  /// knows how to complete (salvage) or replace (per-site).
  double event_budget_ms = 0.0;
};

/// Discrete-event execution engine. The policy must outlive the simulator.
class Simulator {
 public:
  explicit Simulator(const core::Allocator& policy,
                     SimulatorConfig config = {});

  /// Runs the trace to completion and returns one record per job (in
  /// arrival order). Run statistics are available via stats() afterwards.
  std::vector<JobRecord> run(const workload::Trace& trace);

  const RunStats& stats() const { return stats_; }

  /// Per-event samples of the most recent run (cleared at each run()).
  const std::vector<EventSample>& event_series() const { return series_; }

 private:
  const core::Allocator& policy_;
  SimulatorConfig config_;
  RunStats stats_;
  std::vector<EventSample> series_;
};

}  // namespace amf::sim
