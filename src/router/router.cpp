#include "router/router.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "svc/proto.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace amf::router {

using svc::ErrorCode;
using svc::Json;
using svc::SvcError;

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

std::string shard_label(const svc::Endpoint& ep) {
  if (!ep.unix_path.empty()) return "unix:" + ep.unix_path;
  return ep.host + ":" + std::to_string(ep.port);
}

}  // namespace

Router::Router(RouterConfig config) : config_(std::move(config)) {
  AMF_REQUIRE(!config_.shards.empty(), "router needs at least one shard");
  int fds[2];
  AMF_REQUIRE(::pipe(fds) == 0, "router wake pipe creation failed");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
}

Router::~Router() {
  trigger_drain();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void Router::start() {
  svc::ListenOptions options;
  options.backlog = config_.backlog;
  if (!config_.unix_path.empty()) {
    listener_ = svc::listen_unix(config_.unix_path, options);
  } else {
    AMF_REQUIRE(config_.tcp_port >= 0,
                "router needs a unix path or a tcp port");
    listener_ = svc::listen_tcp(config_.tcp_port, &bound_port_, options);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  util::Logger::global()
      .info("router.started")
      .num("shards", static_cast<double>(config_.shards.size()));
}

void Router::trigger_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

void Router::wait_drained() {
  std::unique_lock<std::mutex> lock(drained_mu_);
  drained_cv_.wait(lock, [this] { return drained_; });
}

std::size_t Router::shard_of(const std::string& session) {
  std::unique_lock<std::mutex> lock(route_mu_);
  route_cv_.wait(lock, [&] { return moving_.count(session) == 0; });
  const auto it = override_.find(session);
  if (it != override_.end()) return it->second;
  return fnv1a64(session) % config_.shards.size();
}

void Router::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    if (!svc::wait_readable(listener_.fd(), wake_read_)) break;
    svc::Socket sock = svc::accept_connection(listener_);
    if (!sock.valid()) {
      if (draining_.load(std::memory_order_acquire)) break;
      continue;
    }
    // Same reap discipline as the serving accept loop: join announced
    // exits before each accept so conn_threads_ stays bounded by the
    // LIVE connection count.
    reap_finished_connections();
    auto conn = std::make_shared<ClientConn>();
    conn->sock = std::move(sock);
    conn->upstreams.resize(config_.shards.size());
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    std::thread thread([this, conn] { connection_loop(conn); });
    conn_threads_.emplace(thread.get_id(), std::move(thread));
  }

  // Drain: stop accepting, unblock every connection thread, join them.
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& weak : conns_)
      if (const auto conn = weak.lock()) conn->sock.shutdown_both();
  }
  std::map<std::thread::id, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
    finished_conn_threads_.clear();
  }
  for (auto& [id, thread] : threads)
    if (thread.joinable()) thread.join();
  {
    std::lock_guard<std::mutex> lock(drained_mu_);
    drained_ = true;
  }
  drained_cv_.notify_all();
}

void Router::reap_finished_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::thread::id id : finished_conn_threads_) {
      const auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      finished.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conn_threads_.clear();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::weak_ptr<ClientConn>& weak) {
                                  return weak.expired();
                                }),
                 conns_.end());
  }
  for (std::thread& thread : finished)
    if (thread.joinable()) thread.join();
}

void Router::connection_loop(std::shared_ptr<ClientConn> conn) {
  svc::LineReader reader(conn->sock.fd());
  std::string line;
  while (true) {
    const svc::LineReader::Status status = reader.read_line(&line);
    if (status == svc::LineReader::Status::kLine) {
      if (line.empty()) continue;
      handle_line(*conn, line);
      continue;
    }
    if (status == svc::LineReader::Status::kOversized)
      conn->sock.send_all(svc::error_line(
          0.0, ErrorCode::kBadRequest,
          "request line exceeds the protocol's size bound"));
    break;  // EOF / error / oversized all drop the connection
  }
  conn->sock.shutdown_both();
  std::lock_guard<std::mutex> lock(conns_mu_);
  finished_conn_threads_.push_back(std::this_thread::get_id());
}

void Router::handle_line(ClientConn& conn, const std::string& line) {
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    conn.sock.send_all(svc::error_line(0.0, ErrorCode::kBadRequest,
                                       std::string("bad JSON: ") + e.what()));
    return;
  }
  if (!req.is_object()) {
    conn.sock.send_all(svc::error_line(0.0, ErrorCode::kBadRequest,
                                       "request must be a JSON object"));
    return;
  }
  const double id = req.number_or("id", 0.0);
  const std::string op = req.string_or("op", "");
  const std::string session = req.string_or("session", "");
  try {
    if (op == "ping") {
      Json out = Json::object();
      out.set("pong", Json(true));
      conn.sock.send_all(svc::ok_line(id, out));
      return;
    }
    if (op == "stats") {
      handle_stats(conn, req, id);
      return;
    }
    if (op == "drain") {
      handle_drain(conn, req, id);
      return;
    }
    if (op == "move_session") {
      handle_move_session(conn, req, id);
      return;
    }
    // Everything else forwards by session — VERBATIM, so rids, trace
    // ids, and any field this router predates pass through untouched.
    if (session.empty())
      throw SvcError(ErrorCode::kBadRequest,
                     "op \"" + op +
                         "\" needs a \"session\" when addressed "
                         "through the router");
    std::size_t shard = shard_of(session);
    std::string response;
    for (int hop = 0; hop < 3; ++hop) {
      std::string cause;
      if (!forward(conn, shard, line, id, &response, &cause)) {
        shard_errors_.fetch_add(1, std::memory_order_relaxed);
        throw SvcError(ErrorCode::kShardUnavailable,
                       "shard " + std::to_string(shard) + " (" +
                           shard_label(config_.shards[shard]) +
                           "): " + cause);
      }
      // A request that resolved its shard BEFORE a move started can
      // reach the source after the evict and get no_session. If the
      // session meanwhile lives elsewhere, chase it: re-resolve (which
      // parks until the move completes) and re-forward the same bytes —
      // rid dedup keeps deltas exactly-once. A no_session from the
      // session's CURRENT shard is genuine and returns to the client.
      if (response.find("\"no_session\"") != std::string::npos) {
        const Json parsed = Json::parse(response);
        const Json* error = parsed.find("error");
        if (error != nullptr &&
            error->string_or("code", "") == "no_session") {
          const std::size_t now = shard_of(session);
          if (now != shard) {
            shard = now;
            continue;
          }
        }
      }
      break;
    }
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    conn.sock.send_all(response);
  } catch (const SvcError& e) {
    conn.sock.send_all(svc::error_line(id, e.code(), e.what()));
  } catch (const std::exception& e) {
    conn.sock.send_all(svc::error_line(id, ErrorCode::kInternal, e.what()));
  }
}

bool Router::forward(ClientConn& conn, std::size_t shard,
                     const std::string& line, double id,
                     std::string* response, std::string* cause) {
  Upstream& up = conn.upstreams[shard];
  bool pooled = up.sock.valid();
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!up.sock.valid()) {
      const svc::Endpoint& ep = config_.shards[shard];
      try {
        up.sock = !ep.unix_path.empty()
                      ? svc::connect_unix(ep.unix_path,
                                          config_.connect_timeout_ms)
                      : svc::connect_tcp(ep.host, ep.port,
                                         config_.connect_timeout_ms);
      } catch (const std::exception& e) {
        *cause = e.what();
        return false;
      }
      if (config_.read_timeout_ms > 0.0)
        svc::set_recv_timeout_ms(up.sock.fd(), config_.read_timeout_ms);
      up.reader = std::make_unique<svc::LineReader>(up.sock.fd());
      pooled = false;
    }
    std::string framed = line;
    framed += '\n';
    if (!up.sock.send_all(framed)) {
      up.sock.close();
      up.reader.reset();
      // A pooled connection that died between requests is routine (the
      // shard restarted); retry ONCE on a fresh connect. The request
      // never reached the shard, so the resend cannot double-apply.
      if (pooled) continue;
      *cause = "send to shard failed";
      return false;
    }
    while (true) {
      std::string resp;
      const svc::LineReader::Status status = up.reader->read_line(&resp);
      if (status != svc::LineReader::Status::kLine) {
        up.sock.close();
        up.reader.reset();
        // Past this point the request MAY have reached the shard, so no
        // transparent resend — the client's rid-based retry machinery
        // owns exactly-once, not the router.
        *cause = status == svc::LineReader::Status::kTimeout
                     ? "no response within the shard read timeout"
                     : "shard closed the connection before a response "
                       "arrived";
        return false;
      }
      Json parsed;
      try {
        parsed = Json::parse(resp);
      } catch (const std::exception&) {
        up.sock.close();
        up.reader.reset();
        *cause = "unparseable shard response";
        return false;
      }
      // Skip stale lines (a response to an earlier request this
      // connection abandoned); exactly one request is in flight, so a
      // matching id IS the answer — forwarded back byte-identically.
      if (parsed.number_or("id", -1.0) != id) continue;
      *response = resp;
      response->push_back('\n');
      return true;
    }
  }
  *cause = "send to shard failed";
  return false;
}

void Router::handle_stats(ClientConn& conn, const Json& req, double id) {
  Json shards = Json::array();
  Json sessions = Json::array();
  const std::string line = req.dump();
  long long reachable = 0;
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    Json entry = Json::object();
    entry.set("shard", Json(static_cast<long long>(i)));
    entry.set("endpoint", Json(shard_label(config_.shards[i])));
    std::string response;
    std::string cause;
    if (forward(conn, i, line, id, &response, &cause)) {
      const Json parsed = Json::parse(response);
      entry.set("ok", Json(parsed.bool_or("ok", false)));
      if (parsed.bool_or("ok", false)) ++reachable;
      const Json* shard_sessions = parsed.find("sessions");
      if (shard_sessions != nullptr && shard_sessions->is_array()) {
        for (const Json& info : shard_sessions->as_array()) {
          Json tagged = info;
          tagged.set("shard", Json(static_cast<long long>(i)));
          sessions.push_back(std::move(tagged));
        }
      }
      entry.set("stats", parsed);
    } else {
      shard_errors_.fetch_add(1, std::memory_order_relaxed);
      entry.set("ok", Json(false));
      entry.set("error", Json(cause));
    }
    shards.push_back(std::move(entry));
  }
  Json router = Json::object();
  router.set("shards",
             Json(static_cast<long long>(config_.shards.size())));
  router.set("reachable", Json(reachable));
  router.set("forwarded",
             Json(static_cast<double>(
                 forwarded_.load(std::memory_order_relaxed))));
  router.set("shard_errors",
             Json(static_cast<double>(
                 shard_errors_.load(std::memory_order_relaxed))));
  router.set("moves", Json(static_cast<double>(
                          moves_.load(std::memory_order_relaxed))));
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    router.set("overrides",
               Json(static_cast<long long>(override_.size())));
  }
  Json out = Json::object();
  out.set("router", std::move(router));
  out.set("sessions", std::move(sessions));
  out.set("shards", std::move(shards));
  conn.sock.send_all(svc::ok_line(id, out));
}

void Router::handle_drain(ClientConn& conn, const Json& req, double id) {
  // Cluster-wide shutdown: drain every shard (best-effort — an already
  // dead shard is already drained for this purpose), then the router.
  const std::string line = req.dump();
  Json shards = Json::array();
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    Json entry = Json::object();
    entry.set("shard", Json(static_cast<long long>(i)));
    std::string response;
    std::string cause;
    if (forward(conn, i, line, id, &response, &cause)) {
      const Json parsed = Json::parse(response);
      entry.set("ok", Json(parsed.bool_or("ok", false)));
    } else {
      entry.set("ok", Json(false));
      entry.set("error", Json(cause));
    }
    shards.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("draining", Json(true));
  out.set("shards", std::move(shards));
  conn.sock.send_all(svc::ok_line(id, out));
  trigger_drain();
}

svc::Client Router::admin_client(std::size_t shard) {
  svc::RetryPolicy retry;
  retry.connect_timeout_ms = config_.connect_timeout_ms;
  retry.read_timeout_ms = config_.read_timeout_ms;
  return svc::Client::connect_endpoints({config_.shards[shard]}, retry);
}

void Router::handle_move_session(ClientConn& conn, const Json& req,
                                 double id) {
  const std::string session = req.string_or("session", "");
  if (session.empty())
    throw SvcError(ErrorCode::kBadRequest,
                   "move_session needs a \"session\"");
  const Json* to = req.find("to");
  if (to == nullptr || !to->is_number())
    throw SvcError(ErrorCode::kBadRequest,
                   "move_session needs a numeric \"to\" shard index");
  const double raw = to->as_number();
  if (!(raw >= 0.0) || raw != std::floor(raw) ||
      raw >= static_cast<double>(config_.shards.size()))
    throw SvcError(ErrorCode::kBadRequest,
                   "\"to\" must be a shard index in [0, " +
                       std::to_string(config_.shards.size()) + ")");
  const std::size_t target = static_cast<std::size_t>(raw);

  std::size_t source = 0;
  {
    // Park forwarding for this session: shard_of() blocks while the
    // session is in moving_, so no request can race the handoff onto
    // the wrong shard. Concurrent moves of the SAME session serialize
    // on the same wait.
    std::unique_lock<std::mutex> lock(route_mu_);
    route_cv_.wait(lock, [&] { return moving_.count(session) == 0; });
    const auto it = override_.find(session);
    source = it != override_.end()
                 ? it->second
                 : fnv1a64(session) % config_.shards.size();
    if (source == target) {
      lock.unlock();
      Json out = Json::object();
      out.set("session", Json(session));
      out.set("from", Json(static_cast<long long>(source)));
      out.set("to", Json(static_cast<long long>(target)));
      out.set("moved", Json(false));
      conn.sock.send_all(svc::ok_line(id, out));
      return;
    }
    moving_.insert(session);
  }

  try {
    // Drain + evict on the source: the shard stops serving the session,
    // finishes queued work, and hands back its final snapshot plus the
    // rid dedup window (in-flight retries stay exactly-once).
    svc::Client source_client = admin_client(source);
    Json evicted = source_client.evict_session(session);
    const Json* snapshot = evicted.find("snapshot");
    if (snapshot == nullptr)
      throw SvcError(ErrorCode::kInternal,
                     "evict_session returned no snapshot");
    Json body = Json::object();
    body.set("snapshot", *snapshot);
    const Json* dedup = evicted.find("dedup");
    if (dedup != nullptr) body.set("dedup", *dedup);
    for (const char* key :
         {"policy", "batch_window_ms", "default_budget_ms"}) {
      const Json* value = req.find(key);
      if (value != nullptr) body.set(key, *value);
    }
    try {
      svc::Client target_client = admin_client(target);
      target_client.call(svc::Op::kCreateSession, session, body);
    } catch (...) {
      // The session left the source but never landed on the target:
      // put it back where it came from so it is not lost. If even that
      // fails the error below names the session for manual recovery.
      try {
        svc::Client back = admin_client(source);
        back.call(svc::Op::kCreateSession, session, body);
      } catch (const std::exception& e) {
        util::Logger::global()
            .error("router.move_restore_failed")
            .str("session", session)
            .str("error", e.what());
      }
      throw;
    }
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      override_[session] = target;
      moving_.erase(session);
    }
    route_cv_.notify_all();
    moves_.fetch_add(1, std::memory_order_relaxed);
    util::Logger::global()
        .info("router.session_moved")
        .str("session", session)
        .num("from", static_cast<double>(source))
        .num("to", static_cast<double>(target));
    Json out = Json::object();
    out.set("session", Json(session));
    out.set("from", Json(static_cast<long long>(source)));
    out.set("to", Json(static_cast<long long>(target)));
    out.set("moved", Json(true));
    const Json* seq = evicted.find("seq");
    if (seq != nullptr) out.set("seq", *seq);
    conn.sock.send_all(svc::ok_line(id, out));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      moving_.erase(session);
    }
    route_cv_.notify_all();
    throw;  // handle_line formats the typed error
  }
}

}  // namespace amf::router
