// router.hpp — the session-sharding router (DESIGN.md §16).
//
// A Router listens on the same line-JSON protocol as amf_serve and
// partitions SESSIONS across N backend shards (each an independent
// amf_serve). Session-addressed requests are forwarded to
//
//   shard(session) = override[session]  if a move pinned it,
//                    fnv1a64(session) % N  otherwise,
//
// with the request line passed through VERBATIM — rids, trace ids, and
// every body field reach the shard byte-identically, and the shard's
// response line returns to the client byte-identically, so solves and
// snapshots through the router are bit-identical to direct serving.
//
// Session-less ops are handled at the router: `ping` answers locally,
// `stats` fans out to every shard and aggregates, `drain` drains every
// shard then the router itself. One router-only admin op exists:
//
//   {"op":"move_session","session":S,"to":K}
//
// performs a snapshot-based shard handoff: forwarding for S is parked,
// S is drained and evicted on its current shard (`evict_session`),
// re-created on shard K from the returned snapshot + rid-dedup window,
// the override map repoints S, and parked forwarders resume. In-flight
// client retries stay exactly-once across the move because the dedup
// window travels with the session.
//
// ## Threading
//
// One accept loop; one thread per client connection (the router holds
// per-client upstream sockets, so client threads never contend on a
// shared shard connection). Each client thread processes its requests
// in order with at most one in-flight upstream roundtrip, so upstream
// responses cannot interleave. Upstream connects are lazy and re-tried
// per request; a shard that cannot be reached answers the client with a
// typed `shard_unavailable` error (clients rotate endpoints on it, see
// client.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/net.hpp"

namespace amf::router {

struct RouterConfig {
  /// Listen address: non-empty unix_path wins, else loopback TCP
  /// (tcp_port 0 = ephemeral, bound port via Router::tcp_port()).
  std::string unix_path;
  int tcp_port = -1;
  /// Backend shards, one endpoint each. Order defines shard indices.
  std::vector<svc::Endpoint> shards;
  /// listen(2) backlog (0 = SOMAXCONN).
  int backlog = 0;
  /// Bound on each upstream connect (0 = OS default).
  double connect_timeout_ms = 2000.0;
  /// SO_RCVTIMEO per upstream response wait (0 = block forever). A
  /// timed-out shard roundtrip surfaces as `shard_unavailable`.
  double read_timeout_ms = 0.0;
};

/// 64-bit FNV-1a, the stable session → shard hash. Exposed so tests and
/// benches can predict placement.
std::uint64_t fnv1a64(std::string_view s);

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void start();
  void trigger_drain();  ///< async-signal-safe drain trigger
  void wait_drained();

  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return config_.unix_path; }
  std::size_t shards() const { return config_.shards.size(); }

  /// Current shard index for `session` (override map consulted). Blocks
  /// while a move of this session is in flight.
  std::size_t shard_of(const std::string& session);

 private:
  /// One lazily-connected upstream per shard, owned by one client
  /// connection thread (never shared, so no locking).
  struct Upstream {
    svc::Socket sock;
    std::unique_ptr<svc::LineReader> reader;
  };

  struct ClientConn {
    svc::Socket sock;
    std::vector<Upstream> upstreams;
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<ClientConn> conn);
  void reap_finished_connections();
  /// Dispatches one request line; writes exactly one response line.
  void handle_line(ClientConn& conn, const std::string& line);
  /// Roundtrip on `conn`'s upstream to `shard`: lazy (re)connect, send
  /// the line verbatim, read the response with the matching id. False =
  /// shard unreachable (`*cause` says why); the upstream is reset.
  bool forward(ClientConn& conn, std::size_t shard, const std::string& line,
               double id, std::string* response, std::string* cause);
  void handle_stats(ClientConn& conn, const svc::Json& req, double id);
  void handle_drain(ClientConn& conn, const svc::Json& req, double id);
  void handle_move_session(ClientConn& conn, const svc::Json& req,
                           double id);
  /// Fresh admin client for one shard (evict/create during a move).
  svc::Client admin_client(std::size_t shard);

  RouterConfig config_;
  svc::Socket listener_;
  int bound_port_ = -1;
  std::thread accept_thread_;
  int wake_read_ = -1;   ///< drain wake pipe (accept loop side)
  int wake_write_ = -1;  ///< drain wake pipe (trigger side)
  std::atomic<bool> draining_{false};
  std::mutex drained_mu_;
  std::condition_variable drained_cv_;
  bool drained_ = false;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<ClientConn>> conns_;
  std::map<std::thread::id, std::thread> conn_threads_;
  std::vector<std::thread::id> finished_conn_threads_;

  /// Routing state: overrides from moves, plus the moving set parking
  /// forwarders for sessions mid-handoff.
  std::mutex route_mu_;
  std::condition_variable route_cv_;
  std::unordered_map<std::string, std::size_t> override_;
  std::unordered_set<std::string> moving_;

  // Router-level counters, surfaced in the aggregated `stats` reply.
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> shard_errors_{0};
  std::atomic<std::uint64_t> moves_{0};
};

}  // namespace amf::router
