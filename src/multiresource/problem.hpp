// problem.hpp — the multi-resource, multi-site allocation model.
//
// An extension of the paper's single-resource model in the direction of
// DRF (Dominant Resource Fairness, the mechanism behind Mesos/YARN fair
// schedulers, which the paper generalizes across sites): every site now
// offers R resource types, and each job runs Leontief tasks with a fixed
// per-task consumption profile. Data locality appears as per-site task
// caps. Fairness is defined on the *aggregate dominant share*: the
// fraction of the system-wide pool of a job's dominant resource that its
// tasks consume across all sites.
#pragma once

#include <vector>

namespace amf::multiresource {

/// x[j][s] = number of (divisible) tasks of job j placed at site s.
using TaskMatrix = std::vector<std::vector<double>>;

class MultiResourceProblem {
 public:
  /// `task_caps[j][s]`: maximum tasks of job j at site s (0 = no data
  /// there); `profiles[j][r]`: per-task consumption of resource r (at
  /// least one positive entry per job); `capacities[s][r]`: site s's pool
  /// of resource r.
  MultiResourceProblem(TaskMatrix task_caps,
                       std::vector<std::vector<double>> profiles,
                       std::vector<std::vector<double>> capacities);

  int jobs() const { return static_cast<int>(task_caps_.size()); }
  int sites() const { return static_cast<int>(capacities_.size()); }
  int resources() const {
    return capacities_.empty() ? 0 : static_cast<int>(capacities_[0].size());
  }

  double task_cap(int job, int site) const;
  double profile(int job, int resource) const;
  double capacity(int site, int resource) const;

  /// Σ_s capacities[s][r] — the system-wide pool of resource r.
  double total_capacity(int resource) const;

  /// Dominant share contributed by ONE task of job j:
  /// max_r profile[j][r] / total_capacity(r). The aggregate dominant
  /// share of the job is linear in its total task count: D_j = X_j · δ_j.
  double dominant_share_per_task(int job) const;

  /// argmax of the above.
  int dominant_resource(int job) const;

  /// Per-job aggregate dominant shares of a task allocation.
  std::vector<double> dominant_shares(const TaskMatrix& x) const;

  /// 0 <= x <= caps and per-site-resource capacity respected (relative
  /// tolerance eps).
  bool feasible(const TaskMatrix& x, double eps = 1e-7) const;

  /// Largest capacity/cap/profile magnitude (>= 1), for tolerances.
  double scale() const { return scale_; }

 private:
  TaskMatrix task_caps_;
  std::vector<std::vector<double>> profiles_;
  std::vector<std::vector<double>> capacities_;
  double scale_ = 1.0;
};

}  // namespace amf::multiresource
