#include "multiresource/problem.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace amf::multiresource {

MultiResourceProblem::MultiResourceProblem(
    TaskMatrix task_caps, std::vector<std::vector<double>> profiles,
    std::vector<std::vector<double>> capacities)
    : task_caps_(std::move(task_caps)),
      profiles_(std::move(profiles)),
      capacities_(std::move(capacities)) {
  // Every shape/value violation names the offending row so a caller
  // assembling instances from external data can point at its input line.
  auto at = [](std::string_view what, std::size_t row) {
    return std::string(what) + " (row " + std::to_string(row) + ")";
  };
  AMF_REQUIRE(!capacities_.empty(), "at least one site required");
  const std::size_t m = capacities_.size();
  const std::size_t r_count = capacities_[0].size();
  AMF_REQUIRE(r_count >= 1, "at least one resource required");
  for (std::size_t s = 0; s < m; ++s) {
    const auto& site = capacities_[s];
    AMF_REQUIRE(site.size() == r_count,
                at("ragged capacity matrix: row width " +
                       std::to_string(site.size()) + " != resource count " +
                       std::to_string(r_count),
                   s));
    for (double c : site)
      AMF_REQUIRE(c >= 0.0 && std::isfinite(c),
                  at("capacities must be finite and >= 0", s));
  }
  AMF_REQUIRE(task_caps_.size() == profiles_.size(),
              "task cap / profile job count mismatch: " +
                  std::to_string(task_caps_.size()) + " vs " +
                  std::to_string(profiles_.size()));
  for (std::size_t j = 0; j < task_caps_.size(); ++j) {
    const auto& row = task_caps_[j];
    AMF_REQUIRE(row.size() == m,
                at("ragged task cap matrix: row width " +
                       std::to_string(row.size()) + " != site count " +
                       std::to_string(m),
                   j));
    for (double c : row)
      AMF_REQUIRE(c >= 0.0 && std::isfinite(c),
                  at("task caps must be finite and >= 0", j));
  }
  for (std::size_t j = 0; j < profiles_.size(); ++j) {
    const auto& p = profiles_[j];
    AMF_REQUIRE(p.size() == r_count,
                at("ragged profile matrix: row width " +
                       std::to_string(p.size()) + " != resource count " +
                       std::to_string(r_count),
                   j));
    bool any = false;
    for (double v : p) {
      AMF_REQUIRE(v >= 0.0 && std::isfinite(v),
                  at("profiles must be finite and >= 0", j));
      any |= (v > 0.0);
    }
    AMF_REQUIRE(any,
                at("each job must consume at least one resource "
                   "(all-zero profile)",
                   j));
  }
  for (const auto& site : capacities_)
    for (double c : site) scale_ = std::max(scale_, c);
  for (const auto& row : task_caps_)
    for (double c : row) scale_ = std::max(scale_, c);
  for (const auto& p : profiles_)
    for (double v : p) scale_ = std::max(scale_, v);

  for (int r = 0; r < resources(); ++r)
    AMF_REQUIRE(total_capacity(r) > 0.0 ||
                    std::all_of(profiles_.begin(), profiles_.end(),
                                [r](const auto& p) {
                                  return p[static_cast<std::size_t>(r)] == 0.0;
                                }),
                "a demanded resource must have positive total capacity");
}

double MultiResourceProblem::task_cap(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return task_caps_[static_cast<std::size_t>(job)][static_cast<std::size_t>(site)];
}

double MultiResourceProblem::profile(int job, int resource) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  return profiles_[static_cast<std::size_t>(job)]
                  [static_cast<std::size_t>(resource)];
}

double MultiResourceProblem::capacity(int site, int resource) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  return capacities_[static_cast<std::size_t>(site)]
                    [static_cast<std::size_t>(resource)];
}

double MultiResourceProblem::total_capacity(int resource) const {
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  double total = 0.0;
  for (const auto& site : capacities_)
    total += site[static_cast<std::size_t>(resource)];
  return total;
}

double MultiResourceProblem::dominant_share_per_task(int job) const {
  double best = 0.0;
  for (int r = 0; r < resources(); ++r) {
    double pool = total_capacity(r);
    if (pool <= 0.0) continue;
    best = std::max(best, profile(job, r) / pool);
  }
  return best;
}

int MultiResourceProblem::dominant_resource(int job) const {
  int best_r = 0;
  double best = -1.0;
  for (int r = 0; r < resources(); ++r) {
    double pool = total_capacity(r);
    if (pool <= 0.0) continue;
    double share = profile(job, r) / pool;
    if (share > best) {
      best = share;
      best_r = r;
    }
  }
  return best_r;
}

std::vector<double> MultiResourceProblem::dominant_shares(
    const TaskMatrix& x) const {
  AMF_REQUIRE(static_cast<int>(x.size()) == jobs(),
              "allocation height != job count");
  std::vector<double> shares(static_cast<std::size_t>(jobs()), 0.0);
  for (int j = 0; j < jobs(); ++j) {
    AMF_REQUIRE(static_cast<int>(x[static_cast<std::size_t>(j)].size()) ==
                    sites(),
                "allocation width != site count");
    double tasks = 0.0;
    for (double v : x[static_cast<std::size_t>(j)]) tasks += v;
    shares[static_cast<std::size_t>(j)] =
        tasks * dominant_share_per_task(j);
  }
  return shares;
}

bool MultiResourceProblem::feasible(const TaskMatrix& x, double eps) const {
  if (static_cast<int>(x.size()) != jobs()) return false;
  const double tol = eps * scale_;
  for (int j = 0; j < jobs(); ++j) {
    if (static_cast<int>(x[static_cast<std::size_t>(j)].size()) != sites())
      return false;
    for (int s = 0; s < sites(); ++s) {
      double v = x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v < -tol || v > task_cap(j, s) + tol) return false;
    }
  }
  for (int s = 0; s < sites(); ++s)
    for (int r = 0; r < resources(); ++r) {
      double used = 0.0;
      for (int j = 0; j < jobs(); ++j)
        used += x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] *
                profile(j, r);
      if (used > capacity(s, r) + tol) return false;
    }
  return true;
}

}  // namespace amf::multiresource
