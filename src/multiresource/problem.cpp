#include "multiresource/problem.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace amf::multiresource {

MultiResourceProblem::MultiResourceProblem(
    TaskMatrix task_caps, std::vector<std::vector<double>> profiles,
    std::vector<std::vector<double>> capacities)
    : task_caps_(std::move(task_caps)),
      profiles_(std::move(profiles)),
      capacities_(std::move(capacities)) {
  AMF_REQUIRE(!capacities_.empty(), "at least one site required");
  const std::size_t m = capacities_.size();
  const std::size_t r_count = capacities_[0].size();
  AMF_REQUIRE(r_count >= 1, "at least one resource required");
  for (const auto& site : capacities_) {
    AMF_REQUIRE(site.size() == r_count, "ragged capacity matrix");
    for (double c : site)
      AMF_REQUIRE(c >= 0.0 && std::isfinite(c), "capacities must be >= 0");
  }
  AMF_REQUIRE(task_caps_.size() == profiles_.size(),
              "task cap / profile job count mismatch");
  for (const auto& row : task_caps_) {
    AMF_REQUIRE(row.size() == m, "task cap row width != site count");
    for (double c : row)
      AMF_REQUIRE(c >= 0.0 && std::isfinite(c), "task caps must be >= 0");
  }
  for (const auto& p : profiles_) {
    AMF_REQUIRE(p.size() == r_count, "profile width != resource count");
    bool any = false;
    for (double v : p) {
      AMF_REQUIRE(v >= 0.0 && std::isfinite(v), "profiles must be >= 0");
      any |= (v > 0.0);
    }
    AMF_REQUIRE(any, "each job must consume at least one resource");
  }
  for (const auto& site : capacities_)
    for (double c : site) scale_ = std::max(scale_, c);
  for (const auto& row : task_caps_)
    for (double c : row) scale_ = std::max(scale_, c);
  for (const auto& p : profiles_)
    for (double v : p) scale_ = std::max(scale_, v);

  for (int r = 0; r < resources(); ++r)
    AMF_REQUIRE(total_capacity(r) > 0.0 ||
                    std::all_of(profiles_.begin(), profiles_.end(),
                                [r](const auto& p) {
                                  return p[static_cast<std::size_t>(r)] == 0.0;
                                }),
                "a demanded resource must have positive total capacity");
}

double MultiResourceProblem::task_cap(int job, int site) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  return task_caps_[static_cast<std::size_t>(job)][static_cast<std::size_t>(site)];
}

double MultiResourceProblem::profile(int job, int resource) const {
  AMF_REQUIRE(job >= 0 && job < jobs(), "job index out of range");
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  return profiles_[static_cast<std::size_t>(job)]
                  [static_cast<std::size_t>(resource)];
}

double MultiResourceProblem::capacity(int site, int resource) const {
  AMF_REQUIRE(site >= 0 && site < sites(), "site index out of range");
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  return capacities_[static_cast<std::size_t>(site)]
                    [static_cast<std::size_t>(resource)];
}

double MultiResourceProblem::total_capacity(int resource) const {
  AMF_REQUIRE(resource >= 0 && resource < resources(),
              "resource index out of range");
  double total = 0.0;
  for (const auto& site : capacities_)
    total += site[static_cast<std::size_t>(resource)];
  return total;
}

double MultiResourceProblem::dominant_share_per_task(int job) const {
  double best = 0.0;
  for (int r = 0; r < resources(); ++r) {
    double pool = total_capacity(r);
    if (pool <= 0.0) continue;
    best = std::max(best, profile(job, r) / pool);
  }
  return best;
}

int MultiResourceProblem::dominant_resource(int job) const {
  int best_r = 0;
  double best = -1.0;
  for (int r = 0; r < resources(); ++r) {
    double pool = total_capacity(r);
    if (pool <= 0.0) continue;
    double share = profile(job, r) / pool;
    if (share > best) {
      best = share;
      best_r = r;
    }
  }
  return best_r;
}

std::vector<double> MultiResourceProblem::dominant_shares(
    const TaskMatrix& x) const {
  AMF_REQUIRE(static_cast<int>(x.size()) == jobs(),
              "allocation height != job count");
  std::vector<double> shares(static_cast<std::size_t>(jobs()), 0.0);
  for (int j = 0; j < jobs(); ++j) {
    AMF_REQUIRE(static_cast<int>(x[static_cast<std::size_t>(j)].size()) ==
                    sites(),
                "allocation width != site count");
    double tasks = 0.0;
    for (double v : x[static_cast<std::size_t>(j)]) tasks += v;
    shares[static_cast<std::size_t>(j)] =
        tasks * dominant_share_per_task(j);
  }
  return shares;
}

bool MultiResourceProblem::feasible(const TaskMatrix& x, double eps) const {
  if (static_cast<int>(x.size()) != jobs()) return false;
  const double tol = eps * scale_;
  for (int j = 0; j < jobs(); ++j) {
    if (static_cast<int>(x[static_cast<std::size_t>(j)].size()) != sites())
      return false;
    for (int s = 0; s < sites(); ++s) {
      double v = x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      if (v < -tol || v > task_cap(j, s) + tol) return false;
    }
  }
  for (int s = 0; s < sites(); ++s)
    for (int r = 0; r < resources(); ++r) {
      double used = 0.0;
      for (int j = 0; j < jobs(); ++j)
        used += x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] *
                profile(j, r);
      if (used > capacity(s, r) + tol) return false;
    }
  return true;
}

}  // namespace amf::multiresource
