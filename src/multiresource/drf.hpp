// drf.hpp — Dominant Resource Fairness allocators, single-site and
// aggregate.
//
// Per-site DRF (the natural multi-resource baseline, what Mesos/YARN do
// independently in every cluster): at each site, progressive filling on
// the site-local dominant shares with task caps — computed in closed
// form by bisection on the common level.
//
// Aggregate DRF (ADRF, the multi-resource analogue of the paper's AMF):
// the vector of *aggregate* dominant shares D_j = X_j·δ_j is
// lexicographically max-min fair over the joint feasible region. Since
// Leontief constraints are linear but not flow-representable, progressive
// filling here uses the LP substrate (src/lp): a bisection on the common
// level with LP feasibility checks, per-job freeze probes, and a final
// Pareto top-up LP that maximizes total tasks subject to the fair floors.
#pragma once

#include "multiresource/problem.hpp"

namespace amf::multiresource {

/// Per-site DRF baseline.
class PerSiteDrfAllocator {
 public:
  explicit PerSiteDrfAllocator(double eps = 1e-10) : eps_(eps) {}

  TaskMatrix allocate(const MultiResourceProblem& problem) const;

 private:
  double eps_;
};

/// Aggregate DRF allocator (the multi-site extension).
class AggregateDrfAllocator {
 public:
  /// `level_iters`: bisection resolution per filling round;
  /// `max_rounds`: progressive-filling rounds (each freezes >= 1 job).
  explicit AggregateDrfAllocator(double eps = 1e-9, int level_iters = 40,
                                 int max_rounds = 12)
      : eps_(eps), level_iters_(level_iters), max_rounds_(max_rounds) {}

  TaskMatrix allocate(const MultiResourceProblem& problem) const;

 private:
  double eps_;
  int level_iters_;
  int max_rounds_;
};

/// Definitional oracle: is `shares` the lex max-min fair vector of
/// aggregate dominant shares? (Feasible, and no job can gain while every
/// weakly-worse-off job keeps its share — each probe is one LP.)
bool is_aggregate_drf_fair(const MultiResourceProblem& problem,
                           const std::vector<double>& shares,
                           double tol = 1e-5);

}  // namespace amf::multiresource
