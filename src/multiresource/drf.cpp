#include "multiresource/drf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/single_site.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"

namespace amf::multiresource {

// ---------------------------------------------------------------------------
// Per-site DRF

TaskMatrix PerSiteDrfAllocator::allocate(
    const MultiResourceProblem& problem) const {
  const int n = problem.jobs();
  const int m = problem.sites();
  const int rc = problem.resources();
  TaskMatrix x(static_cast<std::size_t>(n),
               std::vector<double>(static_cast<std::size_t>(m), 0.0));

  // Per-site DRF is the core one-site Leontief water-fill applied
  // independently at every site.
  std::vector<std::vector<double>> profiles(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& row = profiles[static_cast<std::size_t>(j)];
    row.resize(static_cast<std::size_t>(rc));
    for (int r = 0; r < rc; ++r)
      row[static_cast<std::size_t>(r)] = problem.profile(j, r);
  }
  std::vector<double> task_caps(static_cast<std::size_t>(n));
  std::vector<double> capacities(static_cast<std::size_t>(rc));
  for (int s = 0; s < m; ++s) {
    for (int j = 0; j < n; ++j)
      task_caps[static_cast<std::size_t>(j)] = problem.task_cap(j, s);
    for (int r = 0; r < rc; ++r)
      capacities[static_cast<std::size_t>(r)] = problem.capacity(s, r);
    auto tasks = core::leontief_water_fill(task_caps, profiles, capacities,
                                           problem.scale(), eps_);
    for (int j = 0; j < n; ++j)
      x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
          tasks[static_cast<std::size_t>(j)];
  }
  return x;
}

// ---------------------------------------------------------------------------
// Aggregate DRF

namespace {

/// Shared LP construction: variables are the (job, site) pairs with a
/// positive task cap; rows are per-job total-task floors, per-site
/// per-resource capacities, and per-variable caps.
struct AdrfLp {
  explicit AdrfLp(const MultiResourceProblem& problem) : p(problem) {
    var_of.assign(static_cast<std::size_t>(p.jobs()),
                  std::vector<int>(static_cast<std::size_t>(p.sites()), -1));
    for (int j = 0; j < p.jobs(); ++j)
      for (int s = 0; s < p.sites(); ++s)
        if (p.task_cap(j, s) > 0.0) {
          var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
              vars;
          ++vars;
        }
  }

  /// Rows for the given per-job total-task floors.
  std::vector<lp::Row> rows(const std::vector<double>& floors) const {
    std::vector<lp::Row> out;
    for (int j = 0; j < p.jobs(); ++j) {
      if (floors[static_cast<std::size_t>(j)] <= 0.0) continue;
      lp::Row row;
      row.coeffs.assign(static_cast<std::size_t>(vars), 0.0);
      for (int s = 0; s < p.sites(); ++s) {
        int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
        if (v >= 0) row.coeffs[static_cast<std::size_t>(v)] = 1.0;
      }
      row.type = lp::RowType::kGe;
      row.rhs = floors[static_cast<std::size_t>(j)];
      out.push_back(std::move(row));
    }
    for (int s = 0; s < p.sites(); ++s)
      for (int r = 0; r < p.resources(); ++r) {
        lp::Row row;
        row.coeffs.assign(static_cast<std::size_t>(vars), 0.0);
        bool any = false;
        for (int j = 0; j < p.jobs(); ++j) {
          int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
          if (v >= 0 && p.profile(j, r) > 0.0) {
            row.coeffs[static_cast<std::size_t>(v)] = p.profile(j, r);
            any = true;
          }
        }
        if (!any) continue;
        row.type = lp::RowType::kLe;
        row.rhs = p.capacity(s, r);
        out.push_back(std::move(row));
      }
    for (int j = 0; j < p.jobs(); ++j)
      for (int s = 0; s < p.sites(); ++s) {
        int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
        if (v < 0) continue;
        lp::Row row;
        row.coeffs.assign(static_cast<std::size_t>(vars), 0.0);
        row.coeffs[static_cast<std::size_t>(v)] = 1.0;
        row.type = lp::RowType::kLe;
        row.rhs = p.task_cap(j, s);
        out.push_back(std::move(row));
      }
    return out;
  }

  bool feasible(const std::vector<double>& floors,
                std::vector<double>* witness = nullptr) const {
    return lp::feasible(vars, rows(floors), witness);
  }

  TaskMatrix extract(const std::vector<double>& solution) const {
    TaskMatrix x(static_cast<std::size_t>(p.jobs()),
                 std::vector<double>(static_cast<std::size_t>(p.sites()), 0.0));
    for (int j = 0; j < p.jobs(); ++j)
      for (int s = 0; s < p.sites(); ++s) {
        int v = var_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
        if (v >= 0)
          x[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
              std::max(0.0, solution[static_cast<std::size_t>(v)]);
      }
    return x;
  }

  const MultiResourceProblem& p;
  std::vector<std::vector<int>> var_of;
  int vars = 0;
};

}  // namespace

TaskMatrix AggregateDrfAllocator::allocate(
    const MultiResourceProblem& problem) const {
  const int n = problem.jobs();
  if (n == 0) return TaskMatrix{};
  AdrfLp builder(problem);

  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<double> cap_total(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    delta[static_cast<std::size_t>(j)] = problem.dominant_share_per_task(j);
    for (int s = 0; s < problem.sites(); ++s)
      cap_total[static_cast<std::size_t>(j)] += problem.task_cap(j, s);
  }

  std::vector<char> fixed(static_cast<std::size_t>(n), 0);
  std::vector<double> floor_tasks(static_cast<std::size_t>(n), 0.0);
  int unfixed = 0;
  for (int j = 0; j < n; ++j) {
    if (cap_total[static_cast<std::size_t>(j)] <= 0.0 ||
        delta[static_cast<std::size_t>(j)] <= 0.0)
      fixed[static_cast<std::size_t>(j)] = 1;
    else
      ++unfixed;
  }

  // Exact lexicographic max-min over the (general, non-polymatroid) LP
  // polytope, Ogryczak-style: each round solves one LP that maximizes the
  // common minimum share t of the unfixed jobs (t is an LP variable, the
  // per-job rows read Σ_s x[j][s] − t/δ_j >= 0), then fixes exactly the
  // jobs that cannot exceed t* while everyone else keeps their floor
  // (tested by one feasibility LP per job).
  auto solve_level = [&]() -> double {
    lp::LinearProgram program;
    program.variables = builder.vars + 1;  // t is the last variable
    const int t_var = builder.vars;
    program.objective.assign(static_cast<std::size_t>(program.variables),
                             0.0);
    program.objective[static_cast<std::size_t>(t_var)] = 1.0;
    // Base rows (floors for fixed jobs, capacities, caps), widened by the
    // t column.
    std::vector<double> base_floors(floor_tasks);
    for (int j = 0; j < n; ++j)
      if (!fixed[static_cast<std::size_t>(j)])
        base_floors[static_cast<std::size_t>(j)] = 0.0;
    for (auto& row : builder.rows(base_floors)) {
      row.coeffs.push_back(0.0);
      program.rows.push_back(std::move(row));
    }
    for (int j = 0; j < n; ++j) {
      if (fixed[static_cast<std::size_t>(j)]) continue;
      lp::Row row;
      row.coeffs.assign(static_cast<std::size_t>(program.variables), 0.0);
      for (int s = 0; s < problem.sites(); ++s) {
        int v = builder.var_of[static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(s)];
        if (v >= 0) row.coeffs[static_cast<std::size_t>(v)] = 1.0;
      }
      row.coeffs[static_cast<std::size_t>(t_var)] =
          -1.0 / delta[static_cast<std::size_t>(j)];
      row.type = lp::RowType::kGe;
      row.rhs = 0.0;
      program.rows.push_back(std::move(row));
    }
    {
      // A dominant share cannot exceed 1; bounding t keeps the LP bounded
      // even in degenerate corner cases.
      lp::Row bound;
      bound.coeffs.assign(static_cast<std::size_t>(program.variables), 0.0);
      bound.coeffs[static_cast<std::size_t>(t_var)] = 1.0;
      bound.type = lp::RowType::kLe;
      bound.rhs = 1.0;
      program.rows.push_back(std::move(bound));
    }
    auto result = lp::solve(program, eps_);
    AMF_ASSERT(result.status == lp::LpStatus::kOptimal,
               "level LP must be feasible (floors were attained before)");
    return result.objective;
  };

  for (int round = 0; round < std::max(max_rounds_, n + 1) && unfixed > 0;
       ++round) {
    const double level = solve_level();

    // Floors everyone holds while one job probes upward; kept floors are
    // microscopically relaxed so LP noise cannot pin a job spuriously.
    std::vector<double> at_level(floor_tasks);
    for (int j = 0; j < n; ++j)
      if (!fixed[static_cast<std::size_t>(j)])
        at_level[static_cast<std::size_t>(j)] =
            level * (1.0 - 1e-9) / delta[static_cast<std::size_t>(j)];

    // The probe step must be small: a job that can still rise by any
    // meaningful amount belongs to the next leximin level, not this one.
    const double step = 1e-5;
    int newly = 0;
    for (int j = 0; j < n; ++j) {
      if (fixed[static_cast<std::size_t>(j)]) continue;
      auto probe = at_level;
      probe[static_cast<std::size_t>(j)] =
          (level + step) / delta[static_cast<std::size_t>(j)];
      if (!builder.feasible(probe)) {
        fixed[static_cast<std::size_t>(j)] = 1;
        // Fix a hair below the LP optimum so later LPs that re-impose
        // this floor never trip on solver noise.
        floor_tasks[static_cast<std::size_t>(j)] =
            level * (1.0 - 1e-9) / delta[static_cast<std::size_t>(j)];
        --unfixed;
        ++newly;
      }
    }
    if (newly == 0) {
      // Numerically fuzzy critical set: settle everyone at the level.
      for (int j = 0; j < n; ++j) {
        if (fixed[static_cast<std::size_t>(j)]) continue;
        fixed[static_cast<std::size_t>(j)] = 1;
        floor_tasks[static_cast<std::size_t>(j)] =
            level * (1.0 - 1e-9) / delta[static_cast<std::size_t>(j)];
        --unfixed;
      }
    }
  }

  // Pareto top-up: among allocations honoring every fair floor, maximize
  // total tasks (efficiency without disturbing fairness floors).
  lp::LinearProgram program;
  program.variables = builder.vars;
  program.rows = builder.rows(floor_tasks);
  program.objective.assign(static_cast<std::size_t>(builder.vars), 1.0);
  auto result = lp::solve(program, eps_);
  AMF_ASSERT(result.status == lp::LpStatus::kOptimal,
             "fair floors must remain feasible for the top-up LP");
  return builder.extract(result.x);
}

bool is_aggregate_drf_fair(const MultiResourceProblem& problem,
                           const std::vector<double>& shares, double tol) {
  // On the Leontief polytope (not a polymatroid) the classical
  // "max-min fair" vector need not exist; the right target is the
  // *leximin* optimum. We verify the Ogryczak sequential
  // characterization: peeling levels from below, (a) the claimed minimum
  // of the remaining jobs must equal the LP-maximal common minimum, and
  // (b) exactly the jobs that cannot exceed that level (with everyone
  // else held at or above it) may sit on it.
  const int n = problem.jobs();
  AMF_REQUIRE(static_cast<int>(shares.size()) == n,
              "share vector length != job count");
  if (n == 0) return true;
  AdrfLp builder(problem);

  std::vector<double> delta(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    delta[static_cast<std::size_t>(j)] = problem.dominant_share_per_task(j);
  auto tasks_for = [&](int j, double share) {
    return delta[static_cast<std::size_t>(j)] <= 0.0
               ? 0.0
               : share / delta[static_cast<std::size_t>(j)];
  };

  // 1. The vector itself must be feasible (floors relaxed by tol).
  {
    std::vector<double> floors(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j)
      floors[static_cast<std::size_t>(j)] = tasks_for(
          j, std::max(0.0, shares[static_cast<std::size_t>(j)] - tol));
    if (!builder.feasible(floors)) return false;
  }

  std::vector<char> fixed(static_cast<std::size_t>(n), 0);
  std::vector<double> fixed_floor(static_cast<std::size_t>(n), 0.0);
  int unfixed = 0;
  for (int j = 0; j < n; ++j) {
    double cap_total = 0.0;
    for (int s = 0; s < problem.sites(); ++s)
      cap_total += problem.task_cap(j, s);
    if (cap_total <= 0.0 || delta[static_cast<std::size_t>(j)] <= 0.0) {
      // Structurally zero: its claimed share must be (near) zero.
      if (shares[static_cast<std::size_t>(j)] > tol) return false;
      fixed[static_cast<std::size_t>(j)] = 1;
    } else {
      ++unfixed;
    }
  }

  // max common minimum of the unfixed jobs via the level LP.
  auto max_common_min = [&]() {
    lp::LinearProgram program;
    program.variables = builder.vars + 1;
    const int t_var = builder.vars;
    program.objective.assign(static_cast<std::size_t>(program.variables),
                             0.0);
    program.objective[static_cast<std::size_t>(t_var)] = 1.0;
    std::vector<double> base(fixed_floor);
    for (int j = 0; j < n; ++j)
      if (!fixed[static_cast<std::size_t>(j)])
        base[static_cast<std::size_t>(j)] = 0.0;
    for (auto& row : builder.rows(base)) {
      row.coeffs.push_back(0.0);
      program.rows.push_back(std::move(row));
    }
    for (int j = 0; j < n; ++j) {
      if (fixed[static_cast<std::size_t>(j)]) continue;
      lp::Row row;
      row.coeffs.assign(static_cast<std::size_t>(program.variables), 0.0);
      for (int s = 0; s < problem.sites(); ++s) {
        int v = builder.var_of[static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(s)];
        if (v >= 0) row.coeffs[static_cast<std::size_t>(v)] = 1.0;
      }
      row.coeffs[static_cast<std::size_t>(t_var)] =
          -1.0 / delta[static_cast<std::size_t>(j)];
      row.type = lp::RowType::kGe;
      row.rhs = 0.0;
      program.rows.push_back(std::move(row));
    }
    lp::Row bound;
    bound.coeffs.assign(static_cast<std::size_t>(program.variables), 0.0);
    bound.coeffs[static_cast<std::size_t>(builder.vars)] = 1.0;
    bound.type = lp::RowType::kLe;
    bound.rhs = 1.0;
    program.rows.push_back(std::move(bound));
    auto result = lp::solve(program);
    if (result.status != lp::LpStatus::kOptimal) return -1.0;
    return result.objective;
  };

  const double probe_step = std::max(tol * 16.0, 1e-4);
  for (int round = 0; round < n + 1 && unfixed > 0; ++round) {
    double claimed_min = std::numeric_limits<double>::infinity();
    for (int j = 0; j < n; ++j)
      if (!fixed[static_cast<std::size_t>(j)])
        claimed_min =
            std::min(claimed_min, shares[static_cast<std::size_t>(j)]);

    double level = max_common_min();
    if (level < 0.0) return false;  // fixed floors became infeasible
    if (std::abs(level - claimed_min) > tol * std::max(1.0, claimed_min) +
                                            probe_step)
      return false;  // the claimed minimum is not LP-optimal

    // Probe every job sitting on the level; the un-improvable ones are
    // correctly placed, an improvable one means the vector under-serves
    // it. Jobs above the level stay unfixed for the next peel.
    int newly = 0;
    std::vector<double> floors(fixed_floor);
    for (int j = 0; j < n; ++j)
      if (!fixed[static_cast<std::size_t>(j)])
        floors[static_cast<std::size_t>(j)] =
            tasks_for(j, std::max(0.0, level - tol));
    for (int j = 0; j < n; ++j) {
      if (fixed[static_cast<std::size_t>(j)]) continue;
      if (shares[static_cast<std::size_t>(j)] >
          level + tol * std::max(1.0, level) + probe_step)
        continue;  // above this level; peeled later
      auto probe = floors;
      probe[static_cast<std::size_t>(j)] = tasks_for(j, level + probe_step);
      if (builder.feasible(probe)) return false;  // j should exceed level
      fixed[static_cast<std::size_t>(j)] = 1;
      fixed_floor[static_cast<std::size_t>(j)] =
          tasks_for(j, std::max(0.0, level - tol));
      --unfixed;
      ++newly;
    }
    if (newly == 0) return false;  // no job on its claimed level
  }
  return unfixed == 0;
}

}  // namespace amf::multiresource
