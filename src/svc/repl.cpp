#include "svc/repl.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "svc/json.hpp"
#include "svc/net.hpp"
#include "svc/session.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace amf::svc {

namespace {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw util::ContractError(what + ": " + std::strerror(errno));
}

}  // namespace

long long read_epoch_file(const std::string& dir) {
  std::ifstream in(dir + "/EPOCH");
  long long epoch = 0;
  if (!in || !(in >> epoch) || epoch < 0) return 0;
  return epoch;
}

void write_epoch_file(const std::string& dir, long long epoch) {
  const std::string path = dir + "/EPOCH";
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno("epoch open(" + tmp + ")");
  const std::string text = std::to_string(epoch) + "\n";
  const char* data = text.data();
  std::size_t size = text.size();
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail_errno("epoch write(" + tmp + ")");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail_errno("epoch fsync(" + tmp + ")");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    fail_errno("epoch rename(" + tmp + ")");
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort: persist the rename itself
    ::close(dfd);
  }
}

ReplSender::ReplSender(ReplSenderConfig config, long long epoch)
    : config_(std::move(config)), epoch_(epoch) {
  int fds[2];
  AMF_REQUIRE(::pipe(fds) == 0, "repl sender self-pipe");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
  ::fcntl(wake_write_, F_SETFL, O_NONBLOCK);  // a full pipe still wakes
}

ReplSender::~ReplSender() {
  stop();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void ReplSender::start() {
  thread_ = std::thread([this] { run(); });
}

void ReplSender::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // already stopping; fall through to the join below
    }
    stop_ = true;
    cv_.notify_all();
  }
  const char byte = 'w';
  (void)!::write(wake_write_, &byte, 1);
  if (thread_.joinable()) thread_.join();
}

bool ReplSender::offer(const std::string& session, std::string payload,
                       std::uint64_t* index) {
  *index = kFailedIndex;
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || fenced() || broken()) return false;
  if (queue_.size() >= config_.queue_cap) {
    // The unacked-spool invariant (the queue holds every record the
    // standby might be missing) would break on drop, so overflow is
    // terminal: replication needs an operator re-seed.
    broken_.store(true, std::memory_order_release);
    util::Logger::global()
        .error("svc.repl_overflow")
        .num("queue_cap", static_cast<long long>(config_.queue_cap));
    cv_.notify_all();
    return false;
  }
  Pending pending;
  pending.index = next_index_++;
  pending.session = session;
  pending.payload = std::move(payload);
  pending.enqueued_ms = steady_ms();
  queue_bytes_ += pending.payload.size();
  *index = pending.index;
  queue_.push_back(std::move(pending));
  update_lag_gauges_locked();
  const char byte = 'w';
  (void)!::write(wake_write_, &byte, 1);
  return true;
}

ReplSender::WaitResult ReplSender::wait_acked(std::uint64_t index,
                                              double timeout_ms) {
  if (index == kFailedIndex)
    return fenced() ? WaitResult::kFenced : WaitResult::kBroken;
  std::unique_lock<std::mutex> lock(mu_);
  const bool done = cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms), [&] {
        return acked_index_ >= index || stop_ || fenced() || broken();
      });
  if (acked_index_ >= index) return WaitResult::kAcked;
  if (fenced()) return WaitResult::kFenced;
  if (broken()) return WaitResult::kBroken;
  (void)done;
  return WaitResult::kTimeout;
}

bool ReplSender::acked(std::uint64_t index) const {
  if (index == kFailedIndex) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return acked_index_ >= index;
}

long long ReplSender::peer_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peer_epoch_;
}

std::uint64_t ReplSender::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_index_ - 1;
}

std::uint64_t ReplSender::acked_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_index_;
}

void ReplSender::update_lag_gauges_locked() {
  auto& metrics = SvcMetrics::get();
  metrics.repl_lag_records.set(static_cast<double>(queue_.size()));
  metrics.repl_lag_bytes.set(static_cast<double>(queue_bytes_));
  metrics.repl_lag_ms.set(
      queue_.empty() ? 0.0 : steady_ms() - queue_.front().enqueued_ms);
}

bool ReplSender::sleep_backoff(double* backoff_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double, std::milli>(*backoff_ms),
               [&] { return stop_; });
  *backoff_ms = std::min(*backoff_ms * 2.0, config_.reconnect_max_ms);
  return !stop_;
}

void ReplSender::run() {
  double backoff = config_.reconnect_initial_ms;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || fenced() || broken()) return;
    }
    Socket sock;
    try {
      sock = connect_tcp(config_.host, config_.port, 1000.0);
    } catch (const std::exception&) {
      if (!sleep_backoff(&backoff)) return;
      continue;
    }
    if (!handshake(sock)) {
      if (fenced()) return;
      if (!sleep_backoff(&backoff)) return;
      continue;
    }
    backoff = config_.reconnect_initial_ms;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sent_index_ = acked_index_;  // resend everything unacked
      if (ever_connected_) SvcMetrics::get().repl_reconnects.add();
      ever_connected_ = true;
    }
    connected_.store(true, std::memory_order_release);
    util::Logger::global()
        .info("svc.repl_connected")
        .str("standby", config_.host + ":" + std::to_string(config_.port))
        .num("epoch", epoch_);
    serve_connection(sock);
    connected_.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || fenced() || broken()) {
        cv_.notify_all();
        return;
      }
    }
  }
}

bool ReplSender::handshake(Socket& sock) {
  Json hello = Json::object();
  hello.set("t", Json(std::string("hello")));
  hello.set("v", Json(1));
  hello.set("epoch", Json(epoch_));
  if (!sock.send_all(hello.dump() + "\n")) return false;
  set_recv_timeout_ms(sock.fd(), 2000.0);
  LineReader reader(sock.fd());
  std::string line;
  if (reader.read_line(&line) != LineReader::Status::kLine) return false;
  Json reply;
  try {
    reply = Json::parse(line);
  } catch (const std::exception&) {
    return false;
  }
  const std::string t = reply.string_or("t", "");
  const long long peer = static_cast<long long>(reply.number_or("epoch", 0));
  {
    std::lock_guard<std::mutex> lock(mu_);
    peer_epoch_ = std::max(peer_epoch_, peer);
  }
  if (t == "fenced") {
    fenced_.store(true, std::memory_order_release);
    SvcMetrics::get().repl_fenced.add();
    util::Logger::global()
        .warn("svc.repl_fenced")
        .num("epoch", epoch_)
        .num("peer_epoch", peer);
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
    return false;
  }
  return t == "ok";
}

void ReplSender::serve_connection(Socket& sock) {
  // Replies can sit in the LineReader's buffer where poll() cannot see
  // them, so each POLLIN drains until the socket is empty. The drain
  // flips the fd non-blocking (EAGAIN surfaces as kTimeout) instead of
  // using a receive timeout: a blocking recv would stall the send path
  // for the full timeout after every ack, putting a fixed floor under
  // repl-ack latency.
  LineReader reader(sock.fd());
  while (true) {
    std::string batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || fenced() || broken()) return;
      for (const Pending& pending : queue_) {
        if (pending.index <= sent_index_) continue;
        Json rec = Json::object();
        rec.set("t", Json(std::string("rec")));
        rec.set("i", Json(static_cast<double>(pending.index)));
        rec.set("epoch", Json(epoch_));
        rec.set("session", Json(pending.session));
        rec.set("record", Json::parse(pending.payload));
        batch += rec.dump();
        batch += '\n';
        sent_index_ = pending.index;
        SvcMetrics::get().repl_sent.add();
      }
    }
    if (!batch.empty() && !sock.send_all(batch)) return;

    struct pollfd fds[2];
    fds[0] = {sock.fd(), POLLIN, 0};
    fds[1] = {wake_read_, POLLIN, 0};
    const int rc = ::poll(fds, 2, 200);
    if (rc < 0 && errno != EINTR) return;
    if (fds[1].revents != 0) {
      char buf[256];
      while (::read(wake_read_, buf, sizeof buf) == sizeof buf) {
      }
    }
    if (fds[0].revents != 0) {
      const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
      ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
      bool dead = false;
      std::string line;
      while (true) {
        const LineReader::Status status = reader.read_line(&line);
        if (status == LineReader::Status::kTimeout) break;  // drained
        if (status != LineReader::Status::kLine) {
          dead = true;
          break;
        }
        bool fatal = false;
        std::lock_guard<std::mutex> lock(mu_);
        handle_reply_locked(line, &fatal);
        if (fatal) dead = true;
        if (dead) break;
      }
      ::fcntl(sock.fd(), F_SETFL, flags);
      if (dead) return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    update_lag_gauges_locked();
  }
}

void ReplSender::handle_reply_locked(const std::string& line, bool* fatal) {
  Json reply;
  try {
    reply = Json::parse(line);
  } catch (const std::exception&) {
    *fatal = true;  // framing lost; reconnect and resend unacked
    return;
  }
  const std::string t = reply.string_or("t", "");
  if (t == "ack") {
    const auto index = static_cast<std::uint64_t>(reply.number_or("i", 0));
    if (index > acked_index_) {
      acked_index_ = index;
      while (!queue_.empty() && queue_.front().index <= acked_index_) {
        queue_bytes_ -= queue_.front().payload.size();
        SvcMetrics::get().repl_acked.add();
        queue_.pop_front();
      }
      update_lag_gauges_locked();
      cv_.notify_all();
    }
    return;
  }
  if (t == "fenced") {
    const long long peer = static_cast<long long>(reply.number_or("epoch", 0));
    peer_epoch_ = std::max(peer_epoch_, peer);
    fenced_.store(true, std::memory_order_release);
    SvcMetrics::get().repl_fenced.add();
    util::Logger::global()
        .warn("svc.repl_fenced")
        .num("epoch", epoch_)
        .num("peer_epoch", peer);
    cv_.notify_all();
    *fatal = true;
    return;
  }
  if (t == "err") {
    broken_.store(true, std::memory_order_release);
    util::Logger::global()
        .error("svc.repl_rejected")
        .str("message", reply.string_or("message", ""))
        .num("i", reply.number_or("i", 0));
    cv_.notify_all();
    *fatal = true;
    return;
  }
  *fatal = true;  // unknown reply type: treat as a broken stream
}

}  // namespace amf::svc
