// repl.hpp — primary → warm-standby journal streaming (the HA substrate).
//
// The primary tails every journal record (session births, deltas, and
// compaction snapshots) over one dedicated loopback TCP connection to a
// standby, which applies them through the same validate/apply path the
// crash-recovery replay uses. Records reuse the journal payload bytes
// verbatim, so anything a journal can replay, a standby can follow.
//
// ## Wire protocol (line-delimited JSON, sender → standby)
//
//   sender:  {"t":"hello","v":1,"epoch":E}
//   standby: {"t":"ok","epoch":E'}            accepted (E' >= local epoch)
//            {"t":"fenced","epoch":E'}        sender's epoch is stale
//   sender:  {"t":"rec","i":K,"epoch":E,"session":S,"record":{...}}
//   standby: {"t":"ack","i":K}                applied (cumulative)
//            {"t":"fenced","epoch":E'}        sender deposed mid-stream
//            {"t":"err","i":K,"message":M}    record rejected (divergence)
//
// Acks are cumulative: ack i confirms every record with index <= i. On
// reconnect the sender resends everything unacked; the standby skips
// records whose seq it already applied, so the stream is idempotent.
//
// ## Epoch fencing
//
// A monotonic epoch (persisted as `<journal_dir>/EPOCH`, atomic
// tmp+rename) orders primaries in time. Promotion bumps the standby's
// epoch above everything it has seen; from then on any record or
// handshake carrying a lower epoch is rejected with "fenced", and the
// deposed sender goes terminal — its clients stop receiving ACKs in
// repl-ack mode and its /healthz reports the fence. Split-brain writes
// are thus refused at the replication boundary, not merely discouraged.
//
// ## Failure states
//
//   connected  streaming; lag gauges near zero
//   (lagging)  standby down or slow: unacked records spool in memory,
//              bounded by queue_cap — async mode keeps ACKing clients
//              (the spool is the loss window), ack mode times out
//   fenced     a higher epoch exists: terminal, offers are refused
//   broken     spool overflowed or the standby rejected a record
//              (divergence): terminal, replication needs a re-seed
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

namespace amf::svc {

/// Reads `<dir>/EPOCH`; 0 when the file is missing or unparsable.
long long read_epoch_file(const std::string& dir);

/// Persists `epoch` to `<dir>/EPOCH` atomically (tmp + fsync + rename +
/// directory fsync). Throws util::ContractError on I/O failure.
void write_epoch_file(const std::string& dir, long long epoch);

struct ReplSenderConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Withhold client ACKs until the standby confirms (see session.cpp).
  bool ack = false;
  /// Bound on each standby-confirmation wait in ack mode.
  double ack_timeout_ms = 5000.0;
  /// Unacked records spooled in memory before the sender goes broken.
  std::size_t queue_cap = 65536;
  double reconnect_initial_ms = 50.0;
  double reconnect_max_ms = 1000.0;
};

/// Streams journal records to one standby from a dedicated thread.
/// offer() never blocks on the network; ack-mode waiting is explicit
/// (wait_acked) so sessions can release their locks first.
class ReplSender {
 public:
  /// offer() result meaning "this record will never be confirmed".
  static constexpr std::uint64_t kFailedIndex = ~std::uint64_t{0};

  enum class WaitResult { kAcked, kTimeout, kFenced, kBroken };

  ReplSender(ReplSenderConfig config, long long epoch);
  ~ReplSender();

  ReplSender(const ReplSender&) = delete;
  ReplSender& operator=(const ReplSender&) = delete;

  void start();
  /// Idempotent; joins the sender thread.
  void stop();

  /// Enqueues one journal record payload for `session` and returns its
  /// replication index (monotonic from 1) via *index. Returns false —
  /// and sets *index = kFailedIndex — when the sender is fenced or
  /// broken (including a spool overflow caused by this offer).
  bool offer(const std::string& session, std::string payload,
             std::uint64_t* index);

  /// Blocks until the standby acked `index`, the timeout expires, or the
  /// sender goes terminal. kFailedIndex maps to kFenced/kBroken.
  WaitResult wait_acked(std::uint64_t index, double timeout_ms);

  bool acked(std::uint64_t index) const;

  bool ack_mode() const { return config_.ack; }
  double ack_timeout_ms() const { return config_.ack_timeout_ms; }
  bool fenced() const { return fenced_.load(std::memory_order_acquire); }
  bool broken() const { return broken_.load(std::memory_order_acquire); }
  bool connected() const { return connected_.load(std::memory_order_acquire); }
  /// Highest epoch observed from the standby (>= our own once fenced).
  long long peer_epoch() const;
  std::uint64_t offered() const;
  std::uint64_t acked_index() const;

 private:
  struct Pending {
    std::uint64_t index = 0;
    std::string session;
    std::string payload;
    double enqueued_ms = 0.0;  // steady-clock ms, for the lag gauge
  };

  void run();
  /// Streams over one live connection; returns to reconnect or exit.
  void serve_connection(class Socket& sock);
  bool handshake(class Socket& sock);
  void handle_reply_locked(const std::string& line, bool* fatal);
  void update_lag_gauges_locked();
  bool sleep_backoff(double* backoff_ms);

  ReplSenderConfig config_;
  long long epoch_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;     // unacked records, oldest first
  std::size_t queue_bytes_ = 0;
  std::uint64_t next_index_ = 1;  // next offer() gets this index
  std::uint64_t sent_index_ = 0;  // highest index written to the socket
  std::uint64_t acked_index_ = 0;
  long long peer_epoch_ = 0;
  bool stop_ = false;
  bool ever_connected_ = false;

  std::atomic<bool> connected_{false};
  std::atomic<bool> fenced_{false};
  std::atomic<bool> broken_{false};

  int wake_read_ = -1;   // self-pipe: offer()/stop() wake the poll loop
  int wake_write_ = -1;
  std::thread thread_;
};

}  // namespace amf::svc
