// chaos.hpp — fault-injecting in-process proxy for crash/partition tests.
//
// A ChaosProxy sits between a Client and a Server on loopback TCP and
// mangles the byte stream the way real networks and dying processes do:
//
//   * delayed chunks      (latency spikes; exercises client timeouts)
//   * split chunks        (one line arriving in several TCP segments;
//                          exercises LineReader's partial-line buffering)
//   * torn writes         (a prefix of a chunk is delivered, then the
//                          connection resets — the receiver holds half a
//                          request or half an ACK)
//   * connection resets   (both directions shut down mid-stream)
//
// Faults fire per forwarded chunk from a seeded RNG, so a chaos test is
// reproducible: same seed, same fault schedule. The proxy counts what it
// injected (faults()) and what it carried (connections(), chunks()) so
// tests can assert the run actually exercised faults rather than passing
// vacuously.
//
// The intended harness (svc_chaos_test.cpp): client with a RetryPolicy
// talks through the proxy; every ACKed delta must survive to the final
// snapshot exactly once — resets may eat responses, never acknowledged
// state — which is precisely the idempotent-rid + journal contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "svc/net.hpp"

namespace amf::svc {

struct ChaosConfig {
  /// Upstream server: a Unix-socket path, or (when empty) loopback TCP.
  std::string upstream_unix;
  int upstream_port = 0;

  /// Fault schedule seed (same seed -> same schedule).
  std::uint32_t seed = 1;

  /// Per-chunk fault probabilities, each in [0, 1]. Evaluated in this
  /// order; at most one fault fires per chunk.
  double p_reset = 0.0;       ///< drop the connection outright
  double p_torn_write = 0.0;  ///< forward a strict prefix, then reset
  double p_split = 0.0;       ///< forward in two writes with a gap
  double p_delay = 0.0;       ///< sleep before forwarding
  double delay_ms = 5.0;      ///< gap used by split and delay faults
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosConfig config);
  /// Stops and joins everything still running.
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds an ephemeral loopback port and starts proxying.
  void start();
  /// The port clients connect to (valid after start()).
  int port() const { return port_; }
  /// Stops accepting, resets live connections, joins threads. Idempotent.
  void stop();

  long long connections() const { return connections_.load(); }
  long long chunks() const { return chunks_.load(); }
  long long faults() const { return faults_.load(); }

 private:
  struct Link;  ///< one proxied connection (client sock + upstream sock)

  void accept_loop();
  void pump(const std::shared_ptr<Link>& link, bool client_to_server);
  Socket connect_upstream();

  ChaosConfig config_;
  Socket listener_;
  int port_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  bool started_ = false;
  bool stopped_ = false;

  std::mutex mu_;  ///< guards links_, threads_, rng_
  std::vector<std::shared_ptr<Link>> links_;
  std::vector<std::thread> threads_;
  std::mt19937 rng_;
  std::thread accept_thread_;

  std::atomic<long long> connections_{0};
  std::atomic<long long> chunks_{0};
  std::atomic<long long> faults_{0};
};

}  // namespace amf::svc
