// server.hpp — the amf_serve daemon core: listener, connection threads,
// session registry, graceful drain.
//
// The server listens on a Unix-domain socket or loopback TCP, accepts
// connections on a dedicated thread, and runs one reader thread per
// connection. Request lines are parsed and dispatched: server ops
// (create_session / stats / drain / ping) are handled inline on the
// connection thread; session ops are forwarded to the named Session,
// whose worker replies through a per-connection write lock (responses
// from different sessions interleave safely on one connection, matched
// by request id).
//
// ## Drain
//
// trigger_drain() is async-signal-safe (it writes one byte to a self
// pipe); the SIGTERM handler and the `drain` op both call it. The thread
// in wait_drained() then performs the drain exactly once:
//   1. stop accepting (the accept loop watches the same pipe),
//   2. refuse new session work with typed `draining` errors,
//   3. drain every session (queued work is served, never dropped),
//   4. write the snapshot file (config.snapshot_path) — reloadable via
//      `amf_serve --restore`,
//   5. close connections and join all threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/net.hpp"
#include "svc/session.hpp"

namespace amf::svc {

struct ServerConfig {
  /// Unix-domain socket path; non-empty selects AF_UNIX.
  std::string unix_path;
  /// Loopback TCP port (0 = ephemeral); used when unix_path is empty.
  int tcp_port = 0;
  /// Defaults for new sessions (create_session may override
  /// batch_window_ms and policy).
  SessionConfig session;
  /// Where the graceful drain writes the sessions snapshot ("" = skip).
  std::string snapshot_path;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  /// Triggers and completes a drain if one has not run yet.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads a drain-snapshot file (sessions are recreated with the
  /// server's default SessionConfig). Call before start().
  void restore_from_file(const std::string& path);

  /// Binds the listener and spawns the accept thread.
  void start();

  /// The bound TCP port (after start(); -1 on a unix-socket server).
  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// Requests a graceful drain. Async-signal-safe (signal handlers may
  /// call it); returns immediately.
  void trigger_drain();

  /// Blocks until a drain is triggered, then performs it (first caller
  /// does the work; later callers wait for completion).
  void wait_drained();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  struct Conn {
    Socket sock;
    std::mutex write_mu;
    /// Serialized full-line write; false once the connection is dead.
    bool write(const std::string& line);
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Conn> conn);
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void handle_create_session(const Request& req,
                             const std::shared_ptr<Conn>& conn);
  void handle_stats(const Request& req, const std::shared_ptr<Conn>& conn);
  void perform_drain();
  void add_session(std::unique_ptr<Session> session);

  ServerConfig config_;
  Socket listener_;
  int bound_port_ = -1;
  int wake_read_ = -1;   ///< self-pipe: accept loop + wait_drained watch it
  int wake_write_ = -1;  ///< trigger_drain writes here (async-signal-safe)

  std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;

  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  bool started_ = false;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drain_done_ = false;
  bool drain_running_ = false;
};

}  // namespace amf::svc
