// server.hpp — the amf_serve daemon core: listener, connection threads,
// session registry, graceful drain.
//
// The server listens on a Unix-domain socket or loopback TCP, accepts
// connections on a dedicated thread, and runs one reader thread per
// connection. Request lines are parsed and dispatched: server ops
// (create_session / stats / drain / ping) are handled inline on the
// connection thread; session ops are forwarded to the named Session,
// whose worker replies through a per-connection write lock (responses
// from different sessions interleave safely on one connection, matched
// by request id).
//
// ## Drain
//
// trigger_drain() is async-signal-safe (it writes one byte to a self
// pipe); the SIGTERM handler and the `drain` op both call it. The thread
// in wait_drained() then performs the drain exactly once:
//   1. stop accepting (the accept loop watches the same pipe),
//   2. refuse new session work with typed `draining` errors,
//   3. drain every session (queued work is served, never dropped),
//   4. write the snapshot file (config.snapshot_path) — reloadable via
//      `amf_serve --restore`,
//   5. close connections and join all threads.
//
// ## Durability (--journal)
//
// With `journal_dir` set, every session owns a write-ahead log at
// `<journal_dir>/<name>.wal` (the name is percent-escaped so a hostile
// session name cannot traverse the filesystem). create_session writes the
// session's birth record before acknowledging; deltas are journaled by
// the session before their ACKs (see session.hpp). After a crash,
// recover_from_journal() — called before start() — rebuilds every
// session from its log: the leading create/snapshot record seeds the
// state, delta records replay through the live validate/apply path, and
// a torn tail or a rejected record truncates the log with a warning
// instead of refusing to start. A graceful drain compacts each log to a
// single snapshot record. When both --restore and --journal are given,
// the restore file wins for the sessions it names: their journals are
// reset to the restored state and recovery skips them with a warning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/slo.hpp"
#include "svc/http.hpp"
#include "svc/journal.hpp"
#include "svc/net.hpp"
#include "svc/session.hpp"

namespace amf::svc {

struct ServerConfig {
  /// Unix-domain socket path; non-empty selects AF_UNIX.
  std::string unix_path;
  /// Loopback TCP port (0 = ephemeral); used when unix_path is empty.
  int tcp_port = 0;
  /// Defaults for new sessions (create_session may override
  /// batch_window_ms and policy).
  SessionConfig session;
  /// Where the graceful drain writes the sessions snapshot ("" = skip).
  std::string snapshot_path;
  /// Directory of per-session write-ahead journals ("" = no journaling).
  std::string journal_dir;
  /// When journaled appends reach the disk (see journal.hpp).
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// HTTP telemetry port (-1 = no HTTP listener; 0 = ephemeral, see
  /// http_port() after start()).  Serves GET /metrics, /healthz,
  /// /tracez, and /slo on loopback; read-only.
  int http_port = -1;
  /// Request rate limit for the HTTP listener (see http.hpp).
  HttpOptions http;
  /// Rolling SLO windows (gauges + /slo).  The ticker runs only while
  /// the HTTP listener is up; window width is slo.window_s seconds.
  obs::SloConfig slo;
};

/// What recover_from_journal() rebuilt, for operator logging.
struct RecoveryReport {
  int sessions = 0;       ///< sessions rebuilt from journals
  long long deltas = 0;   ///< delta records replayed
  std::vector<std::string> warnings;  ///< torn tails, rejected records, ...
};

class Server {
 public:
  explicit Server(ServerConfig config);
  /// Triggers and completes a drain if one has not run yet.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads a drain-snapshot file (sessions are recreated with the
  /// server's default SessionConfig). Call before start(). Throws
  /// util::ContractError naming the file (and the offending session
  /// entry) on a missing, malformed, or truncated snapshot — the daemon
  /// exits nonzero instead of serving a silently partial restore. When
  /// journaling is on, each restored session gets a fresh journal seeded
  /// with a snapshot record of the restored state.
  void restore_from_file(const std::string& path);

  /// Rebuilds sessions from `journal_dir` (every `*.wal` file). Call
  /// before start(), after any restore_from_file(). Tolerant by design:
  /// torn tails are truncated, unreadable or rejected records stop that
  /// session's replay at the last good prefix, and every such event is a
  /// warning in the report, never a refusal to start.
  RecoveryReport recover_from_journal();

  /// Binds the listener and spawns the accept thread.
  void start();

  /// The bound TCP port (after start(); -1 on a unix-socket server).
  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// The bound HTTP telemetry port (after start(); -1 when disabled).
  int http_port() const;

  /// The SLO tracker backing the gauges and /slo (nullptr when the HTTP
  /// listener is disabled).
  const obs::SloTracker* slo() const { return slo_.get(); }

  /// Requests a graceful drain. Async-signal-safe (signal handlers may
  /// call it); returns immediately.
  void trigger_drain();

  /// Blocks until a drain is triggered, then performs it (first caller
  /// does the work; later callers wait for completion).
  void wait_drained();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  struct Conn {
    Socket sock;
    std::mutex write_mu;
    /// Serialized full-line write; false once the connection is dead.
    bool write(const std::string& line);
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Conn> conn);
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void handle_create_session(const Request& req,
                             const std::shared_ptr<Conn>& conn);
  void handle_stats(const Request& req, const std::shared_ptr<Conn>& conn);
  void perform_drain();
  void add_session(std::unique_ptr<Session> session);
  /// Routes one telemetry GET (listener thread).
  HttpResponse handle_http(const std::string& path,
                           const std::string& query);
  void slo_ticker_loop();
  /// `<journal_dir>/<percent-escaped name>.wal`.
  std::string journal_path(const std::string& session_name) const;
  /// Creates the session's journal (truncating any stale file), writes
  /// `birth_payload` as the leading record, and attaches it.
  void attach_fresh_journal(Session* session, const std::string& birth_payload);

  ServerConfig config_;
  Socket listener_;
  int bound_port_ = -1;
  int wake_read_ = -1;   ///< self-pipe: accept loop + wait_drained watch it
  int wake_write_ = -1;  ///< trigger_drain writes here (async-signal-safe)

  std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;

  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  bool started_ = false;

  // --- telemetry sidecar (HTTP listener + SLO ticker) ---
  std::unique_ptr<HttpListener> http_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::thread slo_thread_;
  std::mutex slo_mu_;
  std::condition_variable slo_cv_;
  bool slo_stop_ = false;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drain_done_ = false;
  bool drain_running_ = false;
};

}  // namespace amf::svc
