// server.hpp — the amf_serve daemon core: listener, connection threads,
// session registry, graceful drain.
//
// The server listens on a Unix-domain socket or loopback TCP, accepts
// connections on a dedicated thread, and runs one reader thread per
// connection. Request lines are parsed and dispatched: server ops
// (create_session / stats / drain / ping) are handled inline on the
// connection thread; session ops are forwarded to the named Session,
// whose worker replies through a per-connection write lock (responses
// from different sessions interleave safely on one connection, matched
// by request id).
//
// ## Drain
//
// trigger_drain() is async-signal-safe (it writes one byte to a self
// pipe); the SIGTERM handler and the `drain` op both call it. The thread
// in wait_drained() then performs the drain exactly once:
//   1. stop accepting (the accept loop watches the same pipe),
//   2. refuse new session work with typed `draining` errors,
//   3. drain every session (queued work is served, never dropped),
//   4. write the snapshot file (config.snapshot_path) — reloadable via
//      `amf_serve --restore`,
//   5. close connections and join all threads.
//
// ## Durability (--journal)
//
// With `journal_dir` set, every session owns a write-ahead log at
// `<journal_dir>/<name>.wal` (the name is percent-escaped so a hostile
// session name cannot traverse the filesystem). create_session writes the
// session's birth record before acknowledging; deltas are journaled by
// the session before their ACKs (see session.hpp). After a crash,
// recover_from_journal() — called before start() — rebuilds every
// session from its log: the leading create/snapshot record seeds the
// state, delta records replay through the live validate/apply path, and
// a torn tail or a rejected record truncates the log with a warning
// instead of refusing to start. A graceful drain compacts each log to a
// single snapshot record. When both --restore and --journal are given,
// the restore file wins for the sessions it names: their journals are
// reset to the restored state and recovery skips them with a warning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/slo.hpp"
#include "svc/eventloop.hpp"
#include "svc/executor.hpp"
#include "svc/http.hpp"
#include "svc/journal.hpp"
#include "svc/net.hpp"
#include "svc/repl.hpp"
#include "svc/session.hpp"

namespace amf::svc {

/// Connection I/O model (see DESIGN.md §16).
enum class IoModel {
  kEpoll,    ///< epoll reactor threads, non-blocking sockets (default)
  kThreads,  ///< legacy one blocking reader thread per connection
};

struct ServerConfig {
  /// Unix-domain socket path; non-empty selects AF_UNIX.
  std::string unix_path;
  /// Loopback TCP port (0 = ephemeral); used when unix_path is empty.
  int tcp_port = 0;
  /// Defaults for new sessions (create_session may override
  /// batch_window_ms and policy).
  SessionConfig session;
  /// Where the graceful drain writes the sessions snapshot ("" = skip).
  std::string snapshot_path;
  /// Directory of per-session write-ahead journals ("" = no journaling).
  std::string journal_dir;
  /// When journaled appends reach the disk (see journal.hpp).
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// HTTP telemetry port (-1 = no HTTP listener; 0 = ephemeral, see
  /// http_port() after start()).  Serves GET /metrics, /healthz,
  /// /tracez, and /slo on loopback; read-only.
  int http_port = -1;
  /// Request rate limit for the HTTP listener (see http.hpp).
  HttpOptions http;
  /// Rolling SLO windows (gauges + /slo).  The ticker runs only while
  /// the HTTP listener is up; window width is slo.window_s seconds.
  obs::SloConfig slo;

  // --- scale-out serving (see DESIGN.md §16) ---
  /// Connection layer: epoll reactors (default) or thread-per-connection.
  IoModel io_model = IoModel::kEpoll;
  /// Reactor threads in epoll mode (0 = auto).
  std::size_t io_threads = 0;
  /// Shared session executor: sessions run as tasks on a fixed pool
  /// instead of one worker thread each. Off = legacy per-session worker.
  bool executor = true;
  /// Executor pool width (0 = auto: hardware concurrency).
  std::size_t executor_threads = 0;
  /// accept() backlog (0 = SOMAXCONN). The old hard-coded 64 caused
  /// spurious connect timeouts under thousands of concurrent connects.
  int backlog = 0;

  // --- high availability (see repl.hpp and DESIGN.md §15) ---
  /// Primary side: stream every journal record to a warm standby at
  /// "host:port" (or just "port", loopback). Requires journal_dir.
  std::string replicate_to;
  /// Withhold delta ACKs until the standby confirms the append (repl-ack
  /// mode). Default off: async replication, lag exported as gauges.
  bool repl_ack = false;
  /// Bound on each standby-confirmation wait in repl-ack mode.
  double repl_ack_timeout_ms = 5000.0;
  /// Standby side: listen for a primary's replication stream on this
  /// loopback TCP port (-1 = not a standby; 0 = ephemeral, see
  /// repl_port()). A standby serves ping/stats/promote and answers all
  /// session work with typed `not_primary` until promoted.
  int standby_port = -1;
};

/// What recover_from_journal() rebuilt, for operator logging.
struct RecoveryReport {
  int sessions = 0;       ///< sessions rebuilt from journals
  long long deltas = 0;   ///< delta records replayed
  std::vector<std::string> warnings;  ///< torn tails, rejected records, ...
};

class Server {
 public:
  explicit Server(ServerConfig config);
  /// Triggers and completes a drain if one has not run yet.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads a drain-snapshot file (sessions are recreated with the
  /// server's default SessionConfig). Call before start(). Throws
  /// util::ContractError naming the file (and the offending session
  /// entry) on a missing, malformed, or truncated snapshot — the daemon
  /// exits nonzero instead of serving a silently partial restore. When
  /// journaling is on, each restored session gets a fresh journal seeded
  /// with a snapshot record of the restored state.
  void restore_from_file(const std::string& path);

  /// Rebuilds sessions from `journal_dir` (every `*.wal` file). Call
  /// before start(), after any restore_from_file(). Tolerant by design:
  /// torn tails are truncated, unreadable or rejected records stop that
  /// session's replay at the last good prefix, and every such event is a
  /// warning in the report, never a refusal to start.
  RecoveryReport recover_from_journal();

  /// Binds the listener and spawns the accept thread.
  void start();

  /// The bound TCP port (after start(); -1 on a unix-socket server).
  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// The bound HTTP telemetry port (after start(); -1 when disabled).
  int http_port() const;

  /// The SLO tracker backing the gauges and /slo (nullptr when the HTTP
  /// listener is disabled).
  const obs::SloTracker* slo() const { return slo_.get(); }

  /// Requests a graceful drain. Async-signal-safe (signal handlers may
  /// call it); returns immediately.
  void trigger_drain();

  /// Promotes a standby to primary: fences the replication stream, bumps
  /// the epoch above everything seen, persists it, and starts serving
  /// session work. Idempotent (promoting a primary is a no-op). Returns
  /// {"role","epoch","promoted"} — the `promote` op's response body.
  Json promote();

  /// Async-signal-safe promotion request (the SIGUSR1 handler calls it);
  /// a watcher thread performs the actual promote().
  void trigger_promote();

  bool is_standby() const {
    return standby_.load(std::memory_order_acquire);
  }
  long long epoch() const;

  /// The bound replication-listener port (after start(); -1 when not a
  /// standby).
  int repl_port() const { return repl_bound_port_; }

  /// The replication sender (nullptr unless replicate_to is set).
  const ReplSender* repl_sender() const { return repl_sender_.get(); }

  /// Blocks until a drain is triggered, then performs it (first caller
  /// does the work; later callers wait for completion).
  void wait_drained();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  /// One client connection, whichever I/O model carries it. Responders
  /// hold shared_ptrs, so a Conn outlives its socket teardown and a late
  /// write() is a clean false, never a use-after-free.
  struct Conn {
    virtual ~Conn() = default;
    /// Serialized full-line write; false once the connection is dead.
    virtual bool write(const std::string& line) = 0;
    /// Drain-time force-close: unblocks the reader (thread mode) or
    /// surfaces EOF to the reactor (epoll mode). Idempotent.
    virtual void close_now() = 0;
  };
  /// Thread mode: blocking socket + a dedicated reader thread.
  struct ThreadConn : Conn {
    Socket sock;
    std::mutex write_mu;
    bool write(const std::string& line) override;
    void close_now() override;
  };
  /// Epoll mode: non-blocking socket on a reactor (see server.cpp).
  struct EventConn;

  void accept_loop();
  void adopt_connection_epoll(Socket sock);
  void adopt_connection_thread(Socket sock);
  /// Joins connection threads that have announced exit and prunes dead
  /// Conn registrations (thread mode; called from the accept loop so a
  /// long-lived server does not accumulate one joinable thread per
  /// historical connection).
  void reap_finished_connections();
  void connection_loop(std::shared_ptr<ThreadConn> conn);
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void handle_create_session(const Request& req,
                             const std::shared_ptr<Conn>& conn);
  void handle_evict_session(const Request& req,
                            const std::shared_ptr<Conn>& conn);
  void handle_stats(const Request& req, const std::shared_ptr<Conn>& conn);
  void perform_drain();
  void add_session(std::unique_ptr<Session> session);
  /// Routes one telemetry GET (listener thread).
  HttpResponse handle_http(const std::string& path,
                           const std::string& query);
  void slo_ticker_loop();
  /// `<journal_dir>/<percent-escaped name>.wal`.
  std::string journal_path(const std::string& session_name) const;
  /// Creates the session's journal (truncating any stale file), writes
  /// `birth_payload` as the leading record, and attaches it.
  void attach_fresh_journal(Session* session, const std::string& birth_payload);
  /// Builds a session from a birth record (create or snapshot kind) with
  /// per-session config overrides applied. Shared by journal recovery
  /// and the standby receiver. Throws on a malformed record.
  std::unique_ptr<Session> session_from_birth(const Json& birth,
                                              std::string* name_out);
  /// Standby receiver: one accepted replication connection at a time.
  void repl_accept_loop();
  void repl_serve_connection(Socket& sock);
  /// Applies one streamed journal record (standby side, under repl_mu_).
  /// Duplicates (resends after reconnect) are skipped and still acked.
  bool repl_apply_record(const std::string& session_name, const Json& record,
                         std::string* error);
  /// Blocks on the promote pipe; SIGUSR1 / trigger_promote() feed it.
  void promote_watcher_loop();
  void persist_epoch_locked();

  ServerConfig config_;
  Socket listener_;
  int bound_port_ = -1;
  int wake_read_ = -1;   ///< self-pipe: accept loop + wait_drained watch it
  int wake_write_ = -1;  ///< trigger_drain writes here (async-signal-safe)

  std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;
  /// Thread mode: live reader threads by id; finished ones move to
  /// finished_conn_threads_ (a thread cannot join itself) and are
  /// reaped by the accept loop.
  std::map<std::thread::id, std::thread> conn_threads_;
  std::vector<std::thread::id> finished_conn_threads_;
  std::atomic<long long> open_conns_{0};

  /// Scale-out serving: the reactor set (epoll mode) and the shared
  /// session executor (executor mode). The executor is built in the
  /// constructor — restore/recovery create sessions before start() and
  /// those sessions already need config_.session.executor.
  std::unique_ptr<EventLoop> eventloop_;
  std::unique_ptr<SvcExecutor> executor_;

  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  bool started_ = false;

  // --- telemetry sidecar (HTTP listener + SLO ticker) ---
  std::unique_ptr<HttpListener> http_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::thread slo_thread_;
  std::mutex slo_mu_;
  std::condition_variable slo_cv_;
  bool slo_stop_ = false;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drain_done_ = false;
  bool drain_running_ = false;

  // --- replication / HA ---
  std::unique_ptr<ReplSender> repl_sender_;  ///< primary side
  Socket repl_listener_;                     ///< standby side
  int repl_bound_port_ = -1;
  std::thread repl_thread_;
  int repl_wake_read_ = -1;  ///< self-pipe: drain stops the repl accept loop
  int repl_wake_write_ = -1;
  std::mutex repl_conn_mu_;
  int repl_conn_fd_ = -1;  ///< live replication connection (drain shuts it)
  std::atomic<bool> standby_{false};
  /// Guards epoch_/peer_epoch_ and serializes record application against
  /// promotion: a streamed record is either fully applied before the
  /// promote or rejected by the bumped epoch, never half-raced.
  mutable std::mutex repl_mu_;
  long long epoch_ = 1;
  long long peer_epoch_ = 0;  ///< highest epoch seen from a peer
  int promote_read_ = -1;  ///< promote self-pipe (SIGUSR1-safe)
  int promote_write_ = -1;
  std::thread promote_thread_;
};

}  // namespace amf::svc
