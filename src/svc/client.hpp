// client.hpp — blocking client for the amf_serve protocol.
//
// One Client wraps one connection and issues one request at a time:
// call() sends a line and blocks until the response with the matching id
// arrives (responses to other ids on the same connection are skipped —
// they belong to a different Client sharing the socket, which this
// blocking client never does, so in practice the next line is the
// answer). Typed error responses are rethrown as SvcError with the
// server's code, so callers branch on code() — e.g. kOverloaded for
// load-shedding backoff.
//
// ## Timeouts and retries (RetryPolicy)
//
// By default the client blocks forever and never retries (the seed
// behaviour: a dead connection is a util::ContractError). A RetryPolicy
// turns on:
//   * connect_timeout_ms — bounds each connect (SvcError(kTimeout));
//   * read_timeout_ms — SO_RCVTIMEO on the socket, so a silent server
//     yields SvcError(kTimeout) instead of a hang;
//   * max_attempts > 1 — transparent reconnect-and-retry for IDEMPOTENT
//     ops only, with capped exponential backoff and seeded jitter
//     between attempts. Deltas are made idempotent by attaching a
//     client-generated `rid` (the SAME rid on every attempt — the
//     server's dedup window turns a re-sent delta into a re-ACK, see
//     proto.hpp); solve/snapshot/stats/ping are naturally idempotent.
//     create_session and drain are NOT retried: a lost create ACK is
//     ambiguous (the retry would hit session_exists).
// When the budget runs out the client throws SvcError(kRetriesExhausted)
// naming the attempts and the last transport error; a timeout with no
// retries configured surfaces as SvcError(kTimeout).
//
// ## Endpoint failover (DESIGN.md §15)
//
// connect_endpoints() takes an ORDERED list of server addresses (primary
// first, standbys after). The client talks to one endpoint at a time and
// rotates to the next on: a connect failure, a dead/timed-out roundtrip,
// or a typed `not_primary` response (the endpoint is an unpromoted
// standby). Rotation only happens when a retry is allowed — the op is
// idempotent and attempts remain — so a non-retryable op surfaces its
// error instead of silently switching servers. Combined with rid dedup
// on the server, a delta retried across a failover is applied exactly
// once: the standby inherited the primary's dedup window through the
// replication stream, so the re-sent rid is answered with the original
// ACK. ClientStats::failovers counts rotations.
//
// The convenience wrappers mirror the protocol ops one-to-one and return
// the full response object (envelope included), so callers can read
// "seq", "job", "tier", "allocation" as documented in DESIGN.md §11.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "svc/net.hpp"
#include "svc/proto.hpp"

namespace amf::svc {

/// Counters over one Client's lifetime (single-threaded, like the
/// client itself).  Surfaced by `amf_client --verbose` so operators can
/// see the retry machinery work instead of inferring it from latency.
struct ClientStats {
  std::uint64_t calls = 0;       ///< call() invocations
  std::uint64_t retries = 0;     ///< re-attempts after a failed one
  std::uint64_t reconnects = 0;  ///< reconnects after the initial connect
  /// Connect and read timeouts observed, one per timed-out endpoint
  /// attempt (a reconnect sweep that times out on two endpoints counts
  /// two).
  std::uint64_t timeouts = 0;
  std::uint64_t failovers = 0;   ///< endpoint rotations (see header doc)
  double backoff_ms = 0.0;       ///< total time slept between attempts
};

/// One server address for the failover list: a non-empty unix_path
/// selects AF_UNIX, otherwise TCP host:port.
struct Endpoint {
  std::string unix_path;
  std::string host;
  int port = 0;
};

/// Parses "unix:PATH", "HOST:PORT", or a bare "PORT" (loopback TCP).
/// Throws util::ContractError naming the spec on anything else.
Endpoint parse_endpoint(const std::string& spec);

/// Client-side fault handling. The default is the maximally patient
/// configuration: block forever, never retry.
struct RetryPolicy {
  /// Total tries per call (1 = no retries). Only idempotent ops retry.
  int max_attempts = 1;
  /// Bound on each connect (0 = OS default blocking connect).
  double connect_timeout_ms = 0.0;
  /// SO_RCVTIMEO per read; a blocked response wait past this throws
  /// kTimeout (0 = block forever).
  double read_timeout_ms = 0.0;
  /// First backoff delay; doubles per attempt up to backoff_max_ms.
  double backoff_initial_ms = 10.0;
  double backoff_max_ms = 1000.0;
  /// Seed for the backoff jitter (0 = nondeterministic). Tests pin it.
  std::uint32_t jitter_seed = 0;
};

class Client {
 public:
  static Client connect_unix(const std::string& path,
                             RetryPolicy retry = RetryPolicy());
  static Client connect_tcp(const std::string& host, int port,
                            RetryPolicy retry = RetryPolicy());
  /// Ordered failover list: the client connects to the first reachable
  /// endpoint and rotates on failures (see the header doc). Throws when
  /// every endpoint refuses the initial connect.
  static Client connect_endpoints(std::vector<Endpoint> endpoints,
                                  RetryPolicy retry = RetryPolicy());

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request (v and id are filled in; op-specific parameters
  /// come from `body`, which may be a null Json for none) and blocks for
  /// the matching response. Throws SvcError on a typed error response
  /// (including client-side kTimeout / kRetriesExhausted) and
  /// util::ContractError when the connection dies with retries disabled.
  Json call(Op op, const std::string& session, Json body = Json());

  /// Raw round-trip for tests and the --raw client mode: sends the line
  /// verbatim (appending '\n' when missing) and returns the next response
  /// line from the server, unparsed. Never retries.
  std::string call_line(const std::string& line);

  // Protocol ops. All throw SvcError on typed errors.
  Json create_session(const std::string& name,
                      const std::vector<double>& capacities,
                      Json overrides = Json());
  /// Returns the job's stable handle.
  long long add_job(const std::string& session,
                    const std::vector<double>& demands,
                    const std::vector<double>& workloads = {},
                    double weight = 1.0);
  void finish_job(const std::string& session, long long job);
  void site_event(const std::string& session, int site, double factor);
  void set_capacity(const std::string& session, int site, double value);
  Json solve(const std::string& session, double budget_ms = 0.0,
             bool latest = false);
  Json snapshot(const std::string& session);
  Json stats(const std::string& format = "json");
  Json drain();
  bool ping();
  /// Promotes the CURRENT endpoint (a warm standby) to primary.
  /// Idempotent; returns {"role","epoch","promoted"}.
  Json promote();
  /// Admin: drains `session` on the server and removes it, returning
  /// {"seq","snapshot","dedup"} for re-creation elsewhere (shard
  /// handoff, DESIGN.md §16). NOT retried — a lost ACK is ambiguous.
  Json evict_session(const std::string& session);

  /// Enables wire trace propagation: every subsequent call() stamps a
  /// fresh numeric "trace" id (32-bit random prefix + counter, < 2^53
  /// so it survives the JSON number type exactly).  The server threads
  /// the id through its spans, so a /tracez dump joins client requests
  /// to server work.  Off by default (zero wire overhead).
  void set_tracing(bool on) { trace_on_ = on; }
  /// The trace id stamped on the most recent call (0 = none yet).
  std::uint64_t last_trace() const { return last_trace_; }

  /// Lifetime retry/reconnect counters (see ClientStats).
  const ClientStats& client_stats() const { return stats_; }

 private:
  enum class Outcome { kOk, kTimeout, kDead };

  Client(std::vector<Endpoint> endpoints, RetryPolicy retry);

  /// (Re)establishes the connection per the retry policy's timeouts,
  /// trying each endpoint at most once starting from the current one.
  /// Counts every timed-out endpoint attempt in stats_.timeouts and
  /// every rotation in stats_.failovers; *counted reports whether the
  /// failure that escaped was already counted there.
  void reconnect(bool* counted);
  /// Advances to the next endpoint (no-op with a single endpoint).
  void rotate_endpoint();
  /// One send + matched-response read on the current connection.
  Outcome roundtrip(const std::string& line, long long id, Json* out,
                    std::string* cause);
  /// Raises the typed error from an ok:false response, else returns it.
  Json unwrap(Json response);
  double backoff_delay_ms(int attempt);

  std::vector<Endpoint> endpoints_;
  std::size_t endpoint_idx_ = 0;  ///< the endpoint currently in use
  RetryPolicy retry_;
  Socket sock_;
  LineReader reader_;
  long long next_id_ = 0;
  std::string rid_prefix_;  ///< per-client uniqueness for generated rids
  long long next_rid_ = 0;
  std::mt19937 rng_;  ///< backoff jitter (seeded per policy)
  bool trace_on_ = false;
  std::uint64_t trace_prefix_ = 0;  ///< random high bits of trace ids
  std::uint64_t next_trace_ = 0;
  std::uint64_t last_trace_ = 0;
  bool connected_once_ = false;
  ClientStats stats_;
};

}  // namespace amf::svc
