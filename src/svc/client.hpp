// client.hpp — blocking client for the amf_serve protocol.
//
// One Client wraps one connection and issues one request at a time:
// call() sends a line and blocks until the response with the matching id
// arrives (responses to other ids on the same connection are skipped —
// they belong to a different Client sharing the socket, which this
// blocking client never does, so in practice the next line is the
// answer). Typed error responses are rethrown as SvcError with the
// server's code, so callers branch on code() — e.g. kOverloaded for
// load-shedding backoff.
//
// The convenience wrappers mirror the protocol ops one-to-one and return
// the full response object (envelope included), so callers can read
// "seq", "job", "tier", "allocation" as documented in DESIGN.md §11.
#pragma once

#include <string>
#include <vector>

#include "svc/net.hpp"
#include "svc/proto.hpp"

namespace amf::svc {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request (v and id are filled in; op-specific parameters
  /// come from `body`, which may be a null Json for none) and blocks for
  /// the matching response. Throws SvcError on a typed error response and
  /// util::ContractError when the connection dies.
  Json call(Op op, const std::string& session, Json body = Json());

  /// Raw round-trip for tests and the --raw client mode: sends the line
  /// verbatim (appending '\n' when missing) and returns the next response
  /// line from the server, unparsed.
  std::string call_line(const std::string& line);

  // Protocol ops. All throw SvcError on typed errors.
  Json create_session(const std::string& name,
                      const std::vector<double>& capacities,
                      Json overrides = Json());
  /// Returns the job's stable handle.
  long long add_job(const std::string& session,
                    const std::vector<double>& demands,
                    const std::vector<double>& workloads = {},
                    double weight = 1.0);
  void finish_job(const std::string& session, long long job);
  void site_event(const std::string& session, int site, double factor);
  void set_capacity(const std::string& session, int site, double value);
  Json solve(const std::string& session, double budget_ms = 0.0,
             bool latest = false);
  Json snapshot(const std::string& session);
  Json stats(const std::string& format = "json");
  Json drain();
  bool ping();

 private:
  explicit Client(Socket sock);

  Socket sock_;
  LineReader reader_;
  long long next_id_ = 0;
};

}  // namespace amf::svc
