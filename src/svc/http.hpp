// http.hpp — a minimal embedded HTTP/1.1 listener for read-only
// telemetry endpoints (/metrics, /healthz, /tracez, /slo).
//
// Deliberately tiny: GET only, loopback only (it reuses listen_tcp,
// which binds 127.0.0.1), one request per connection (Connection:
// close), requests served sequentially on one listener thread.  That
// profile is exactly what a scrape loop or a curl needs, keeps the
// attack surface near zero, and makes the listener trivially TSan-clean
// — handlers run on one thread and read shared state only through
// thread-safe snapshots (Registry::snapshot, Tracer::events,
// SloTracker::report).
//
// A token bucket bounds the request rate: a runaway scraper gets 429s,
// not a denial of the allocator's CPU.  Reads carry a receive timeout so
// a peer that connects and stalls cannot wedge the listener.
#pragma once

#include <functional>
#include <string>
#include <thread>

#include "svc/net.hpp"

namespace amf::svc {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a GET's path + raw query string to a response.  Runs on the
/// listener thread; must not block indefinitely.
using HttpHandler =
    std::function<HttpResponse(const std::string& path,
                               const std::string& query)>;

struct HttpOptions {
  /// Token-bucket request rate limit across all endpoints (0 = off).
  double rate_per_s = 50.0;
  double burst = 20.0;
  /// Receive timeout per header read; a stalling peer is dropped.
  double recv_timeout_ms = 2000.0;
};

class HttpListener {
 public:
  /// `port` 0 picks an ephemeral port (see port() after start()).
  HttpListener(int port, HttpHandler handler, HttpOptions options = {});
  ~HttpListener();  ///< stop()s if still running.

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds the loopback listener and spawns the serve thread.  Throws
  /// util::ContractError when the bind fails.
  void start();
  /// Stops accepting, joins the serve thread.  Idempotent.
  void stop();

  /// The bound port (valid after start()).
  int port() const { return bound_port_; }

 private:
  void serve_loop();
  void handle_connection(Socket sock);
  bool admit_locked_thread();  ///< token bucket (listener thread only)

  HttpHandler handler_;
  HttpOptions options_;
  int requested_port_ = 0;
  int bound_port_ = -1;
  Socket listener_;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::thread thread_;
  bool started_ = false;
  bool stopped_ = false;
  double tokens_ = 0.0;
  double last_refill_s_ = 0.0;
};

/// Blocking HTTP GET against loopback `port` (tests, benches, smoke
/// scripts).  Returns false on connect/transport failure; otherwise
/// fills `*body` with the response body and `*status` (when non-null)
/// with the status code.
bool http_get(int port, const std::string& target, std::string* body,
              int* status = nullptr, double timeout_ms = 2000.0);

/// Parses an `--http` address: "port", ":port", or "host:port" where
/// host must be loopback ("127.0.0.1" or "localhost" — the listener
/// never binds wider).  Throws util::ContractError otherwise.
int parse_http_addr(const std::string& addr);

}  // namespace amf::svc
