#include "svc/client.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace amf::svc {

namespace {

/// Deltas are idempotent *via rid* (attached by call()); solve, snapshot,
/// stats, ping, and promote are naturally idempotent. create_session and
/// drain are not: a retry of a lost create ACK would hit session_exists.
bool idempotent_op(Op op) {
  switch (op) {
    case Op::kAddJob:
    case Op::kFinishJob:
    case Op::kSiteEvent:
    case Op::kSetCapacity:
    case Op::kSolve:
    case Op::kSnapshot:
    case Op::kStats:
    case Op::kPing:
    case Op::kPromote:
      return true;
    default:
      return false;
  }
}

std::string endpoint_label(const Endpoint& ep) {
  if (!ep.unix_path.empty()) return "unix:" + ep.unix_path;
  return ep.host + ":" + std::to_string(ep.port);
}

bool delta_op(Op op) {
  return op == Op::kAddJob || op == Op::kFinishJob || op == Op::kSiteEvent ||
         op == Op::kSetCapacity;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.unix_path = spec.substr(5);
    AMF_REQUIRE(!ep.unix_path.empty(),
                "endpoint \"" + spec + "\" names no socket path");
    return ep;
  }
  const auto colon = spec.rfind(':');
  const std::string host = colon == std::string::npos ? "" : spec.substr(0, colon);
  const std::string port_part =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  try {
    ep.port = std::stoi(port_part);
  } catch (const std::exception&) {
    ep.port = 0;
  }
  AMF_REQUIRE(ep.port > 0 && ep.port <= 65535,
              "endpoint \"" + spec + "\" needs unix:PATH, HOST:PORT, or PORT");
  ep.host = host.empty() ? "127.0.0.1" : host;
  return ep;
}

Client::Client(std::vector<Endpoint> endpoints, RetryPolicy retry)
    : endpoints_(std::move(endpoints)),
      retry_(retry),
      reader_(-1),
      rng_(retry.jitter_seed != 0 ? retry.jitter_seed : std::random_device{}()) {
  AMF_REQUIRE(!endpoints_.empty(), "client needs at least one endpoint");
  // Rids must not collide across client restarts while the server's dedup
  // window still remembers the old client, so the prefix is random.
  std::uniform_int_distribution<std::uint32_t> any;
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "r%u", any(rng_));
  rid_prefix_ = prefix;
  // Trace ids follow the same restart-collision logic: 32 random high
  // bits + a 20-bit counter keeps the id unique across restarts AND
  // < 2^53, so it round-trips exactly through the JSON number type.
  trace_prefix_ = static_cast<std::uint64_t>(any(rng_));
  bool counted = false;
  reconnect(&counted);
}

Client Client::connect_unix(const std::string& path, RetryPolicy retry) {
  Endpoint ep;
  ep.unix_path = path;
  return Client(std::vector<Endpoint>{ep}, retry);
}

Client Client::connect_tcp(const std::string& host, int port,
                           RetryPolicy retry) {
  Endpoint ep;
  ep.host = host;
  ep.port = port;
  return Client(std::vector<Endpoint>{ep}, retry);
}

Client Client::connect_endpoints(std::vector<Endpoint> endpoints,
                                 RetryPolicy retry) {
  return Client(std::move(endpoints), retry);
}

void Client::rotate_endpoint() {
  if (endpoints_.size() < 2) return;
  endpoint_idx_ = (endpoint_idx_ + 1) % endpoints_.size();
  ++stats_.failovers;
}

void Client::reconnect(bool* counted) {
  *counted = false;
  std::string cause;
  bool timed_out = false;
  for (std::size_t tried = 0; tried < endpoints_.size(); ++tried) {
    const Endpoint& ep = endpoints_[endpoint_idx_];
    try {
      Socket sock = !ep.unix_path.empty()
                        ? amf::svc::connect_unix(ep.unix_path,
                                                 retry_.connect_timeout_ms)
                        : amf::svc::connect_tcp(ep.host, ep.port,
                                                retry_.connect_timeout_ms);
      if (retry_.read_timeout_ms > 0.0)
        set_recv_timeout_ms(sock.fd(), retry_.read_timeout_ms);
      sock_ = std::move(sock);
      reader_ = LineReader(sock_.fd());
      if (connected_once_) ++stats_.reconnects;
      connected_once_ = true;
      return;
    } catch (const util::ContractError& e) {
      const std::string what = e.what();
      timed_out = what.find("timed out") != std::string::npos;
      // Connect-phase timeouts count exactly like read timeouts, one per
      // endpoint attempt (a sweep that times out twice counts two).
      if (timed_out) {
        ++stats_.timeouts;
        *counted = true;
      }
      cause = endpoint_label(ep) + ": " + what;
      rotate_endpoint();
    }
  }
  // Every endpoint failed; surface the last failure. A timed-out connect
  // is a typed client-side condition, not a contract bug in the caller.
  if (timed_out) throw SvcError(ErrorCode::kTimeout, cause);
  throw util::ContractError(cause);
}

std::string Client::call_line(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  AMF_REQUIRE(sock_.send_all(framed), "client send failed (connection dead)");
  std::string response;
  const LineReader::Status status = reader_.read_line(&response);
  if (status == LineReader::Status::kTimeout)
    throw SvcError(ErrorCode::kTimeout,
                   "no response within the read timeout");
  AMF_REQUIRE(status == LineReader::Status::kLine,
              "connection closed before a response arrived");
  return response;
}

Client::Outcome Client::roundtrip(const std::string& line, long long id,
                                  Json* out, std::string* cause) {
  if (!sock_.valid()) {
    *cause = "connection dead";
    return Outcome::kDead;
  }
  if (!sock_.send_all(line)) {
    *cause = "send failed (connection dead)";
    return Outcome::kDead;
  }
  while (true) {
    std::string response;
    const LineReader::Status status = reader_.read_line(&response);
    if (status == LineReader::Status::kTimeout) {
      *cause = "no response within " + std::to_string(retry_.read_timeout_ms) +
               " ms";
      return Outcome::kTimeout;
    }
    if (status != LineReader::Status::kLine) {
      *cause = "connection closed before a response arrived";
      return Outcome::kDead;
    }
    Json parsed;
    try {
      parsed = Json::parse(response);
    } catch (const std::exception&) {
      *cause = "unparseable response line";
      return Outcome::kDead;  // framing is lost; the connection is useless
    }
    if (parsed.number_or("id", -1.0) != static_cast<double>(id)) continue;
    *out = std::move(parsed);
    return Outcome::kOk;
  }
}

Json Client::unwrap(Json response) {
  if (!response.bool_or("ok", false)) {
    const Json* error = response.find("error");
    const std::string code =
        error != nullptr ? error->string_or("code", "internal") : "internal";
    const std::string message =
        error != nullptr ? error->string_or("message", "") : response.dump();
    throw SvcError(parse_error_code(code), message);
  }
  return response;
}

double Client::backoff_delay_ms(int attempt) {
  double delay = retry_.backoff_initial_ms;
  for (int i = 1; i < attempt && delay < retry_.backoff_max_ms; ++i)
    delay *= 2.0;
  if (delay > retry_.backoff_max_ms) delay = retry_.backoff_max_ms;
  // Jitter in [0.5, 1.0) of the nominal delay: desynchronizes a fleet of
  // clients retrying against the same recovering server.
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  return delay * jitter(rng_);
}

Json Client::call(Op op, const std::string& session, Json body) {
  Json req = body.is_object() ? std::move(body) : Json::object();
  const long long id = ++next_id_;
  req.set("v", Json(kProtocolVersion));
  req.set("id", Json(id));
  req.set("op", Json(std::string(to_string(op))));
  if (!session.empty()) req.set("session", Json(session));
  // One rid per logical delta, attached BEFORE the line is built so every
  // retry re-sends the identical bytes — the server dedups on it.
  if (retry_.max_attempts > 1 && delta_op(op) && req.find("rid") == nullptr)
    req.set("rid", Json(rid_prefix_ + "-" + std::to_string(++next_rid_)));
  // Like the rid, the trace id is stamped before the line is built so
  // every retry carries the SAME id — the /tracez dump then shows the
  // whole retry storm as one flow.
  if (trace_on_ && req.find("trace") == nullptr) {
    last_trace_ = (trace_prefix_ << 20) | (++next_trace_ & 0xFFFFF);
    req.set("trace", Json(static_cast<double>(last_trace_)));
  }
  std::string line = req.dump();
  line += '\n';
  ++stats_.calls;

  const bool retryable = retry_.max_attempts > 1 && idempotent_op(op);
  std::string cause;
  Outcome last = Outcome::kDead;
  for (int attempt = 1;; ++attempt) {
    cause.clear();
    // reconnect() counts its own timeouts (one per endpoint attempt);
    // the flag stops the per-attempt accounting below double-counting.
    bool counted = false;
    if (!sock_.valid()) {
      try {
        reconnect(&counted);
      } catch (const SvcError& e) {
        cause = e.what();
        last = Outcome::kTimeout;
      } catch (const std::exception& e) {
        cause = e.what();
        last = Outcome::kDead;
      }
    }
    if (cause.empty()) {
      Json out;
      last = roundtrip(line, id, &out, &cause);
      if (last == Outcome::kOk) {
        try {
          return unwrap(std::move(out));
        } catch (const SvcError& e) {
          // An unpromoted standby answers session work with not_primary:
          // rotate and retry the SAME bytes against the next endpoint
          // (rid dedup makes a delta that actually reached the old
          // primary exactly-once). A router that cannot reach a backend
          // answers shard_unavailable — the same treatment applies, the
          // next router endpoint may own a healthy path to the shard.
          // Non-retryable ops surface the error.
          const bool rotates = e.code() == ErrorCode::kNotPrimary ||
                               e.code() == ErrorCode::kShardUnavailable;
          if (!rotates || !retryable || endpoints_.size() < 2) throw;
          cause = e.what();
          last = Outcome::kDead;
          sock_.close();
          rotate_endpoint();
        }
      } else {
        // A timed-out wait abandons the connection: a late response
        // would desynchronize every call after this one. Rotate so the
        // retry tries the next endpoint in the list.
        sock_.close();
        if (retryable) rotate_endpoint();
      }
    }
    if (last == Outcome::kTimeout && !counted) ++stats_.timeouts;
    if (!retryable || attempt >= retry_.max_attempts) break;
    const double delay = backoff_delay_ms(attempt);
    ++stats_.retries;
    stats_.backoff_ms += delay;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
  }

  if (retryable)
    throw SvcError(ErrorCode::kRetriesExhausted,
                   std::string(to_string(op)) + " failed after " +
                       std::to_string(retry_.max_attempts) +
                       " attempts; last error: " + cause);
  if (last == Outcome::kTimeout) throw SvcError(ErrorCode::kTimeout, cause);
  throw util::ContractError("client " + std::string(to_string(op)) + ": " +
                            cause);
}

Json Client::create_session(const std::string& name,
                            const std::vector<double>& capacities,
                            Json overrides) {
  Json body = overrides.is_object() ? std::move(overrides) : Json::object();
  body.set("capacities", to_json(capacities));
  return call(Op::kCreateSession, name, std::move(body));
}

long long Client::add_job(const std::string& session,
                          const std::vector<double>& demands,
                          const std::vector<double>& workloads,
                          double weight) {
  Json body = Json::object();
  body.set("demands", to_json(demands));
  if (!workloads.empty()) body.set("workloads", to_json(workloads));
  body.set("weight", Json(weight));
  Json response = call(Op::kAddJob, session, std::move(body));
  const Json* job = response.find("job");
  AMF_REQUIRE(job != nullptr && job->is_number(),
              "add_job response lacks a job id");
  return static_cast<long long>(job->as_number());
}

void Client::finish_job(const std::string& session, long long job) {
  Json body = Json::object();
  body.set("job", Json(job));
  call(Op::kFinishJob, session, std::move(body));
}

void Client::site_event(const std::string& session, int site, double factor) {
  Json body = Json::object();
  body.set("site", Json(static_cast<long long>(site)));
  body.set("capacity_factor", Json(factor));
  call(Op::kSiteEvent, session, std::move(body));
}

void Client::set_capacity(const std::string& session, int site, double value) {
  Json body = Json::object();
  body.set("site", Json(static_cast<long long>(site)));
  body.set("value", Json(value));
  call(Op::kSetCapacity, session, std::move(body));
}

Json Client::solve(const std::string& session, double budget_ms, bool latest) {
  Json body = Json::object();
  if (budget_ms > 0.0) body.set("budget_ms", Json(budget_ms));
  if (latest) body.set("latest", Json(true));
  return call(Op::kSolve, session, std::move(body));
}

Json Client::snapshot(const std::string& session) {
  return call(Op::kSnapshot, session);
}

Json Client::stats(const std::string& format) {
  Json body = Json::object();
  body.set("format", Json(format));
  return call(Op::kStats, "", std::move(body));
}

Json Client::drain() { return call(Op::kDrain, ""); }

Json Client::promote() { return call(Op::kPromote, ""); }

Json Client::evict_session(const std::string& session) {
  return call(Op::kEvictSession, session);
}

bool Client::ping() {
  Json response = call(Op::kPing, "");
  return response.bool_or("pong", false);
}

}  // namespace amf::svc
