#include "svc/client.hpp"

#include <utility>

#include "util/error.hpp"

namespace amf::svc {

Client::Client(Socket sock) : sock_(std::move(sock)), reader_(sock_.fd()) {}

Client Client::connect_unix(const std::string& path) {
  return Client(amf::svc::connect_unix(path));
}

Client Client::connect_tcp(const std::string& host, int port) {
  return Client(amf::svc::connect_tcp(host, port));
}

std::string Client::call_line(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  AMF_REQUIRE(sock_.send_all(framed), "client send failed (connection dead)");
  std::string response;
  const LineReader::Status status = reader_.read_line(&response);
  AMF_REQUIRE(status == LineReader::Status::kLine,
              "connection closed before a response arrived");
  return response;
}

Json Client::call(Op op, const std::string& session, Json body) {
  Json req = body.is_object() ? std::move(body) : Json::object();
  const long long id = ++next_id_;
  req.set("v", Json(kProtocolVersion));
  req.set("id", Json(id));
  req.set("op", Json(std::string(to_string(op))));
  if (!session.empty()) req.set("session", Json(session));
  std::string line = req.dump();
  line += '\n';
  AMF_REQUIRE(sock_.send_all(line), "client send failed (connection dead)");

  while (true) {
    std::string response;
    const LineReader::Status status = reader_.read_line(&response);
    AMF_REQUIRE(status == LineReader::Status::kLine,
                "connection closed before a response arrived");
    Json parsed = Json::parse(response);
    if (parsed.number_or("id", -1.0) != static_cast<double>(id)) continue;
    if (!parsed.bool_or("ok", false)) {
      const Json* error = parsed.find("error");
      const std::string code =
          error != nullptr ? error->string_or("code", "internal") : "internal";
      const std::string message =
          error != nullptr ? error->string_or("message", "") : response;
      throw SvcError(parse_error_code(code), message);
    }
    return parsed;
  }
}

Json Client::create_session(const std::string& name,
                            const std::vector<double>& capacities,
                            Json overrides) {
  Json body = overrides.is_object() ? std::move(overrides) : Json::object();
  body.set("capacities", to_json(capacities));
  return call(Op::kCreateSession, name, std::move(body));
}

long long Client::add_job(const std::string& session,
                          const std::vector<double>& demands,
                          const std::vector<double>& workloads,
                          double weight) {
  Json body = Json::object();
  body.set("demands", to_json(demands));
  if (!workloads.empty()) body.set("workloads", to_json(workloads));
  body.set("weight", Json(weight));
  Json response = call(Op::kAddJob, session, std::move(body));
  const Json* job = response.find("job");
  AMF_REQUIRE(job != nullptr && job->is_number(),
              "add_job response lacks a job id");
  return static_cast<long long>(job->as_number());
}

void Client::finish_job(const std::string& session, long long job) {
  Json body = Json::object();
  body.set("job", Json(job));
  call(Op::kFinishJob, session, std::move(body));
}

void Client::site_event(const std::string& session, int site, double factor) {
  Json body = Json::object();
  body.set("site", Json(static_cast<long long>(site)));
  body.set("capacity_factor", Json(factor));
  call(Op::kSiteEvent, session, std::move(body));
}

void Client::set_capacity(const std::string& session, int site, double value) {
  Json body = Json::object();
  body.set("site", Json(static_cast<long long>(site)));
  body.set("value", Json(value));
  call(Op::kSetCapacity, session, std::move(body));
}

Json Client::solve(const std::string& session, double budget_ms, bool latest) {
  Json body = Json::object();
  if (budget_ms > 0.0) body.set("budget_ms", Json(budget_ms));
  if (latest) body.set("latest", Json(true));
  return call(Op::kSolve, session, std::move(body));
}

Json Client::snapshot(const std::string& session) {
  return call(Op::kSnapshot, session);
}

Json Client::stats(const std::string& format) {
  Json body = Json::object();
  body.set("format", Json(format));
  return call(Op::kStats, "", std::move(body));
}

Json Client::drain() { return call(Op::kDrain, ""); }

bool Client::ping() {
  Json response = call(Op::kPing, "");
  return response.bool_or("pong", false);
}

}  // namespace amf::svc
