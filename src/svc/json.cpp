#include "svc/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace amf::svc {

namespace {

/// %.17g round-trips every finite double exactly.
void append_number(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    AMF_REQUIRE(pos_ == text_.size(),
                "json: trailing garbage at offset " + std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw util::ContractError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > Json::kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return Json(std::move(items));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            // UTF-8 encode the BMP code point; surrogate pairs are not
            // needed by the protocol (names are ASCII) but decode to the
            // replacement of their halves rather than erroring.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("invalid escape");
        }
        continue;
      }
      if (c < 0x20) fail("unescaped control character in string");
      out += static_cast<char>(c);
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void append_json_string(std::string* out, std::string_view s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

bool Json::as_bool() const {
  AMF_REQUIRE(type_ == Type::kBool, "json: expected bool");
  return bool_;
}

double Json::as_number() const {
  AMF_REQUIRE(type_ == Type::kNumber, "json: expected number");
  return num_;
}

const std::string& Json::as_string() const {
  AMF_REQUIRE(type_ == Type::kString, "json: expected string");
  return str_;
}

const Json::Array& Json::as_array() const {
  AMF_REQUIRE(type_ == Type::kArray, "json: expected array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  AMF_REQUIRE(type_ == Type::kObject, "json: expected object");
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

void Json::set(std::string key, Json value) {
  AMF_REQUIRE(type_ == Type::kObject || type_ == Type::kNull,
              "json: set() needs an object");
  type_ = Type::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  AMF_REQUIRE(type_ == Type::kArray || type_ == Type::kNull,
              "json: push_back() needs an array");
  type_ = Type::kArray;
  arr_.push_back(std::move(value));
}

void Json::dump_to(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      append_number(out, num_);
      return;
    case Type::kString:
      append_json_string(out, str_);
      return;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) *out += ',';
        first = false;
        v.dump_to(out);
      }
      *out += ']';
      return;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) *out += ',';
        first = false;
        append_json_string(out, k);
        *out += ':';
        v.dump_to(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace amf::svc
