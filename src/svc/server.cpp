#include "svc/server.hpp"

#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace amf::svc {

Server::Server(ServerConfig config) : config_(std::move(config)) {
  int fds[2];
  AMF_REQUIRE(::pipe(fds) == 0, "self-pipe creation failed");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
}

Server::~Server() {
  trigger_drain();
  wait_drained();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

bool Server::Conn::write(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mu);
  return sock.send_all(line);
}

void Server::add_session(std::unique_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const std::string& name = session->name();
  if (!sessions_.emplace(name, std::move(session)).second)
    throw SvcError(ErrorCode::kSessionExists,
                   "session \"" + name + "\" already exists");
}

void Server::restore_from_file(const std::string& path) {
  AMF_REQUIRE(!started_, "restore_from_file must run before start()");
  std::ifstream in(path);
  AMF_REQUIRE(in.good(), "cannot open restore file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  Json root = Json::parse(text.str());
  AMF_REQUIRE(root.is_object() &&
                  root.number_or("v", 0.0) ==
                      static_cast<double>(kProtocolVersion),
              "restore file " + path + " is not a v" +
                  std::to_string(kProtocolVersion) + " snapshot");
  const Json* sessions = root.find("sessions");
  AMF_REQUIRE(sessions != nullptr && sessions->is_array(),
              "restore file has no sessions array");
  for (const Json& entry : sessions->as_array()) {
    const std::string name = entry.string_or("session", "");
    AMF_REQUIRE(!name.empty(), "restore entry lacks a session name");
    add_session(std::make_unique<Session>(name, problem_from_json(entry),
                                          config_.session));
  }
}

void Server::start() {
  AMF_REQUIRE(!started_, "server already started");
  if (!config_.unix_path.empty()) {
    listener_ = listen_unix(config_.unix_path);
  } else {
    listener_ = listen_tcp(config_.tcp_port, &bound_port_);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::trigger_drain() {
  // Async-signal-safe: one write() to the self pipe, nothing else.
  const char byte = 'd';
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

void Server::accept_loop() {
  while (wait_readable(listener_.fd(), wake_read_)) {
    Socket conn_sock = accept_connection(listener_);
    if (!conn_sock.valid()) break;
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(conn_sock);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (draining_.load(std::memory_order_acquire)) return;
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn = std::move(conn)] { connection_loop(conn); });
  }
}

void Server::connection_loop(std::shared_ptr<Conn> conn) {
  LineReader reader(conn->sock.fd());
  std::string line;
  while (true) {
    const LineReader::Status status = reader.read_line(&line);
    if (status == LineReader::Status::kLine) {
      if (line.empty()) continue;
      handle_line(conn, line);
      continue;
    }
    if (status == LineReader::Status::kOversized)
      conn->write(error_line(0.0, ErrorCode::kBadRequest,
                             "request line exceeds the protocol limit"));
    break;  // kEof / kError / kOversized all end the connection
  }
  conn->sock.shutdown_both();
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const SvcError& e) {
    conn->write(error_line(0.0, e.code(), e.what()));
    return;
  }
  SvcMetrics::get().request_counter(req.op).add();

  try {
    switch (req.op) {
      case Op::kPing: {
        Json out = Json::object();
        out.set("pong", Json(true));
        conn->write(ok_line(req.id, out));
        return;
      }
      case Op::kCreateSession:
        handle_create_session(req, conn);
        return;
      case Op::kStats:
        handle_stats(req, conn);
        return;
      case Op::kDrain: {
        Json out = Json::object();
        out.set("draining", Json(true));
        conn->write(ok_line(req.id, out));
        trigger_drain();
        return;
      }
      default:
        break;  // session ops
    }

    if (draining_.load(std::memory_order_acquire))
      throw SvcError(ErrorCode::kDraining, "server is draining");
    if (req.session.empty())
      throw SvcError(ErrorCode::kBadRequest,
                     std::string("op ") + to_string(req.op) +
                         " needs a \"session\"");
    Session* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(req.session);
      if (it == sessions_.end())
        throw SvcError(ErrorCode::kNoSession,
                       "no session \"" + req.session + "\"");
      session = it->second.get();
    }
    // Sessions outlive connections: they are destroyed only by the
    // drain, which first joins every connection thread.
    const double id = req.id;
    session->submit(req, [conn, id](std::string response) {
      (void)id;
      conn->write(response);
    });
  } catch (const SvcError& e) {
    conn->write(error_line(req.id, e.code(), e.what()));
  } catch (const std::exception& e) {
    conn->write(error_line(req.id, ErrorCode::kInternal, e.what()));
  }
}

void Server::handle_create_session(const Request& req,
                                   const std::shared_ptr<Conn>& conn) {
  if (draining_.load(std::memory_order_acquire))
    throw SvcError(ErrorCode::kDraining, "server is draining");
  if (req.session.empty())
    throw SvcError(ErrorCode::kBadRequest,
                   "create_session needs a \"session\" name");
  SessionConfig cfg = config_.session;
  cfg.batch_window_ms =
      req.body.number_or("batch_window_ms", cfg.batch_window_ms);
  cfg.default_budget_ms =
      req.body.number_or("default_budget_ms", cfg.default_budget_ms);
  cfg.policy = req.body.string_or("policy", cfg.policy);
  if (!(cfg.batch_window_ms >= 0.0) || !(cfg.default_budget_ms >= 0.0))
    throw SvcError(ErrorCode::kBadRequest,
                   "window/budget overrides must be >= 0");

  std::unique_ptr<Session> session;
  long long sites = 0;
  long long jobs = 0;
  const Json* snapshot = req.body.find("snapshot");
  if (snapshot != nullptr) {
    ProblemSnapshot snap = problem_from_json(*snapshot);
    sites = snap.problem.sites();
    jobs = snap.problem.jobs();
    session = std::make_unique<Session>(req.session, std::move(snap), cfg);
  } else {
    const Json* capacities = req.body.find("capacities");
    if (capacities == nullptr)
      throw SvcError(ErrorCode::kBadRequest,
                     "create_session needs capacities (or a snapshot)");
    auto caps = number_array(*capacities, -1, "capacities");
    sites = static_cast<long long>(caps.size());
    session = std::make_unique<Session>(req.session, std::move(caps), cfg);
  }
  add_session(std::move(session));
  Json out = Json::object();
  out.set("session", Json(req.session));
  out.set("sites", Json(sites));
  out.set("jobs", Json(jobs));
  conn->write(ok_line(req.id, out));
}

void Server::handle_stats(const Request& req,
                          const std::shared_ptr<Conn>& conn) {
  const std::string format = req.body.string_or("format", "json");
  Json out = Json::object();
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  if (format == "prometheus") {
    out.set("content_type", Json(std::string("text/plain; version=0.0.4")));
    out.set("text", Json(obs::to_prometheus_text(snap)));
  } else if (format == "json") {
    // Embed the exporter's JSON verbatim (it is already valid JSON).
    out.set("metrics", Json::parse(obs::to_metrics_json(snap)));
  } else {
    throw SvcError(ErrorCode::kBadRequest,
                   "stats format must be json or prometheus");
  }
  Json sessions = Json::array();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [name, session] : sessions_)
      sessions.push_back(session->info_json());
  }
  out.set("sessions", std::move(sessions));
  out.set("draining", Json(draining_.load(std::memory_order_acquire)));
  conn->write(ok_line(req.id, out));
}

void Server::wait_drained() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    if (drain_done_) return;
    if (drain_running_) {
      drain_cv_.wait(lock, [this] { return drain_done_; });
      return;
    }
    drain_running_ = true;
  }

  // Block until a trigger arrives (the pipe may already have bytes).
  char buf[16];
  while (true) {
    const ssize_t n = ::read(wake_read_, buf, sizeof buf);
    if (n > 0) break;
    if (n < 0 && errno == EINTR) continue;
    break;  // pipe closed — treat as a trigger
  }
  perform_drain();

  std::lock_guard<std::mutex> lock(drain_mu_);
  drain_done_ = true;
  drain_cv_.notify_all();
}

void Server::perform_drain() {
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting. The accept loop watches the same pipe; closing the
  // listener also unblocks a racing accept().
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

  // 2. Serve all queued work. Sessions reply through still-open
  // connections; new submissions get typed `draining` errors.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [name, session] : sessions_) session->drain();
  }

  // 3. Persist the drained state.
  if (!config_.snapshot_path.empty()) {
    Json root = Json::object();
    root.set("v", Json(kProtocolVersion));
    Json sessions = Json::array();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [name, session] : sessions_)
        sessions.push_back(session->snapshot_json_after_drain());
    }
    root.set("sessions", std::move(sessions));
    obs::write_text_file(config_.snapshot_path, root.dump() + "\n");
  }

  // 4. Close connections and join their threads.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& weak : conns_)
      if (auto conn = weak.lock()) conn->sock.shutdown_both();
  }
  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();

  // 5. Tear down sessions (queues are empty; workers already joined).
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.clear();
}

}  // namespace amf::svc
