#include "svc/server.hpp"

#include <dirent.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace amf::svc {

namespace {

/// Percent-escapes a session name into a safe filename component:
/// anything outside [A-Za-z0-9._-] (and '%' itself) becomes %XX, so
/// "../x" cannot traverse out of the journal directory and the mapping
/// is injective (two sessions never share a log file).
std::string escape_session_file(const std::string& name) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    const bool safe = (u >= 'a' && u <= 'z') || (u >= 'A' && u <= 'Z') ||
                      (u >= '0' && u <= '9') || u == '.' || u == '_' ||
                      u == '-';
    if (safe) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(hex[u >> 4]);
      out.push_back(hex[u & 0xf]);
    }
  }
  return out;
}

/// Parses a replication target: "host:port" or a bare loopback "port".
void parse_repl_target(const std::string& spec, std::string* host,
                       int* port) {
  const std::size_t colon = spec.rfind(':');
  const std::string host_part =
      colon == std::string::npos ? "127.0.0.1" : spec.substr(0, colon);
  const std::string port_part =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  try {
    *port = std::stoi(port_part);
  } catch (const std::exception&) {
    *port = 0;
  }
  AMF_REQUIRE(*port > 0 && *port <= 65535,
              "replicate_to \"" + spec + "\" needs host:port or port");
  *host = host_part.empty() ? "127.0.0.1" : host_part;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.executor) {
    std::size_t threads = config_.executor_threads;
    if (threads == 0)
      threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
    executor_ = std::make_unique<SvcExecutor>(threads);
    config_.session.executor = executor_.get();
  }
  int fds[2];
  AMF_REQUIRE(::pipe(fds) == 0, "self-pipe creation failed");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
  AMF_REQUIRE(::pipe(fds) == 0, "repl self-pipe creation failed");
  repl_wake_read_ = fds[0];
  repl_wake_write_ = fds[1];
  AMF_REQUIRE(::pipe(fds) == 0, "promote self-pipe creation failed");
  promote_read_ = fds[0];
  promote_write_ = fds[1];
  // Epoch: persisted across restarts alongside the journals. A fresh
  // primary starts at 1; a fresh standby at 0 (it adopts the primary's
  // epoch from the stream handshake and exceeds it on promotion).
  epoch_ =
      config_.journal_dir.empty() ? 0 : read_epoch_file(config_.journal_dir);
  if (config_.standby_port < 0 && epoch_ == 0) epoch_ = 1;
}

Server::~Server() {
  trigger_drain();
  wait_drained();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (repl_wake_read_ >= 0) ::close(repl_wake_read_);
  if (repl_wake_write_ >= 0) ::close(repl_wake_write_);
  if (promote_read_ >= 0) ::close(promote_read_);
  if (promote_write_ >= 0) ::close(promote_write_);
}

bool Server::ThreadConn::write(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mu);
  return sock.send_all(line);
}

void Server::ThreadConn::close_now() { sock.shutdown_both(); }

/// Epoll-mode connection: a non-blocking socket owned by one reactor.
/// Reads happen only on that reactor thread (inbuf needs no lock);
/// writes come from any thread (connection handlers, session workers,
/// executor workers) under write_mu — a write that cannot complete
/// immediately buffers the remainder and arms EPOLLOUT, which the
/// reactor drains. Protocol framing (kMaxLineBytes bound, '\r' strip,
/// empty-line skip) matches LineReader byte for byte.
struct Server::EventConn : Conn,
                           std::enable_shared_from_this<Server::EventConn> {
  /// Cap on buffered unsent response bytes: a reader slower than its own
  /// solve stream eventually loses the connection instead of growing the
  /// server's memory without bound.
  static constexpr std::size_t kMaxWriteBufferBytes = 8u << 20;

  Server* server = nullptr;
  Socket sock;
  std::size_t reactor = 0;

  std::mutex write_mu;
  std::string outbuf;
  bool want_write = false;
  bool dead = false;    ///< no further writes (peer gone or over cap)
  bool closed = false;  ///< connection-accounting done (gauge decrement)

  std::string inbuf;  ///< reactor thread only

  bool write(const std::string& line) override {
    std::lock_guard<std::mutex> lock(write_mu);
    if (dead) return false;
    if (outbuf.empty()) {
      std::size_t sent = 0;
      while (sent < line.size()) {
        const ssize_t n =
            ::send(sock.fd(), line.data() + sent, line.size() - sent,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
          sent += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;
        return false;
      }
      if (sent == line.size()) return true;
      outbuf.assign(line, sent, std::string::npos);
    } else {
      if (outbuf.size() + line.size() > kMaxWriteBufferBytes) {
        dead = true;
        sock.shutdown_both();  // reactor sees EOF and finishes teardown
        return false;
      }
      outbuf.append(line);
    }
    if (!want_write) {
      want_write = true;
      server->eventloop_->set_want_write(reactor, sock.fd(), true);
    }
    return true;
  }

  void close_now() override {
    {
      std::lock_guard<std::mutex> lock(write_mu);
      dead = true;
    }
    sock.shutdown_both();
    finish_accounting();
  }

  /// Reactor-thread event dispatch.
  void on_events(std::uint32_t events) {
    if ((events & EPOLLOUT) != 0) flush();
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      disconnect();
      return;
    }
    if ((events & (EPOLLIN | EPOLLRDHUP)) == 0) return;
    char buf[65536];
    while (true) {
      const ssize_t n = ::recv(sock.fd(), buf, sizeof buf, 0);
      if (n > 0) {
        inbuf.append(buf, static_cast<std::size_t>(n));
        if (!drain_lines()) return;  // oversized line: connection dropped
        continue;
      }
      if (n == 0) {
        disconnect();
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      disconnect();
      return;
    }
  }

 private:
  /// Dispatches every complete line in inbuf; false when framing is lost
  /// (a line exceeded kMaxLineBytes) and the connection was dropped.
  bool drain_lines() {
    std::size_t pos;
    while ((pos = inbuf.find('\n')) != std::string::npos) {
      std::string line = inbuf.substr(0, pos);
      inbuf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      server->handle_line(shared_from_this(), line);
    }
    if (inbuf.size() > kMaxLineBytes) {
      write(error_line(0.0, ErrorCode::kBadRequest,
                       "request line exceeds the protocol limit"));
      disconnect();
      return false;
    }
    return true;
  }

  void flush() {
    std::lock_guard<std::mutex> lock(write_mu);
    while (!outbuf.empty() && !dead) {
      const ssize_t n = ::send(sock.fd(), outbuf.data(), outbuf.size(),
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      dead = true;
    }
    if (want_write) {
      want_write = false;
      server->eventloop_->set_want_write(reactor, sock.fd(), false);
    }
  }

  /// Reactor-side teardown: deregister, half-close, account. The fd
  /// itself closes with the last shared_ptr (late responders still hold
  /// some), so its number cannot be reused under a stale registration.
  void disconnect() {
    server->eventloop_->remove(reactor, sock.fd());
    {
      std::lock_guard<std::mutex> lock(write_mu);
      dead = true;
    }
    sock.shutdown_both();
    finish_accounting();
  }

  void finish_accounting() {
    {
      std::lock_guard<std::mutex> lock(write_mu);
      if (closed) return;
      closed = true;
    }
    const long long open =
        server->open_conns_.fetch_sub(1, std::memory_order_relaxed) - 1;
    SvcMetrics::get().open_connections.set(static_cast<double>(open));
  }
};

void Server::add_session(std::unique_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const std::string& name = session->name();
  if (!sessions_.emplace(name, std::move(session)).second)
    throw SvcError(ErrorCode::kSessionExists,
                   "session \"" + name + "\" already exists");
}

std::string Server::journal_path(const std::string& session_name) const {
  return config_.journal_dir + "/" + escape_session_file(session_name) +
         ".wal";
}

void Server::attach_fresh_journal(Session* session,
                                  const std::string& birth_payload) {
  auto journal = std::make_unique<Journal>(journal_path(session->name()),
                                           config_.fsync, /*truncate=*/true);
  journal->append(birth_payload);
  journal->sync();
  SvcMetrics::get().journal_records.add();
  session->attach_journal(std::move(journal));
}

void Server::restore_from_file(const std::string& path) {
  AMF_REQUIRE(!started_, "restore_from_file must run before start()");
  std::ifstream in(path);
  AMF_REQUIRE(in.good(), "cannot open restore file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  Json root;
  try {
    root = Json::parse(text.str());
  } catch (const std::exception& e) {
    throw util::ContractError("restore file " + path +
                              " is not valid JSON: " + e.what());
  }
  AMF_REQUIRE(root.is_object() &&
                  root.number_or("v", 0.0) ==
                      static_cast<double>(kProtocolVersion),
              "restore file " + path + " is not a v" +
                  std::to_string(kProtocolVersion) + " snapshot");
  const Json* sessions = root.find("sessions");
  AMF_REQUIRE(sessions != nullptr && sessions->is_array(),
              "restore file " + path + " has no sessions array");
  std::size_t index = 0;
  for (const Json& entry : sessions->as_array()) {
    const std::string name = entry.string_or("session", "");
    AMF_REQUIRE(!name.empty(), "restore file " + path + ": sessions[" +
                                   std::to_string(index) +
                                   "] lacks a session name");
    try {
      auto session = std::make_unique<Session>(name, problem_from_json(entry),
                                               config_.session);
      if (!config_.journal_dir.empty())
        attach_fresh_journal(session.get(),
                             session->snapshot_record_payload_locked_state());
      add_session(std::move(session));
    } catch (const SvcError& e) {
      // Re-throw with the file and entry named: a corrupt snapshot must
      // fail the whole restore loudly, not serve a partial session set.
      throw util::ContractError("restore file " + path + ": session \"" +
                                name + "\": " + e.what());
    }
    ++index;
  }
}

std::unique_ptr<Session> Server::session_from_birth(const Json& birth,
                                                    std::string* name_out) {
  const std::string kind = birth.string_or("t", "");
  SessionConfig cfg = config_.session;
  cfg.policy = birth.string_or("policy", cfg.policy);
  cfg.batch_window_ms =
      birth.number_or("batch_window_ms", cfg.batch_window_ms);
  cfg.default_budget_ms =
      birth.number_or("default_budget_ms", cfg.default_budget_ms);

  if (kind == "create") {
    const std::string name = birth.string_or("session", "");
    AMF_REQUIRE(!name.empty(), "create record lacks a session name");
    const Json* capacities = birth.find("capacities");
    AMF_REQUIRE(capacities != nullptr, "create record lacks capacities");
    const long long r =
        static_cast<long long>(birth.number_or("resources", 1.0));
    *name_out = name;
    if (r > 1)
      return std::make_unique<Session>(
          name,
          matrix_from_json(*capacities, -1, static_cast<int>(r),
                           "capacities"),
          cfg);
    return std::make_unique<Session>(
        name, number_array(*capacities, -1, "capacities"), cfg);
  }
  if (kind == "snapshot") {
    const Json* snap = birth.find("snapshot");
    AMF_REQUIRE(snap != nullptr, "snapshot record lacks a snapshot");
    const std::string name = snap->string_or("session", "");
    AMF_REQUIRE(!name.empty(), "snapshot record lacks a session name");
    *name_out = name;
    return std::make_unique<Session>(
        name, problem_from_json(*snap), cfg,
        static_cast<long long>(birth.number_or("seq", 0.0)));
  }
  throw util::ContractError("birth record has type \"" + kind +
                            "\" (want create or snapshot)");
}

RecoveryReport Server::recover_from_journal() {
  AMF_REQUIRE(!started_, "recover_from_journal must run before start()");
  AMF_REQUIRE(!config_.journal_dir.empty(),
              "recover_from_journal needs journal_dir");
  RecoveryReport report;

  std::vector<std::string> files;
  DIR* dir = ::opendir(config_.journal_dir.c_str());
  AMF_REQUIRE(dir != nullptr,
              "cannot open journal dir " + config_.journal_dir);
  while (dirent* ent = ::readdir(dir)) {
    const std::string file = ent->d_name;
    if (file.size() > 4 && file.compare(file.size() - 4, 4, ".wal") == 0)
      files.push_back(file);
  }
  ::closedir(dir);
  std::sort(files.begin(), files.end());

  for (const std::string& file : files) {
    const std::string path = config_.journal_dir + "/" + file;
    JournalReplay replay = Journal::read_all(path);
    if (replay.truncated) {
      report.warnings.push_back(replay.warning);
      Journal::truncate_to(path, replay.valid_bytes);
    }
    if (replay.records.empty()) continue;  // fresh or fully-torn log

    // The leading record is the session's birth: either the create
    // record or a compaction/restore snapshot.
    Json birth;
    try {
      birth = Json::parse(replay.records.front().payload);
    } catch (const std::exception& e) {
      report.warnings.push_back(path + ": unreadable birth record (" +
                                e.what() + "); skipping this journal");
      continue;
    }
    std::unique_ptr<Session> session;
    std::string name;
    try {
      session = session_from_birth(birth, &name);
    } catch (const std::exception& e) {
      report.warnings.push_back(path + ": " + e.what() +
                                "; skipping this journal");
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (sessions_.count(name) != 0) {
        report.warnings.push_back(
            path + ": session \"" + name +
            "\" already restored from the snapshot file; skipping its "
            "journal");
        continue;
      }
    }

    // Replay the delta suffix through the live validate/apply path. A
    // record the state rejects ends the replay there — everything after
    // it depended on state that was never reached — and the log is
    // truncated to the applied prefix.
    for (std::size_t i = 1; i < replay.records.size(); ++i) {
      std::string error;
      Json record;
      try {
        record = Json::parse(replay.records[i].payload);
      } catch (const std::exception& e) {
        error = std::string("unreadable record (") + e.what() + ")";
      }
      if (error.empty()) session->replay_journal_record(record, &error);
      if (!error.empty()) {
        report.warnings.push_back(path + ": record " + std::to_string(i) +
                                  ": " + error +
                                  "; truncating the journal there");
        Journal::truncate_to(path, replay.offsets[i]);
        break;
      }
      ++report.deltas;
    }

    session->attach_journal(
        std::make_unique<Journal>(path, config_.fsync));
    add_session(std::move(session));
    ++report.sessions;
  }
  // Surface silent tail loss on /metrics, not only in the report.
  SvcMetrics::get().journal_replay_warnings.add(
      static_cast<long long>(report.warnings.size()));
  for (const std::string& warning : report.warnings)
    util::Logger::global().warn("svc.journal_recovery").str("warning",
                                                            warning);
  util::Logger::global()
      .info("svc.journal_recovered")
      .num("sessions", report.sessions)
      .num("deltas", report.deltas)
      .num("warnings", report.warnings.size());
  return report;
}

void Server::start() {
  AMF_REQUIRE(!started_, "server already started");
  if (config_.standby_port >= 0) {
    AMF_REQUIRE(config_.replicate_to.empty(),
                "a server cannot be standby and replicating primary at once");
    standby_.store(true, std::memory_order_release);
    repl_listener_ = listen_tcp(config_.standby_port, &repl_bound_port_);
  }
  ListenOptions listen_options;
  listen_options.backlog = config_.backlog;
  if (!config_.unix_path.empty()) {
    listener_ = listen_unix(config_.unix_path, listen_options);
  } else {
    listener_ = listen_tcp(config_.tcp_port, &bound_port_, listen_options);
  }
  if (config_.io_model == IoModel::kEpoll) {
    std::size_t threads = config_.io_threads;
    if (threads == 0)
      threads = std::min<std::size_t>(
          4, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
    eventloop_ = std::make_unique<EventLoop>(threads);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  promote_thread_ = std::thread([this] { promote_watcher_loop(); });
  if (config_.standby_port >= 0)
    repl_thread_ = std::thread([this] { repl_accept_loop(); });

  if (!config_.replicate_to.empty()) {
    AMF_REQUIRE(!config_.journal_dir.empty(),
                "replicate_to requires journal_dir: replication streams "
                "journal records");
    ReplSenderConfig repl;
    parse_repl_target(config_.replicate_to, &repl.host, &repl.port);
    repl.ack = config_.repl_ack;
    repl.ack_timeout_ms = config_.repl_ack_timeout_ms;
    repl_sender_ = std::make_unique<ReplSender>(repl, epoch_);
    // Seed the stream: sessions that predate the sender (restored or
    // recovered before start()) reach the standby as snapshot births,
    // offered before any live delta can be admitted. They are quiescent
    // here — no worker has touched solver state yet.
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [name, session] : sessions_) {
        std::uint64_t index = 0;
        (void)repl_sender_->offer(
            name, session->snapshot_record_payload_locked_state(), &index);
        session->attach_replication(repl_sender_.get());
      }
    }
    repl_sender_->start();
  }
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    if (!is_standby() && !config_.journal_dir.empty())
      persist_epoch_locked();
    SvcMetrics::get().role.set(is_standby() ? 0.0 : 1.0);
    SvcMetrics::get().epoch.set(static_cast<double>(epoch_));
  }

  // Telemetry sidecar: the HTTP listener and the SLO ticker come up
  // together (the ticker exists to feed /metrics and /slo), and the span
  // tracer turns on so /tracez has request flows to show.
  if (config_.http_port >= 0) {
    obs::Tracer::global().set_enabled(true);
    slo_ = std::make_unique<obs::SloTracker>(&obs::Registry::global(),
                                             config_.slo);
    http_ = std::make_unique<HttpListener>(
        config_.http_port,
        [this](const std::string& path, const std::string& query) {
          return handle_http(path, query);
        },
        config_.http);
    http_->start();
    slo_thread_ = std::thread([this] { slo_ticker_loop(); });
  }

  util::Logger::global()
      .info("svc.server_start")
      .str("listen", config_.unix_path.empty()
                         ? "tcp:" + std::to_string(bound_port_)
                         : "unix:" + config_.unix_path)
      .num("http_port", http_ != nullptr ? http_->port() : -1)
      .str("policy", config_.session.policy)
      .num("batch_window_ms", config_.session.batch_window_ms)
      .num("max_queue_depth", config_.session.max_queue_depth)
      .boolean("journal", !config_.journal_dir.empty())
      .str("role", is_standby() ? "standby" : "primary")
      .num("epoch", epoch())
      .num("repl_port", repl_bound_port_)
      .str("replicate_to", config_.replicate_to);
}

int Server::http_port() const {
  return http_ != nullptr ? http_->port() : -1;
}

void Server::slo_ticker_loop() {
  const double period_s = std::max(config_.slo.window_s, 0.01);
  std::unique_lock<std::mutex> lock(slo_mu_);
  while (!slo_stop_) {
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(period_s));
    if (slo_cv_.wait_until(lock, wake, [this] { return slo_stop_; }))
      return;
    lock.unlock();
    slo_->tick();
    lock.lock();
  }
}

HttpResponse Server::handle_http(const std::string& path,
                                 const std::string& query) {
  HttpResponse resp;
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = obs::to_prometheus_text(obs::Registry::global().snapshot());
  } else if (path == "/healthz") {
    const bool draining = draining_.load(std::memory_order_acquire);
    std::size_t sessions = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions = sessions_.size();
    }
    resp.status = draining ? 503 : 200;
    resp.content_type = "application/json";
    // A warm standby is healthy (200) but says so: load balancers route
    // on "role", operators read "epoch" before promoting.
    Json body = Json::object();
    body.set("status", Json(std::string(
                           draining ? "draining"
                                    : (is_standby() ? "standby" : "ok"))));
    body.set("sessions", Json(static_cast<long long>(sessions)));
    body.set("role",
             Json(std::string(is_standby() ? "standby" : "primary")));
    body.set("epoch", Json(epoch()));
    if (repl_sender_ != nullptr) {
      Json repl = Json::object();
      repl.set("connected", Json(repl_sender_->connected()));
      repl.set("fenced", Json(repl_sender_->fenced()));
      repl.set("broken", Json(repl_sender_->broken()));
      repl.set("lag_records",
               Json(static_cast<long long>(repl_sender_->offered() -
                                           repl_sender_->acked_index())));
      body.set("repl", std::move(repl));
    }
    resp.body = body.dump() + "\n";
  } else if (path == "/tracez") {
    resp.content_type = "application/json";
    auto& tracer = obs::Tracer::global();
    const auto events =
        query == "drain=1" ? tracer.drain() : tracer.events();
    resp.body = obs::to_chrome_trace(events);
  } else if (path == "/slo") {
    resp.content_type = "application/json";
    resp.body = slo_->to_json();
  } else {
    resp.status = 404;
    resp.body = "unknown endpoint (try /metrics, /healthz, /tracez, "
                "/slo)\n";
  }
  // http_get (tests, smoke) reads line-framed bodies; every endpoint
  // already ends with '\n', keep it that way for anything added later.
  if (!resp.body.empty() && resp.body.back() != '\n')
    resp.body.push_back('\n');
  return resp;
}

void Server::trigger_drain() {
  // Async-signal-safe: one write() to the self pipe, nothing else.
  const char byte = 'd';
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

void Server::accept_loop() {
  while (wait_readable(listener_.fd(), wake_read_)) {
    Socket conn_sock = accept_connection(listener_);
    if (!conn_sock.valid()) break;
    if (config_.io_model == IoModel::kEpoll) {
      adopt_connection_epoll(std::move(conn_sock));
    } else {
      reap_finished_connections();
      adopt_connection_thread(std::move(conn_sock));
    }
  }
}

void Server::adopt_connection_epoll(Socket sock) {
  auto conn = std::make_shared<EventConn>();
  conn->server = this;
  conn->sock = std::move(sock);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (draining_.load(std::memory_order_acquire)) return;
    conns_.push_back(conn);
  }
  const long long open =
      open_conns_.fetch_add(1, std::memory_order_relaxed) + 1;
  SvcMetrics::get().open_connections.set(static_cast<double>(open));
  set_nonblocking(conn->sock.fd(), true);
  conn->reactor = eventloop_->pick();
  eventloop_->add(conn->reactor, conn->sock.fd(),
                  [conn](std::uint32_t events) { conn->on_events(events); });
}

void Server::adopt_connection_thread(Socket sock) {
  auto conn = std::make_shared<ThreadConn>();
  conn->sock = std::move(sock);
  std::lock_guard<std::mutex> lock(conns_mu_);
  if (draining_.load(std::memory_order_acquire)) return;
  conns_.push_back(conn);
  std::thread t([this, conn] { connection_loop(std::move(conn)); });
  const std::thread::id id = t.get_id();
  conn_threads_.emplace(id, std::move(t));
}

void Server::reap_finished_connections() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::thread::id id : finished_conn_threads_) {
      const auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      done.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conn_threads_.clear();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::weak_ptr<Conn>& weak) {
                                  return weak.expired();
                                }),
                 conns_.end());
  }
  for (std::thread& t : done)
    if (t.joinable()) t.join();
}

void Server::connection_loop(std::shared_ptr<ThreadConn> conn) {
  const long long open =
      open_conns_.fetch_add(1, std::memory_order_relaxed) + 1;
  SvcMetrics::get().open_connections.set(static_cast<double>(open));
  LineReader reader(conn->sock.fd());
  std::string line;
  while (true) {
    const LineReader::Status status = reader.read_line(&line);
    if (status == LineReader::Status::kLine) {
      if (line.empty()) continue;
      handle_line(conn, line);
      continue;
    }
    if (status == LineReader::Status::kOversized)
      conn->write(error_line(0.0, ErrorCode::kBadRequest,
                             "request line exceeds the protocol limit"));
    break;  // kEof / kError / kOversized all end the connection
  }
  conn->sock.shutdown_both();
  const long long left =
      open_conns_.fetch_sub(1, std::memory_order_relaxed) - 1;
  SvcMetrics::get().open_connections.set(static_cast<double>(left));
  // Announce exit for the accept loop's reaper (a thread cannot join
  // itself); the drain joins whatever is still announced or live.
  std::lock_guard<std::mutex> lock(conns_mu_);
  finished_conn_threads_.push_back(std::this_thread::get_id());
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  using Clock = std::chrono::steady_clock;
  auto& metrics = SvcMetrics::get();
  Request req;
  const auto parse_start = Clock::now();
  try {
    req = parse_request(line);
  } catch (const SvcError& e) {
    conn->write(error_line(0.0, e.code(), e.what()));
    return;
  }
  metrics.stage_parse_ms.observe(
      std::chrono::duration<double, std::milli>(Clock::now() - parse_start)
          .count());
  metrics.request_counter(req.op).add();

  // Wire-propagated trace id (optional "trace" field, protocol v:1
  // addition): this span opens the request's flow; the enqueue, batch,
  // allocator, journal, and reply spans link to it by the same id.
  const double trace_field = req.body.number_or("trace", 0.0);
  const std::uint64_t trace =
      trace_field > 0.0 && std::isfinite(trace_field)
          ? static_cast<std::uint64_t>(trace_field)
          : 0;
  AMF_SPAN_FLOW_START("svc/request", trace);

  try {
    switch (req.op) {
      case Op::kPing: {
        Json out = Json::object();
        out.set("pong", Json(true));
        conn->write(ok_line(req.id, out));
        return;
      }
      case Op::kCreateSession:
        handle_create_session(req, conn);
        return;
      case Op::kStats:
        handle_stats(req, conn);
        return;
      case Op::kDrain: {
        Json out = Json::object();
        out.set("draining", Json(true));
        conn->write(ok_line(req.id, out));
        trigger_drain();
        return;
      }
      case Op::kPromote: {
        conn->write(ok_line(req.id, promote()));
        return;
      }
      case Op::kEvictSession:
        handle_evict_session(req, conn);
        return;
      default:
        break;  // session ops
    }

    if (draining_.load(std::memory_order_acquire))
      throw SvcError(ErrorCode::kDraining, "server is draining");
    if (is_standby())
      throw SvcError(ErrorCode::kNotPrimary,
                     "standby (epoch " + std::to_string(epoch()) +
                         ") is not serving session work; promote it or "
                         "address the primary");
    if (req.session.empty())
      throw SvcError(ErrorCode::kBadRequest,
                     std::string("op ") + to_string(req.op) +
                         " needs a \"session\"");
    Session* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(req.session);
      if (it == sessions_.end())
        throw SvcError(ErrorCode::kNoSession,
                       "no session \"" + req.session + "\"");
      session = it->second.get();
    }
    // Sessions outlive connections: they are destroyed only by the
    // drain, which first joins every connection thread. The responder
    // closes the request's flow: the reply span runs on whichever
    // thread answers (connection thread for ACKs/sheds, session worker
    // for solves) and carries the wire trace id either way.
    session->submit(req, [conn, trace](std::string response) {
      const auto reply_start = Clock::now();
      {
        AMF_SPAN_FLOW_END("svc/reply", trace);
        conn->write(response);
      }
      SvcMetrics::get().stage_reply_ms.observe(
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    reply_start)
              .count());
    });
  } catch (const SvcError& e) {
    conn->write(error_line(req.id, e.code(), e.what()));
  } catch (const std::exception& e) {
    conn->write(error_line(req.id, ErrorCode::kInternal, e.what()));
  }
}

void Server::handle_create_session(const Request& req,
                                   const std::shared_ptr<Conn>& conn) {
  if (draining_.load(std::memory_order_acquire))
    throw SvcError(ErrorCode::kDraining, "server is draining");
  if (is_standby())
    throw SvcError(ErrorCode::kNotPrimary,
                   "standby (epoch " + std::to_string(epoch()) +
                       ") is not serving session work; promote it or "
                       "address the primary");
  if (req.session.empty())
    throw SvcError(ErrorCode::kBadRequest,
                   "create_session needs a \"session\" name");
  SessionConfig cfg = config_.session;
  cfg.batch_window_ms =
      req.body.number_or("batch_window_ms", cfg.batch_window_ms);
  cfg.default_budget_ms =
      req.body.number_or("default_budget_ms", cfg.default_budget_ms);
  cfg.policy = req.body.string_or("policy", cfg.policy);
  if (!(cfg.batch_window_ms >= 0.0) || !(cfg.default_budget_ms >= 0.0))
    throw SvcError(ErrorCode::kBadRequest,
                   "window/budget overrides must be >= 0");

  std::unique_ptr<Session> session;
  long long sites = 0;
  long long jobs = 0;
  std::string birth;  // journal birth-record payload ("" = not journaling)
  const Json* snapshot = req.body.find("snapshot");
  if (snapshot != nullptr) {
    ProblemSnapshot snap = problem_from_json(*snapshot);
    sites = snap.problem.sites();
    jobs = snap.problem.jobs();
    session = std::make_unique<Session>(req.session, std::move(snap), cfg);
    // Shard handoff: a restore may carry the source's rid dedup window
    // so in-flight client retries stay exactly-once across the move.
    const Json* dedup = req.body.find("dedup");
    if (dedup != nullptr) session->seed_dedup(*dedup);
    if (!config_.journal_dir.empty())
      birth = session->snapshot_record_payload_locked_state();
  } else {
    const Json* capacities = req.body.find("capacities");
    if (capacities == nullptr)
      throw SvcError(ErrorCode::kBadRequest,
                     "create_session needs capacities (or a snapshot)");
    // Optional resource dimension: a count, or an array of resource names
    // whose length is the count. R > 1 switches the session to vector
    // capacities — `capacities` is then an m×R matrix.
    const Json* resources = req.body.find("resources");
    long long r = 1;
    if (resources != nullptr) {
      if (resources->is_number()) {
        const double value = resources->as_number();
        if (!(value >= 1.0) || value != std::floor(value))
          throw SvcError(ErrorCode::kBadRequest,
                         "resources must be a positive integer count or an "
                         "array of names");
        r = static_cast<long long>(value);
      } else if (resources->is_array()) {
        for (const Json& name : resources->as_array())
          if (!name.is_string())
            throw SvcError(ErrorCode::kBadRequest,
                           "resource names must be strings");
        r = static_cast<long long>(resources->as_array().size());
        if (r < 1)
          throw SvcError(ErrorCode::kBadRequest,
                         "resources needs at least one entry");
      } else {
        throw SvcError(ErrorCode::kBadRequest,
                       "resources must be a count or an array of names");
      }
    }
    if (r > 1) {
      auto matrix = matrix_from_json(*capacities, -1, static_cast<int>(r),
                                     "capacities");
      sites = static_cast<long long>(matrix.size());
      if (!config_.journal_dir.empty()) {
        Json rec = Json::object();
        rec.set("t", Json(std::string("create")));
        rec.set("session", Json(req.session));
        rec.set("policy", Json(cfg.policy));
        rec.set("batch_window_ms", Json(cfg.batch_window_ms));
        rec.set("default_budget_ms", Json(cfg.default_budget_ms));
        rec.set("resources", Json(r));
        rec.set("capacities", matrix_to_json(matrix));
        birth = rec.dump();
      }
      session = std::make_unique<Session>(req.session, std::move(matrix),
                                          cfg);
    } else {
      auto caps = number_array(*capacities, -1, "capacities");
      sites = static_cast<long long>(caps.size());
      if (!config_.journal_dir.empty()) {
        Json rec = Json::object();
        rec.set("t", Json(std::string("create")));
        rec.set("session", Json(req.session));
        rec.set("policy", Json(cfg.policy));
        rec.set("batch_window_ms", Json(cfg.batch_window_ms));
        rec.set("default_budget_ms", Json(cfg.default_budget_ms));
        rec.set("capacities", to_json(caps));
        birth = rec.dump();
      }
      session = std::make_unique<Session>(req.session, std::move(caps), cfg);
    }
  }
  // Publish atomically: the name check, journal creation, and map insert
  // must not interleave with a racing create of the same name — the
  // journal open truncates, so a loser must never touch a live log.
  std::uint64_t birth_index = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.count(req.session) != 0)
      throw SvcError(ErrorCode::kSessionExists,
                     "session \"" + req.session + "\" already exists");
    if (!config_.journal_dir.empty())
      attach_fresh_journal(session.get(), birth);
    Session* raw = session.get();
    sessions_.emplace(req.session, std::move(session));
    // Replicate the birth before releasing the lock: deltas for this
    // session can only follow its create ACK, so offering here keeps
    // the stream ordered birth-before-deltas.
    if (repl_sender_ != nullptr) {
      raw->attach_replication(repl_sender_.get());
      (void)repl_sender_->offer(req.session, birth, &birth_index);
    }
  }
  // repl-ack mode: the create ACK owes the same guarantee a delta ACK
  // does — the standby has the session.
  if (repl_sender_ != nullptr && repl_sender_->ack_mode() &&
      birth_index != 0) {
    const auto wait =
        repl_sender_->wait_acked(birth_index, config_.repl_ack_timeout_ms);
    if (wait != ReplSender::WaitResult::kAcked)
      throw SvcError(wait == ReplSender::WaitResult::kFenced
                         ? ErrorCode::kNotPrimary
                         : ErrorCode::kInternal,
                     "standby did not confirm the session birth (the "
                     "session exists locally; retry is a session_exists)");
  }
  Json out = Json::object();
  out.set("session", Json(req.session));
  out.set("sites", Json(sites));
  out.set("jobs", Json(jobs));
  conn->write(ok_line(req.id, out));
}

void Server::handle_evict_session(const Request& req,
                                  const std::shared_ptr<Conn>& conn) {
  if (draining_.load(std::memory_order_acquire))
    throw SvcError(ErrorCode::kDraining, "server is draining");
  if (is_standby())
    throw SvcError(ErrorCode::kNotPrimary,
                   "standby (epoch " + std::to_string(epoch()) +
                       ") is not serving session work; promote it or "
                       "address the primary");
  if (req.session.empty())
    throw SvcError(ErrorCode::kBadRequest,
                   "evict_session needs a \"session\" name");
  // Unpublish first: requests arriving after this point get no_session
  // (the router retries them on the target shard), while everything
  // already admitted is served by the drain below.
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(req.session);
    if (it == sessions_.end())
      throw SvcError(ErrorCode::kNoSession,
                     "no session \"" + req.session + "\"");
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->drain();
  Json out = Json::object();
  out.set("session", Json(req.session));
  out.set("seq", Json(session->enqueued_seq()));
  out.set("snapshot", session->snapshot_json_after_drain());
  out.set("dedup", session->dedup_json_after_drain());
  session.reset();
  // The journal must go with the session: a leftover .wal would resurrect
  // it HERE on restart while the target shard also owns it (split brain).
  if (!config_.journal_dir.empty())
    ::unlink(journal_path(req.session).c_str());
  util::Logger::global()
      .info("svc.session_evicted")
      .str("session", req.session);
  conn->write(ok_line(req.id, out));
}

void Server::handle_stats(const Request& req,
                          const std::shared_ptr<Conn>& conn) {
  const std::string format = req.body.string_or("format", "json");
  Json out = Json::object();
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  if (format == "prometheus") {
    out.set("content_type", Json(std::string("text/plain; version=0.0.4")));
    out.set("text", Json(obs::to_prometheus_text(snap)));
  } else if (format == "json") {
    // Embed the exporter's JSON verbatim (it is already valid JSON).
    out.set("metrics", Json::parse(obs::to_metrics_json(snap)));
  } else {
    throw SvcError(ErrorCode::kBadRequest,
                   "stats format must be json or prometheus");
  }
  Json sessions = Json::array();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [name, session] : sessions_)
      sessions.push_back(session->info_json());
  }
  out.set("sessions", std::move(sessions));
  out.set("draining", Json(draining_.load(std::memory_order_acquire)));
  out.set("role", Json(std::string(is_standby() ? "standby" : "primary")));
  out.set("epoch", Json(epoch()));
  conn->write(ok_line(req.id, out));
}

long long Server::epoch() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  return epoch_;
}

void Server::persist_epoch_locked() {
  if (!config_.journal_dir.empty())
    write_epoch_file(config_.journal_dir, epoch_);
}

void Server::trigger_promote() {
  // Async-signal-safe: one write() to the promote pipe, nothing else.
  const char byte = 'p';
  [[maybe_unused]] ssize_t n = ::write(promote_write_, &byte, 1);
}

void Server::promote_watcher_loop() {
  // Dedicated pipe + thread: the accept loop treats its own wake pipe as
  // the drain signal, so promotion needs a separate wake channel. The
  // drain closes the write end, which ends this loop with read() == 0.
  char byte = 0;
  while (true) {
    const ssize_t n = ::read(promote_read_, &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    if (byte == 'q') return;  // drain teardown
    promote();
  }
}

Json Server::promote() {
  std::lock_guard<std::mutex> lock(repl_mu_);
  const bool was_standby = standby_.load(std::memory_order_acquire);
  if (was_standby) {
    // Exceed every epoch seen anywhere, persist BEFORE serving: a
    // deposed primary restarting later must find itself outranked even
    // if this process crashes right after the first post-promotion ACK.
    epoch_ = std::max(epoch_, peer_epoch_) + 1;
    persist_epoch_locked();
    standby_.store(false, std::memory_order_release);
    SvcMetrics::get().role.set(1.0);
    SvcMetrics::get().epoch.set(static_cast<double>(epoch_));
    util::Logger::global()
        .info("svc.promoted")
        .num("epoch", epoch_)
        .num("peer_epoch", peer_epoch_);
  }
  Json out = Json::object();
  out.set("role", Json(std::string("primary")));
  out.set("epoch", Json(epoch_));
  out.set("promoted", Json(was_standby));
  return out;
}

void Server::repl_accept_loop() {
  while (wait_readable(repl_listener_.fd(), repl_wake_read_)) {
    Socket sock = accept_connection(repl_listener_);
    if (!sock.valid()) break;
    {
      std::lock_guard<std::mutex> lock(repl_conn_mu_);
      repl_conn_fd_ = sock.fd();
    }
    repl_serve_connection(sock);
    {
      std::lock_guard<std::mutex> lock(repl_conn_mu_);
      repl_conn_fd_ = -1;
    }
  }
}

void Server::repl_serve_connection(Socket& sock) {
  LineReader reader(sock.fd());
  std::string line;
  const auto reply = [&sock](const Json& msg) {
    return sock.send_all(msg.dump() + "\n");
  };
  while (reader.read_line(&line) == LineReader::Status::kLine) {
    Json msg;
    try {
      msg = Json::parse(line);
    } catch (const std::exception&) {
      break;  // framing lost; the sender reconnects and resends unacked
    }
    const std::string type = msg.string_or("t", "");
    const long long msg_epoch =
        static_cast<long long>(msg.number_or("epoch", 0.0));
    if (type == "hello") {
      Json out = Json::object();
      std::lock_guard<std::mutex> lock(repl_mu_);
      if (!standby_.load(std::memory_order_acquire) || msg_epoch < epoch_) {
        out.set("t", Json(std::string("fenced")));
        out.set("epoch", Json(epoch_));
        SvcMetrics::get().repl_fenced.add();
        util::Logger::global()
            .warn("svc.repl_fenced_peer")
            .num("peer_epoch", msg_epoch)
            .num("epoch", epoch_);
        reply(out);
        break;
      }
      peer_epoch_ = std::max(peer_epoch_, msg_epoch);
      if (msg_epoch > epoch_) {
        epoch_ = msg_epoch;  // adopt the primary's epoch
        persist_epoch_locked();
        SvcMetrics::get().epoch.set(static_cast<double>(epoch_));
      }
      out.set("t", Json(std::string("ok")));
      out.set("epoch", Json(epoch_));
      if (!reply(out)) break;
      util::Logger::global().info("svc.repl_attached").num("epoch", epoch_);
      continue;
    }
    if (type == "rec") {
      const auto index = static_cast<std::uint64_t>(msg.number_or("i", 0.0));
      const std::string session = msg.string_or("session", "");
      const Json* record = msg.find("record");
      Json out = Json::object();
      // One lock spans the epoch check and the apply: a record is either
      // fully applied before a racing promote() bumps the epoch, or
      // fenced after — never half-applied under the new epoch.
      std::lock_guard<std::mutex> lock(repl_mu_);
      if (!standby_.load(std::memory_order_acquire) || msg_epoch < epoch_) {
        out.set("t", Json(std::string("fenced")));
        out.set("epoch", Json(epoch_));
        SvcMetrics::get().repl_fenced.add();
        if (!reply(out)) break;
        continue;  // keep fencing; the deposed sender stops itself
      }
      peer_epoch_ = std::max(peer_epoch_, msg_epoch);
      std::string error;
      if (record == nullptr || session.empty())
        error = "malformed replication record";
      else
        repl_apply_record(session, *record, &error);
      if (!error.empty()) {
        out.set("t", Json(std::string("err")));
        out.set("i", Json(static_cast<double>(index)));
        out.set("message", Json(error));
        util::Logger::global()
            .error("svc.repl_reject")
            .str("session", session)
            .str("message", error);
        if (!reply(out)) break;
        continue;  // sender goes terminal (broken); we stay a standby
      }
      SvcMetrics::get().repl_applied.add();
      out.set("t", Json(std::string("ack")));
      out.set("i", Json(static_cast<double>(index)));
      if (!reply(out)) break;
      continue;
    }
    break;  // unknown message type: drop the connection
  }
  sock.shutdown_both();
}

bool Server::repl_apply_record(const std::string& session_name,
                               const Json& record, std::string* error) {
  const std::string kind = record.string_or("t", "");
  try {
    if (kind == "create" || kind == "snapshot") {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(session_name);
      if (kind == "create" && it != sessions_.end())
        return true;  // duplicate resend of a birth we already applied
      if (kind == "snapshot" && it != sessions_.end()) {
        const auto snap_seq =
            static_cast<long long>(record.number_or("seq", -1.0));
        if (it->second->enqueued_seq() == snap_seq) {
          // Pure compaction: our state already IS this snapshot (stream
          // order guarantees the prefix matched); just shrink the log.
          it->second->compact_journal_replicated(record.dump());
          return true;
        }
        // Re-seed (e.g. the primary restarted and streams a fresh
        // snapshot): replace our copy wholesale.
        sessions_.erase(it);
      }
      std::string name;
      auto session = session_from_birth(record, &name);
      if (name != session_name) {
        *error = "birth names session \"" + name + "\", stream says \"" +
                 session_name + "\"";
        return false;
      }
      if (!config_.journal_dir.empty())
        attach_fresh_journal(session.get(), record.dump());
      sessions_.emplace(name, std::move(session));
      return true;
    }
    if (kind == "delta") {
      Session* session = nullptr;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        auto it = sessions_.find(session_name);
        if (it == sessions_.end()) {
          *error = "delta for unknown session \"" + session_name + "\"";
          return false;
        }
        session = it->second.get();
      }
      const auto seq = static_cast<long long>(record.number_or("seq", -1.0));
      if (seq <= session->enqueued_seq())
        return true;  // duplicate resend after a reconnect
      if (!session->replay_journal_record(record, error)) return false;
      session->journal_append_replicated(record.dump());
      return true;
    }
    *error = "unknown record type \"" + kind + "\"";
    return false;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

void Server::wait_drained() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    if (drain_done_) return;
    if (drain_running_) {
      drain_cv_.wait(lock, [this] { return drain_done_; });
      return;
    }
    drain_running_ = true;
  }

  // Block until a trigger arrives (the pipe may already have bytes).
  char buf[16];
  while (true) {
    const ssize_t n = ::read(wake_read_, buf, sizeof buf);
    if (n > 0) break;
    if (n < 0 && errno == EINTR) continue;
    break;  // pipe closed — treat as a trigger
  }
  perform_drain();

  std::lock_guard<std::mutex> lock(drain_mu_);
  drain_done_ = true;
  drain_cv_.notify_all();
}

void Server::perform_drain() {
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting. The accept loop watches the same pipe; closing the
  // listener also unblocks a racing accept().
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

  // 1b. Stop the standby receiver (wake its accept loop, cut the live
  // stream connection) and the promote watcher.
  if (repl_thread_.joinable()) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(repl_wake_write_, &byte, 1);
    repl_listener_.shutdown_both();
    {
      std::lock_guard<std::mutex> lock(repl_conn_mu_);
      if (repl_conn_fd_ >= 0) ::shutdown(repl_conn_fd_, SHUT_RDWR);
    }
    repl_thread_.join();
    repl_listener_.close();
  }
  if (promote_thread_.joinable()) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(promote_write_, &byte, 1);
    promote_thread_.join();
  }

  // 2. Serve all queued work. Sessions reply through still-open
  // connections; new submissions get typed `draining` errors. Once a
  // session is drained its journal covers exactly its final state, so
  // compact it to a single snapshot record (restarts replay nothing).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [name, session] : sessions_) {
      session->drain();
      if (session->has_journal()) session->compact_journal_after_drain();
    }
  }

  // 3. Persist the drained state.
  if (!config_.snapshot_path.empty()) {
    Json root = Json::object();
    root.set("v", Json(kProtocolVersion));
    Json sessions = Json::array();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [name, session] : sessions_)
        sessions.push_back(session->snapshot_json_after_drain());
    }
    root.set("sessions", std::move(sessions));
    obs::write_text_file(config_.snapshot_path, root.dump() + "\n");
  }

  // 4. Close connections: stop the reactors (epoll mode) and join the
  // reader threads (thread mode).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& weak : conns_)
      if (auto conn = weak.lock()) conn->close_now();
  }
  if (eventloop_ != nullptr) eventloop_->stop();
  std::map<std::thread::id, std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(conn_threads_);
    finished_conn_threads_.clear();
  }
  for (auto& [id, t] : readers)
    if (t.joinable()) t.join();

  // 5. Tear down sessions (queues are empty; workers already joined and
  // executor tasks waited out), then the executor they ran on, then the
  // replication sender they pointed at.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.clear();
  }
  if (executor_ != nullptr) executor_->stop();
  if (repl_sender_ != nullptr) repl_sender_->stop();

  // 6. Stop the telemetry sidecar last, so /healthz kept answering 503
  // (draining) for the whole drain window.
  if (slo_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(slo_mu_);
      slo_stop_ = true;
    }
    slo_cv_.notify_all();
    slo_thread_.join();
  }
  if (http_ != nullptr) http_->stop();

  util::Logger::global().info("svc.server_drained");
}

}  // namespace amf::svc
