#include "svc/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "svc/proto.hpp"
#include "util/error.hpp"

namespace amf::svc {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw util::ContractError(what + ": " + std::strerror(errno));
}

/// connect() with an optional deadline: non-blocking connect, poll for
/// writability, then check SO_ERROR. Restores blocking mode on success.
void connect_checked(int fd, const sockaddr* addr, socklen_t len,
                     double timeout_ms, const std::string& what) {
  if (timeout_ms <= 0.0) {
    if (::connect(fd, addr, len) != 0) fail_errno(what);
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno(what + " fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    fail_errno(what + " fcntl(O_NONBLOCK)");
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno == EAGAIN) {
    // AF_UNIX reports a full accept backlog as EAGAIN with NO connect in
    // flight — polling POLLOUT would lie (an unconnected unix fd shows
    // writable with SO_ERROR 0), so retry the connect itself until the
    // deadline.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(timeout_ms);
    do {
      if (std::chrono::steady_clock::now() >= deadline)
        throw util::ContractError(what + ": connect timed out after " +
                                  std::to_string(timeout_ms) + " ms");
      ::poll(nullptr, 0, 2);  // brief sleep between backlog probes
      rc = ::connect(fd, addr, len);
    } while (rc != 0 && errno == EAGAIN);
  }
  if (rc != 0) {
    if (errno != EINPROGRESS) fail_errno(what);
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int n;
    do {
      n = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (n < 0 && errno == EINTR);
    if (n < 0) fail_errno(what + " poll");
    if (n == 0)
      throw util::ContractError(what + ": connect timed out after " +
                                std::to_string(timeout_ms) + " ms");
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0)
      fail_errno(what + " getsockopt(SO_ERROR)");
    if (err != 0) {
      errno = err;
      fail_errno(what);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0)
    fail_errno(what + " fcntl(restore)");
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(std::string_view data) const {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

LineReader::Status LineReader::read_line(std::string* out) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return Status::kLine;
    }
    if (buffer_.size() > kMaxLineBytes) return Status::kOversized;
    if (eof_) return buffer_.empty() ? Status::kEof : Status::kError;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::kTimeout;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

namespace {

int effective_backlog(const ListenOptions& options) {
  if (options.backlog > 0) return options.backlog;
  return SOMAXCONN;
}

}  // namespace

Socket listen_unix(const std::string& path, ListenOptions options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AMF_REQUIRE(path.size() < sizeof addr.sun_path,
              "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    fail_errno("bind(" + path + ")");
  if (::listen(sock.fd(), effective_backlog(options)) != 0)
    fail_errno("listen(" + path + ")");
  return sock;
}

Socket listen_tcp(int port, int* bound_port, ListenOptions options) {
  AMF_REQUIRE(port >= 0 && port <= 65535, "tcp port out of range");
  AMF_REQUIRE(bound_port != nullptr, "bound_port is required");
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
#ifdef SO_REUSEPORT
  if (options.reuseport)
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
#endif

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    fail_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(sock.fd(), effective_backlog(options)) != 0)
    fail_errno("listen");

  sockaddr_in actual{};
  socklen_t len = sizeof actual;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) !=
      0)
    fail_errno("getsockname");
  *bound_port = ntohs(actual.sin_port);
  return sock;
}

void enable_keepalive(int fd) {
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one);
  // Tighten the probe schedule from the kernel defaults (hours) to under
  // a minute: idle 30 s, then 3 probes 5 s apart. Harmless no-ops on
  // AF_UNIX fds, same as the TCP_NODELAY idiom below.
#ifdef TCP_KEEPIDLE
  const int idle_s = 30;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle_s, sizeof idle_s);
#endif
#ifdef TCP_KEEPINTVL
  const int interval_s = 5;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval_s, sizeof interval_s);
#endif
#ifdef TCP_KEEPCNT
  const int probes = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &probes, sizeof probes);
#endif
}

Socket accept_connection(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      // Latency over bandwidth: responses are single small lines.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      // Detect half-dead peers instead of holding their session forever.
      enable_keepalive(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();
  }
}

Socket connect_unix(const std::string& path, double timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AMF_REQUIRE(path.size() < sizeof addr.sun_path,
              "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_UNIX)");
  connect_checked(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                  timeout_ms, "connect(" + path + ")");
  return sock;
}

Socket connect_tcp(const std::string& host, int port, double timeout_ms) {
  AMF_REQUIRE(port > 0 && port <= 65535, "tcp port out of range");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw util::ContractError("connect: invalid IPv4 address " + host);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  enable_keepalive(sock.fd());
  connect_checked(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                  timeout_ms,
                  "connect(" + host + ":" + std::to_string(port) + ")");
  return sock;
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0)
    fail_errno("fcntl(F_SETFL)");
}

void set_recv_timeout_ms(int fd, double ms) {
  timeval tv{};
  if (ms > 0.0) {
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;  // floor 1 ms
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool wait_readable(int fd, int wake_fd) {
  pollfd fds[2];
  fds[0].fd = fd;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fd;
  fds[1].events = POLLIN;
  while (true) {
    const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0)
      return false;
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return true;
  }
}

}  // namespace amf::svc
