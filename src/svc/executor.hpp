// executor.hpp — the shared session executor: a fixed-size work-stealing
// thread pool that replaces one-worker-thread-per-session.
//
// Sessions become runnable tasks: a session schedules itself when a
// request arrives or its batch window expires, runs one batch drain on
// whichever worker picks it up, and reschedules itself while work
// remains. The session's own `scheduled` flag guarantees at most one
// task per session is queued or running at any time, so per-session
// ordering is exactly the single-worker behaviour — pinned by the
// bit-identity tests in svc_executor_test.cpp.
//
// ## Scheduling
//
// Each worker owns a deque (its local run queue); external submitters
// feed a shared injection queue. A worker takes, in order: the front of
// its own deque, the front of the injection queue, then the BACK of
// another worker's deque (the steal — counted, exported as the
// amf_svc_executor_steal_count gauge). Tasks submitted from a worker
// thread go to that worker's deque (locality); everything else is
// injected. Idle workers sleep on one condition variable; every submit
// wakes at most one.
//
// ## Timers
//
// submit_after() parks a task on a dedicated timer thread (a min-heap of
// deadlines) and injects it when due — the batch-window expiry mechanism
// for executor-driven sessions. Timer resolution is the scheduler's; the
// batch window is a lower bound exactly as it is in thread mode.
//
// ## Shutdown
//
// stop() wakes everyone and joins. Tasks still queued at stop() are
// dropped — the server tears sessions down first (each waits for its
// in-flight task), so by the time the executor stops no task can
// reference a live session.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amf::svc {

class SvcExecutor {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (minimum 1) plus the timer thread.
  explicit SvcExecutor(std::size_t threads);
  ~SvcExecutor();  ///< stop()

  SvcExecutor(const SvcExecutor&) = delete;
  SvcExecutor& operator=(const SvcExecutor&) = delete;

  /// Enqueues a task: on the calling worker's own deque when called from
  /// a pool thread, on the injection queue otherwise. No-op after stop().
  void submit(Task task);

  /// Runs `task` no earlier than `delay_ms` from now (>= 0).
  void submit_after(double delay_ms, Task task);

  /// Wakes and joins every thread; queued tasks are dropped. Idempotent.
  void stop();

  std::size_t threads() const { return workers_.size(); }
  /// Tasks taken from another worker's deque since construction.
  long long steal_count() const;
  /// Tasks currently queued (all deques + injection; excludes running).
  long long queue_depth() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
  };
  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal deadlines
    Task task;
    bool operator>(const TimerEntry& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  void worker_loop(std::size_t index);
  void timer_loop();
  /// One scheduling round: local pop, injection pop, then steal sweep.
  bool take_task(std::size_t index, Task* out);
  void inject(Task task);
  void note_submitted();
  void note_taken();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mu_;
  std::deque<Task> inject_;

  /// Sleep/wake: pending_ counts queued tasks; sleepers wait on cv_.
  std::mutex sleep_mu_;
  std::condition_variable cv_;
  std::atomic<long long> pending_{0};
  std::atomic<long long> steals_{0};
  std::atomic<bool> stop_{false};

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  std::uint64_t timer_seq_ = 0;
  std::thread timer_thread_;
};

}  // namespace amf::svc
