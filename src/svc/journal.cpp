#include "svc/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "svc/proto.hpp"
#include "util/error.hpp"

namespace amf::svc {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw util::ContractError(what + ": " + std::strerror(errno));
}

void write_full(int fd, const char* data, std::size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("journal write(" + path + ")");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void fdatasync_checked(int fd, const std::string& path) {
  if (::fdatasync(fd) != 0) fail_errno("journal fdatasync(" + path + ")");
}

/// fsyncs the directory containing `path` so a rename is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail_errno("journal open dir(" + dir + ")");
  ::fsync(fd);  // best effort: some filesystems reject directory fsync
  ::close(fd);
}

void put_u32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

FsyncPolicy parse_fsync_policy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "off") return FsyncPolicy::kOff;
  throw SvcError(ErrorCode::kBadRequest,
                 "unknown fsync policy \"" + std::string(name) +
                     "\" (always|batch|off)");
}

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kOff: return "off";
  }
  return "?";
}

std::uint32_t crc32(std::string_view data) {
  // IEEE 802.3 reflected CRC-32, table generated on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::string Journal::frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  put_u32(&out, static_cast<std::uint32_t>(payload.size()));
  put_u32(&out, crc32(payload));
  out.append(payload);
  return out;
}

Journal::Journal(std::string path, FsyncPolicy policy, bool truncate)
    : path_(std::move(path)), policy_(policy) {
  const int flags =
      O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) fail_errno("journal open(" + path_ + ")");
}

Journal::~Journal() {
  if (fd_ >= 0) {
    if (dirty_) ::fdatasync(fd_);
    ::close(fd_);
  }
}

void Journal::append(std::string_view payload) {
  AMF_REQUIRE(payload.size() <= kMaxLineBytes,
              "journal record exceeds the protocol line bound");
  const std::string framed = frame(payload);
  std::lock_guard<std::mutex> lock(mu_);
  write_full(fd_, framed.data(), framed.size(), path_);
  ++appends_since_compact_;
  if (policy_ == FsyncPolicy::kAlways) {
    fdatasync_checked(fd_, path_);
  } else if (policy_ == FsyncPolicy::kBatch) {
    dirty_ = true;
  }
}

void Journal::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  sync_locked();
}

void Journal::sync_locked() {
  if (policy_ != FsyncPolicy::kBatch || !dirty_) return;
  fdatasync_checked(fd_, path_);
  dirty_ = false;
}

void Journal::compact(std::string_view payload) {
  const std::string framed = frame(payload);
  const std::string tmp = path_ + ".tmp";
  std::lock_guard<std::mutex> lock(mu_);
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) fail_errno("journal open(" + tmp + ")");
  try {
    write_full(tmp_fd, framed.data(), framed.size(), tmp);
    fdatasync_checked(tmp_fd, tmp);
  } catch (...) {
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(tmp_fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_errno("journal rename(" + tmp + " -> " + path_ + ")");
  }
  sync_parent_dir(path_);
  // The old fd now points at the unlinked inode; switch to the new log.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) fail_errno("journal reopen(" + path_ + ")");
  dirty_ = false;
  appends_since_compact_ = 0;
}

long long Journal::appends_since_compact() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_since_compact_;
}

void Journal::truncate_to(const std::string& path, std::size_t bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0)
    fail_errno("journal truncate(" + path + ")");
}

JournalReplay Journal::read_all(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;  // no journal yet: an empty, valid replay
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  std::size_t offset = 0;
  auto reject = [&](const std::string& why) {
    out.truncated = true;
    out.warning = path + ": " + why + " at byte " + std::to_string(offset) +
                  "; dropping " + std::to_string(data.size() - offset) +
                  " trailing bytes (torn or corrupt tail)";
  };
  while (offset < data.size()) {
    if (data.size() - offset < 8) {
      reject("torn record header");
      break;
    }
    const std::uint32_t length = get_u32(data.data() + offset);
    const std::uint32_t want_crc = get_u32(data.data() + offset + 4);
    if (length > kMaxLineBytes) {
      reject("implausible record length " + std::to_string(length));
      break;
    }
    if (data.size() - offset - 8 < length) {
      reject("torn record payload (" + std::to_string(length) +
             " bytes framed, " + std::to_string(data.size() - offset - 8) +
             " present)");
      break;
    }
    const std::string_view payload(data.data() + offset + 8, length);
    if (crc32(payload) != want_crc) {
      reject("record checksum mismatch");
      break;
    }
    out.records.push_back(JournalRecord{std::string(payload)});
    out.offsets.push_back(offset);
    offset += 8 + length;
  }
  out.valid_bytes = offset;
  return out;
}

}  // namespace amf::svc
