// net.hpp — minimal POSIX stream-socket plumbing for the service.
//
// The service listens on a Unix-domain socket (the default: local,
// filesystem-permissioned) or a loopback TCP port, and both ends frame
// messages as '\n'-terminated lines (see proto.hpp). This header wraps
// exactly the POSIX surface the server and client need: RAII fds,
// EINTR-safe full writes (MSG_NOSIGNAL — a dead peer yields an error
// return, never SIGPIPE), and a buffered line reader with the protocol's
// hard line-length bound so a hostile peer cannot grow a buffer without
// terminating a line.
//
// Setup failures (bind, listen, connect) throw util::ContractError with
// the errno string; steady-state I/O failures are status returns, because
// a disconnecting client is normal operation for a server.
#pragma once

#include <string>
#include <string_view>

namespace amf::svc {

/// Move-only RAII file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer (EINTR-safe, SIGPIPE-free). False on any
  /// error — the connection is then dead.
  bool send_all(std::string_view data) const;

  /// Half-closes both directions, unblocking any reader. Keeps the fd.
  void shutdown_both() const;

  void close();

 private:
  int fd_ = -1;
};

/// Buffered '\n'-line reader over a socket.
class LineReader {
 public:
  enum class Status { kLine, kEof, kError, kOversized, kTimeout };

  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until one full line (without the '\n'; a trailing '\r' is
  /// stripped for telnet-style peers) is available. kEof on orderly
  /// close, kOversized when a line exceeds kMaxLineBytes (the caller
  /// must drop the connection: framing is lost), kTimeout when the fd
  /// has a receive timeout (set_recv_timeout_ms) and it expired.
  /// Partial bytes stay buffered across a kTimeout, so a retried read
  /// resumes mid-line without losing framing.
  Status read_line(std::string* out);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Listener tuning shared by the Unix and TCP binds.
struct ListenOptions {
  /// accept() backlog; 0 picks SOMAXCONN. At thousands of concurrent
  /// connects the old hard-coded 64 caused spurious connect timeouts.
  int backlog = 0;
  /// SO_REUSEPORT (TCP only): lets several listener sockets share one
  /// port so multiple acceptors (or shard processes) can split the
  /// accept load kernel-side.
  bool reuseport = false;
};

/// Binds + listens on a Unix-domain socket, replacing a stale file at
/// `path`. Throws util::ContractError on failure (e.g. path too long).
Socket listen_unix(const std::string& path, ListenOptions options = {});

/// Binds + listens on loopback TCP. `port` 0 picks an ephemeral port;
/// `*bound_port` (required) receives the actual one.
Socket listen_tcp(int port, int* bound_port, ListenOptions options = {});

/// Switches O_NONBLOCK on or off. Throws util::ContractError on failure.
void set_nonblocking(int fd, bool on);

/// Accepts one connection; invalid socket on error (listener closed).
/// TCP connections get TCP_NODELAY and keepalive (enable_keepalive).
Socket accept_connection(const Socket& listener);

/// Turns on SO_KEEPALIVE with an aggressive probe schedule (30 s idle,
/// 5 s interval, 3 probes) so a half-dead TCP peer surfaces as an I/O
/// error within a minute instead of hanging its session forever.
/// Applied to accepted and client TCP sockets; no-op on AF_UNIX fds.
void enable_keepalive(int fd);

/// Client-side connects. `timeout_ms` > 0 bounds the connect itself
/// (non-blocking connect + poll); 0 keeps the OS default blocking
/// behaviour. Throws util::ContractError on failure or timeout (the
/// message names which).
Socket connect_unix(const std::string& path, double timeout_ms = 0.0);
Socket connect_tcp(const std::string& host, int port,
                   double timeout_ms = 0.0);

/// Applies SO_RCVTIMEO so blocked reads fail with kTimeout after `ms`
/// (0 restores indefinite blocking).
void set_recv_timeout_ms(int fd, double ms);

/// Blocks until `fd` is readable or `wake_fd` has data (drain trigger).
/// Returns false when the wait says shut down (wake_fd fired or error).
bool wait_readable(int fd, int wake_fd);

}  // namespace amf::svc
