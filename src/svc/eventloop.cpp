#include "svc/eventloop.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "svc/net.hpp"
#include "util/error.hpp"

namespace amf::svc {

EventLoop::EventLoop(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  reactors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->epfd = ::epoll_create1(0);
    AMF_REQUIRE(reactor->epfd >= 0, "epoll_create1 failed");
    int fds[2];
    AMF_REQUIRE(::pipe(fds) == 0, "reactor wake pipe creation failed");
    reactor->wake_read = fds[0];
    reactor->wake_write = fds[1];
    set_nonblocking(reactor->wake_read, true);  // drained with a read loop
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = reactor->wake_read;
    AMF_REQUIRE(::epoll_ctl(reactor->epfd, EPOLL_CTL_ADD, reactor->wake_read,
                            &ev) == 0,
                "epoll_ctl(wake pipe) failed");
    reactors_.push_back(std::move(reactor));
  }
  for (auto& reactor : reactors_)
    reactor->thread = std::thread([this, r = reactor.get()] { run(r); });
}

EventLoop::~EventLoop() {
  stop();
  for (auto& reactor : reactors_) {
    if (reactor->epfd >= 0) ::close(reactor->epfd);
    if (reactor->wake_read >= 0) ::close(reactor->wake_read);
    if (reactor->wake_write >= 0) ::close(reactor->wake_write);
  }
}

std::size_t EventLoop::pick() {
  return next_.fetch_add(1, std::memory_order_relaxed) % reactors_.size();
}

void EventLoop::add(std::size_t reactor_index, int fd, Callback callback) {
  Reactor& reactor = *reactors_[reactor_index];
  {
    std::lock_guard<std::mutex> lock(reactor.mu);
    reactor.callbacks[fd] =
        std::make_shared<Callback>(std::move(callback));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.fd = fd;
  if (::epoll_ctl(reactor.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard<std::mutex> lock(reactor.mu);
    reactor.callbacks.erase(fd);
    AMF_REQUIRE(false, "epoll_ctl(ADD) failed");
  }
}

void EventLoop::set_want_write(std::size_t reactor_index, int fd, bool want) {
  Reactor& reactor = *reactors_[reactor_index];
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (want ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  // ENOENT (already removed) and EBADF (fd closed after drain) are fine:
  // a late writer arming EPOLLOUT on a dead connection is a no-op.
  (void)::epoll_ctl(reactor.epfd, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::remove(std::size_t reactor_index, int fd) {
  Reactor& reactor = *reactors_[reactor_index];
  (void)::epoll_ctl(reactor.epfd, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard<std::mutex> lock(reactor.mu);
  reactor.callbacks.erase(fd);
}

void EventLoop::run(Reactor* reactor) {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(reactor->epfd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == reactor->wake_read) {
        char buf[16];
        while (::read(reactor->wake_read, buf, sizeof buf) > 0) {
        }
        continue;
      }
      std::shared_ptr<Callback> callback;
      {
        std::lock_guard<std::mutex> lock(reactor->mu);
        const auto it = reactor->callbacks.find(fd);
        if (it != reactor->callbacks.end()) callback = it->second;
      }
      if (callback != nullptr) (*callback)(events[i].events);
    }
  }
}

void EventLoop::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& reactor : reactors_) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(reactor->wake_write, &byte, 1);
  }
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
    std::lock_guard<std::mutex> lock(reactor->mu);
    reactor->callbacks.clear();
  }
}

}  // namespace amf::svc
