#include "svc/http.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "util/error.hpp"

namespace amf::svc {

namespace {

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string serialize(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

}  // namespace

HttpListener::HttpListener(int port, HttpHandler handler,
                           HttpOptions options)
    : handler_(std::move(handler)),
      options_(options),
      requested_port_(port) {
  AMF_REQUIRE(handler_ != nullptr, "HttpListener needs a handler");
  tokens_ = options_.burst > 0.0 ? options_.burst : 1.0;
}

HttpListener::~HttpListener() { stop(); }

void HttpListener::start() {
  AMF_REQUIRE(!started_, "HttpListener already started");
  int fds[2];
  AMF_REQUIRE(::pipe(fds) == 0, "HttpListener self-pipe creation failed");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
  listener_ = listen_tcp(requested_port_, &bound_port_);
  started_ = true;
  last_refill_s_ = steady_s();
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpListener::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
  listener_.shutdown_both();
  if (thread_.joinable()) thread_.join();
  listener_.close();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  wake_read_ = wake_write_ = -1;
}

void HttpListener::serve_loop() {
  while (wait_readable(listener_.fd(), wake_read_)) {
    Socket sock = accept_connection(listener_);
    if (!sock.valid()) break;
    handle_connection(std::move(sock));
  }
}

bool HttpListener::admit_locked_thread() {
  if (options_.rate_per_s <= 0.0) return true;
  const double now = steady_s();
  const double cap = options_.burst > 0.0 ? options_.burst : 1.0;
  tokens_ += (now - last_refill_s_) * options_.rate_per_s;
  if (tokens_ > cap) tokens_ = cap;
  last_refill_s_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void HttpListener::handle_connection(Socket sock) {
  set_recv_timeout_ms(sock.fd(), options_.recv_timeout_ms);
  LineReader reader(sock.fd());
  std::string line;
  if (reader.read_line(&line) != LineReader::Status::kLine) return;

  // Request line: METHOD SP target SP version.  Anything unparsable is
  // a 400; non-GET methods are 405 (every endpoint is read-only).
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  HttpResponse resp;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request line\n";
    sock.send_all(serialize(resp));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Drain the header block (bounded by the line reader's size cap and
  // the receive timeout); the connection closes after one response.
  while (true) {
    const LineReader::Status status = reader.read_line(&line);
    if (status != LineReader::Status::kLine) {
      if (status == LineReader::Status::kEof) break;
      return;  // timeout / error / oversized header: drop silently
    }
    if (line.empty()) break;
  }

  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
  } else if (!admit_locked_thread()) {
    resp.status = 429;
    resp.body = "rate limited\n";
  } else {
    const std::size_t q = target.find('?');
    const std::string path =
        q == std::string::npos ? target : target.substr(0, q);
    const std::string query =
        q == std::string::npos ? std::string() : target.substr(q + 1);
    try {
      resp = handler_(path, query);
    } catch (const std::exception& e) {
      resp = HttpResponse{};
      resp.status = 500;
      resp.body = std::string("handler error: ") + e.what() + "\n";
    }
  }
  sock.send_all(serialize(resp));
}

bool http_get(int port, const std::string& target, std::string* body,
              int* status, double timeout_ms) {
  Socket sock;
  try {
    sock = connect_tcp("127.0.0.1", port, timeout_ms);
  } catch (const util::ContractError&) {
    return false;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!sock.send_all(request)) return false;
  set_recv_timeout_ms(sock.fd(), timeout_ms);

  LineReader reader(sock.fd());
  std::string line;
  if (reader.read_line(&line) != LineReader::Status::kLine) return false;
  // Status line: HTTP/1.1 SP code SP text.
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  int code = 0;
  for (std::size_t i = sp1 + 1; i < line.size() && line[i] != ' '; ++i) {
    if (line[i] < '0' || line[i] > '9') return false;
    code = code * 10 + (line[i] - '0');
  }
  if (status != nullptr) *status = code;

  long long content_length = -1;
  while (true) {
    if (reader.read_line(&line) != LineReader::Status::kLine) return false;
    if (line.empty()) break;
    const std::string prefix = "content-length:";
    if (line.size() > prefix.size()) {
      std::string lower;
      for (char c : line)
        lower.push_back(c >= 'A' && c <= 'Z'
                            ? static_cast<char>(c - 'A' + 'a')
                            : c);
      if (lower.compare(0, prefix.size(), prefix) == 0) {
        content_length = 0;
        for (std::size_t i = prefix.size(); i < lower.size(); ++i) {
          const char c = lower[i];
          if (c == ' ') continue;
          if (c < '0' || c > '9') return false;
          content_length = content_length * 10 + (c - '0');
        }
      }
    }
  }

  // Body: the listener always sends Content-Length and closes after, so
  // read lines until EOF and rebuild (bodies are '\n'-structured text).
  std::string out;
  while (true) {
    const LineReader::Status s = reader.read_line(&line);
    if (s == LineReader::Status::kLine) {
      out += line;
      out.push_back('\n');
      continue;
    }
    if (s == LineReader::Status::kEof) break;
    return false;
  }
  if (content_length >= 0 &&
      static_cast<long long>(out.size()) > content_length)
    out.resize(static_cast<std::size_t>(content_length));
  if (body != nullptr) *body = std::move(out);
  return true;
}

int parse_http_addr(const std::string& addr) {
  std::string host;
  std::string port_str = addr;
  const std::size_t colon = addr.rfind(':');
  if (colon != std::string::npos) {
    host = addr.substr(0, colon);
    port_str = addr.substr(colon + 1);
  }
  if (!host.empty() && host != "127.0.0.1" && host != "localhost")
    throw util::ContractError(
        "--http binds loopback only (use 127.0.0.1, localhost, or a bare "
        "port); got host \"" + host + "\"");
  if (port_str.empty())
    throw util::ContractError("--http needs a port (host:port or port)");
  int port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9')
      throw util::ContractError("--http port \"" + port_str +
                                "\" is not a number");
    port = port * 10 + (c - '0');
    if (port > 65535)
      throw util::ContractError("--http port out of range");
  }
  return port;
}

}  // namespace amf::svc
