// journal.hpp — per-session write-ahead delta journal.
//
// The serving contract ACKs a delta at admission; without a journal a
// `kill -9` discards every acknowledged mutation since the last graceful
// drain. The journal closes that hole: every ACKed op is appended to a
// per-session record log *before* the ACK line is written to the socket,
// so a restart with `--journal` replays the exact ACKed prefix and the
// recovered session serves allocations bit-identical to an uncrashed
// server (pinned by the fork/kill-9 recovery test).
//
// ## On-disk format
//
// A journal file is a sequence of framed records, nothing else:
//
//   [u32 payload_length (LE)] [u32 crc32(payload) (LE)] [payload bytes]
//
// The payload is one JSON object (the same dialect as the wire protocol):
//   {"t":"create", "capacities":[...], "policy":..., ...}   session birth
//   {"t":"snapshot", "seq":S, "snapshot":{...}}             compaction base
//   {"t":"delta", "seq":N, "op":"add_job", "job":7, ...}    one ACKed op
//
// Records are appended with a single write() each, so a crash can tear at
// most the final record. read_all() tolerates exactly that: it stops at
// the first frame that is short, oversized, or fails its CRC, reports the
// valid byte prefix plus a warning, and never throws on torn input — the
// caller truncates the file to `valid_bytes` and serves on. (A mid-file
// corruption behaves the same way: everything after the first bad frame
// is untrusted, because frame boundaries downstream of it are guesses.)
//
// ## Durability policy
//
//   kAlways  fdatasync after every append, before the ACK is sent. An
//            ACKed delta survives any crash.
//   kBatch   appends are plain write()s; the session worker calls sync()
//            once per drained batch (piggybacking on the batch window).
//            A crash can lose at most the final window of ACKed deltas.
//   kOff     no explicit syncing; the kernel page cache decides. A crash
//            loses up to everything since the last natural writeback —
//            the bench baseline, not a production setting.
//
// ## Compaction
//
// The log would otherwise grow without bound. When the session is
// quiescent (no admitted-but-unapplied deltas, so every journaled record
// is covered by the current state) the worker rewrites the file as a
// single snapshot record via compact(): write a temp file, fdatasync,
// rename over the log, fdatasync the directory. A crash at any point
// leaves either the old complete log or the new one, never neither.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace amf::svc {

/// When appends reach the disk relative to the ACK they guard.
enum class FsyncPolicy { kAlways, kBatch, kOff };

/// Parses "always" | "batch" | "off"; throws SvcError(kBadRequest)
/// otherwise.
FsyncPolicy parse_fsync_policy(std::string_view name);
const char* to_string(FsyncPolicy policy);

/// CRC-32 (IEEE 802.3, reflected) of `data` — the record checksum.
std::uint32_t crc32(std::string_view data);

/// One decoded journal payload (still JSON text; the session layer parses
/// and interprets it).
struct JournalRecord {
  std::string payload;
};

/// Result of scanning a journal file.
struct JournalReplay {
  std::vector<JournalRecord> records;  ///< valid prefix, in append order
  /// Byte offset where records[i] starts — recovery truncates here when
  /// record i is well-framed but semantically rejected (everything after
  /// a rejected record depends on state the replay never reached).
  std::vector<std::size_t> offsets;
  std::size_t valid_bytes = 0;  ///< offset the file should be truncated to
  bool truncated = false;       ///< a torn/corrupt tail was dropped
  std::string warning;          ///< human-readable reason when truncated
};

class Journal {
 public:
  /// Opens (creating if needed) the journal at `path` for appending.
  /// `truncate` discards any existing contents — a freshly created
  /// session must not inherit a stale log from a deleted namesake.
  /// Throws util::ContractError when the file cannot be opened.
  Journal(std::string path, FsyncPolicy policy, bool truncate = false);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }
  FsyncPolicy policy() const { return policy_; }

  /// Appends one framed record (a single write(); kAlways also syncs).
  /// Thread-safe. Throws util::ContractError on I/O failure — losing a
  /// journaled write silently would void the durability contract.
  void append(std::string_view payload);

  /// Flushes pending appends to disk under kBatch (no-op otherwise).
  /// Thread-safe.
  void sync();

  /// Atomically replaces the log with the single record `payload` (the
  /// compaction snapshot). Thread-safe; appends concurrent with a
  /// compact serialize after it.
  void compact(std::string_view payload);

  /// Records appended (or kept by compact) since this writer opened.
  long long appends_since_compact() const;

  /// Truncates a crashed log's torn tail before reopening it for
  /// appends. Static: runs before any writer exists.
  static void truncate_to(const std::string& path, std::size_t bytes);

  /// Scans a journal file. Missing file -> empty replay (a session with
  /// no journal yet). Never throws on torn or corrupt input; the bad
  /// tail is reported via `truncated`/`warning`/`valid_bytes`.
  static JournalReplay read_all(const std::string& path);

  /// Frames `payload` exactly as append() writes it (tests and the
  /// chaos fixtures build corrupt logs from this).
  static std::string frame(std::string_view payload);

 private:
  void sync_locked();

  const std::string path_;
  const FsyncPolicy policy_;
  mutable std::mutex mu_;
  int fd_ = -1;
  bool dirty_ = false;  ///< unsynced appends under kBatch
  long long appends_since_compact_ = 0;
};

}  // namespace amf::svc
