#include "svc/session.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/amf.hpp"
#include "core/eamf.hpp"
#include "core/persite.hpp"
#include "obs/span.hpp"
#include "svc/executor.hpp"
#include "svc/repl.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace amf::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

bool is_delta_op(Op op) {
  return op == Op::kAddJob || op == Op::kFinishJob || op == Op::kSiteEvent ||
         op == Op::kSetCapacity;
}

std::unique_ptr<core::Allocator> make_policy(const std::string& name) {
  if (name == "amf") return std::make_unique<core::AmfAllocator>();
  if (name == "eamf") return std::make_unique<core::EnhancedAmfAllocator>();
  if (name == "psmf") return std::make_unique<core::PerSiteMaxMin>();
  throw SvcError(ErrorCode::kBadRequest,
                 "unknown policy \"" + name + "\" (amf|eamf|psmf)");
}

/// Wire trace id of a request; clients stamp it as an optional numeric
/// "trace" field (protocol v:1 addition; absent or 0 = untraced).
std::uint64_t trace_of(const Request& req) {
  const double t = req.body.number_or("trace", 0.0);
  if (!(t > 0.0) || !std::isfinite(t)) return 0;
  return static_cast<std::uint64_t>(t);
}

/// Typed error for a delta whose standby confirmation did not arrive
/// (repl-ack mode). The delta IS applied locally — the message says so,
/// and a retried rid re-checks the confirmation instead of re-applying.
std::string repl_wait_error(double id, ReplSender::WaitResult wait) {
  switch (wait) {
    case ReplSender::WaitResult::kFenced:
      return error_line(id, ErrorCode::kNotPrimary,
                        "replication fenced by a higher epoch: this server "
                        "was deposed; retry against the new primary");
    case ReplSender::WaitResult::kBroken:
      return error_line(id, ErrorCode::kInternal,
                        "replication stream broken; delta applied locally "
                        "but unconfirmed by the standby");
    default:
      return error_line(id, ErrorCode::kInternal,
                        "standby confirmation timed out; delta applied "
                        "locally, retry to re-check confirmation");
  }
}

}  // namespace

SvcMetrics& SvcMetrics::get() {
  static SvcMetrics m = [] {
    auto& reg = obs::Registry::global();
    SvcMetrics out;
    out.requests_create_session = reg.counter(
        "amf_svc_requests_total_create_session", "create_session requests");
    out.requests_add_job =
        reg.counter("amf_svc_requests_total_add_job", "add_job requests");
    out.requests_finish_job =
        reg.counter("amf_svc_requests_total_finish_job", "finish_job requests");
    out.requests_site_event =
        reg.counter("amf_svc_requests_total_site_event", "site_event requests");
    out.requests_set_capacity = reg.counter(
        "amf_svc_requests_total_set_capacity", "set_capacity requests");
    out.requests_solve =
        reg.counter("amf_svc_requests_total_solve", "solve requests");
    out.requests_snapshot =
        reg.counter("amf_svc_requests_total_snapshot", "snapshot requests");
    out.requests_stats =
        reg.counter("amf_svc_requests_total_stats", "stats requests");
    out.requests_drain =
        reg.counter("amf_svc_requests_total_drain", "drain requests");
    out.requests_ping =
        reg.counter("amf_svc_requests_total_ping", "ping requests");
    out.requests_promote =
        reg.counter("amf_svc_requests_total_promote", "promote requests");
    out.requests_evict_session = reg.counter(
        "amf_svc_requests_total_evict_session", "evict_session requests");
    out.rejects = reg.counter(
        "amf_svc_rejects_total",
        "requests shed by admission control (typed overloaded responses)");
    out.batches =
        reg.counter("amf_svc_batches_total", "request batches drained");
    out.solve_calls = reg.counter("amf_svc_solve_calls_total",
                                  "allocator invocations by the service");
    out.solves_served =
        reg.counter("amf_svc_solves_served_total",
                    "solve responses (exceeds solve_calls under coalescing)");
    out.cache_hits =
        reg.counter("amf_svc_solve_cache_hits_total",
                    "solves served from the unchanged-state result cache");
    out.journal_records =
        reg.counter("amf_svc_journal_records_total",
                    "deltas appended to session write-ahead journals");
    out.journal_syncs = reg.counter(
        "amf_svc_journal_syncs_total",
        "journal fsyncs (one per ACK at always, one per batch at batch)");
    out.journal_compactions =
        reg.counter("amf_svc_journal_compactions_total",
                    "journal snapshot-compactions performed");
    out.dedup_hits = reg.counter(
        "amf_svc_dedup_hits_total",
        "retried deltas re-ACKed from the rid window without re-applying");
    out.journal_replay_warnings = reg.counter(
        "amf_svc_journal_replay_warnings",
        "journal-replay truncate-and-warn events (torn tails, rejected or "
        "unreadable records)");
    out.repl_sent = reg.counter("amf_svc_repl_sent_total",
                                "journal records sent to the standby");
    out.repl_acked = reg.counter("amf_svc_repl_acked_total",
                                 "journal records the standby confirmed");
    out.repl_applied = reg.counter("amf_svc_repl_applied_total",
                                   "replicated records applied as standby");
    out.repl_fenced = reg.counter(
        "amf_svc_repl_fenced_total",
        "replication messages rejected for carrying a stale epoch");
    out.repl_reconnects = reg.counter("amf_svc_repl_reconnects_total",
                                      "replication sender reconnects");
    out.role = reg.gauge("amf_svc_role",
                         "serving role: 1 = primary, 0 = warm standby");
    out.epoch = reg.gauge("amf_svc_epoch", "current fencing epoch");
    out.repl_lag_records = reg.gauge(
        "amf_svc_repl_lag_records", "records offered but unacked by standby");
    out.repl_lag_bytes = reg.gauge(
        "amf_svc_repl_lag_bytes", "bytes offered but unacked by standby");
    out.repl_lag_ms = reg.gauge("amf_svc_repl_lag_ms",
                                "age of the oldest unacked record (ms)");
    out.open_connections = reg.gauge("amf_svc_open_connections",
                                     "live client connections");
    out.executor_queue_depth =
        reg.gauge("amf_svc_executor_queue_depth",
                  "tasks queued in the shared session executor");
    out.executor_steal_count =
        reg.gauge("amf_svc_executor_steal_count",
                  "session executor work-steals since process start");
    out.batch_size =
        reg.histogram("amf_svc_batch_size", "requests per drained batch");
    out.queue_wait_ms = reg.histogram(
        "amf_svc_queue_wait_ms", "request queue wait before processing (ms)");
    out.solve_ms =
        reg.histogram("amf_svc_solve_ms", "allocator wall time per call (ms)");
    out.turnaround_ms = reg.histogram(
        "amf_svc_turnaround_ms", "solve enqueue-to-response latency (ms)");
    out.stage_parse_ms = reg.histogram(
        "amf_svc_stage_parse_ms", "request line parse time (ms)");
    out.stage_queue_ms = reg.histogram(
        "amf_svc_stage_queue_ms", "enqueue to batch-drain start (ms)");
    out.stage_batch_wait_ms =
        reg.histogram("amf_svc_stage_batch_wait_ms",
                      "batch accumulation-window wait per batch (ms)");
    out.stage_solve_ms = reg.histogram(
        "amf_svc_stage_solve_ms", "allocator call time per solve stage (ms)");
    out.stage_journal_ms = reg.histogram(
        "amf_svc_stage_journal_ms", "write-ahead journal append time (ms)");
    out.stage_reply_ms = reg.histogram(
        "amf_svc_stage_reply_ms", "response write time (ms)");
    return out;
  }();
  return m;
}

obs::Counter& SvcMetrics::request_counter(Op op) {
  switch (op) {
    case Op::kCreateSession: return requests_create_session;
    case Op::kAddJob: return requests_add_job;
    case Op::kFinishJob: return requests_finish_job;
    case Op::kSiteEvent: return requests_site_event;
    case Op::kSetCapacity: return requests_set_capacity;
    case Op::kSolve: return requests_solve;
    case Op::kSnapshot: return requests_snapshot;
    case Op::kStats: return requests_stats;
    case Op::kDrain: return requests_drain;
    case Op::kPing: return requests_ping;
    case Op::kPromote: return requests_promote;
    case Op::kEvictSession: return requests_evict_session;
  }
  return requests_ping;
}

Session::Session(std::string name, std::vector<double> capacities,
                 SessionConfig config)
    : name_(std::move(name)), config_(std::move(config)) {
  AMF_REQUIRE(config_.max_queue_depth >= 1, "max_queue_depth must be >= 1");
  for (double c : capacities)
    if (!std::isfinite(c) || c < 0.0)
      throw SvcError(ErrorCode::kBadRequest,
                     "capacities must be finite and >= 0");
  if (capacities.empty())
    throw SvcError(ErrorCode::kBadRequest, "session needs at least one site");
  nominal_capacities_ = capacities;
  site_factors_.assign(capacities.size(), 1.0);
  problem_ = core::AllocationProblem({}, std::move(capacities));
  base_policy_ = make_policy(config_.policy);
  robust_ = std::make_unique<core::RobustAllocator>(*base_policy_);
  util::Logger::global()
      .info("svc.session_start")
      .str("session", name_)
      .str("policy", config_.policy)
      .num("sites", nominal_capacities_.size());
  if (config_.executor == nullptr)
    worker_ = std::thread([this] { worker_loop(); });
}

Session::Session(std::string name, core::Matrix capacity_matrix,
                 SessionConfig config)
    : name_(std::move(name)), config_(std::move(config)) {
  AMF_REQUIRE(config_.max_queue_depth >= 1, "max_queue_depth must be >= 1");
  if (capacity_matrix.empty())
    throw SvcError(ErrorCode::kBadRequest, "session needs at least one site");
  const std::size_t r = capacity_matrix.front().size();
  if (r == 0)
    throw SvcError(ErrorCode::kBadRequest,
                   "session needs at least one resource");
  for (const auto& row : capacity_matrix) {
    if (row.size() != r)
      throw SvcError(ErrorCode::kBadRequest,
                     "capacity rows must share one resource count");
    for (double c : row)
      if (!std::isfinite(c) || c < 0.0)
        throw SvcError(ErrorCode::kBadRequest,
                       "capacities must be finite and >= 0");
  }
  nominal_matrix_ = capacity_matrix;
  nominal_capacities_.resize(capacity_matrix.size());
  for (std::size_t s = 0; s < capacity_matrix.size(); ++s)
    nominal_capacities_[s] = flow::binding_min(capacity_matrix[s]);
  site_factors_.assign(capacity_matrix.size(), 1.0);
  try {
    problem_ = core::AllocationProblem::multi({}, std::move(capacity_matrix),
                                              {});
  } catch (const util::ContractError& e) {
    throw SvcError(ErrorCode::kBadRequest, e.what());
  }
  base_policy_ = make_policy(config_.policy);
  robust_ = std::make_unique<core::RobustAllocator>(*base_policy_);
  util::Logger::global()
      .info("svc.session_start")
      .str("session", name_)
      .str("policy", config_.policy)
      .num("sites", nominal_capacities_.size())
      .num("resources", problem_.resources());
  if (config_.executor == nullptr)
    worker_ = std::thread([this] { worker_loop(); });
}

Session::Session(std::string name, ProblemSnapshot snapshot,
                 SessionConfig config, long long initial_seq)
    : name_(std::move(name)), config_(std::move(config)) {
  AMF_REQUIRE(config_.max_queue_depth >= 1, "max_queue_depth must be >= 1");
  AMF_REQUIRE(initial_seq >= 0, "initial_seq must be >= 0");
  enqueued_seq_ = processed_seq_ = seq_ = initial_seq;
  problem_ = std::move(snapshot.problem);
  nominal_capacities_ = std::move(snapshot.nominal_capacities);
  nominal_matrix_ = std::move(snapshot.nominal_matrix);
  if (nominal_capacities_.size() !=
      static_cast<std::size_t>(problem_.sites()))
    throw SvcError(ErrorCode::kBadRequest,
                   "snapshot nominal capacity width mismatch");
  if (multi_session() != problem_.multi_resource())
    throw SvcError(ErrorCode::kBadRequest,
                   "snapshot nominal matrix must accompany exactly the "
                   "multi-resource problems");
  if (multi_session()) {
    if (nominal_matrix_.size() != static_cast<std::size_t>(problem_.sites()))
      throw SvcError(ErrorCode::kBadRequest,
                     "snapshot nominal matrix height mismatch");
    for (const auto& row : nominal_matrix_)
      if (row.size() != static_cast<std::size_t>(problem_.resources()))
        throw SvcError(ErrorCode::kBadRequest,
                       "snapshot nominal matrix width mismatch");
  }
  if (snapshot.job_ids.size() != static_cast<std::size_t>(problem_.jobs()))
    throw SvcError(ErrorCode::kBadRequest, "snapshot job id count mismatch");
  job_ids_ = std::move(snapshot.job_ids);
  site_factors_.assign(nominal_capacities_.size(), 1.0);
  for (std::size_t s = 0; s < nominal_capacities_.size(); ++s)
    if (nominal_capacities_[s] > 0.0)
      site_factors_[s] =
          problem_.capacity(static_cast<int>(s)) / nominal_capacities_[s];
  for (long long id : job_ids_) {
    if (!projected_alive_.insert(id).second)
      throw SvcError(ErrorCode::kBadRequest, "snapshot has duplicate job ids");
    next_job_id_ = std::max(next_job_id_, id + 1);
  }
  if (problem_.jobs() > 0)
    workloads_mode_ = problem_.has_workloads() ? 1 : 0;
  base_policy_ = make_policy(config_.policy);
  robust_ = std::make_unique<core::RobustAllocator>(*base_policy_);
  util::Logger::global()
      .info("svc.session_restore")
      .str("session", name_)
      .str("policy", config_.policy)
      .num("sites", nominal_capacities_.size())
      .num("jobs", job_ids_.size())
      .num("seq", initial_seq);
  if (config_.executor == nullptr)
    worker_ = std::thread([this] { worker_loop(); });
}

Session::~Session() {
  std::deque<Item> leftovers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopped_ = true;
    cv_.notify_all();
    // Executor mode: wait for the in-flight task (including one parked
    // on a batch-window timer — it fires, sees stopped_, and clears
    // scheduled_ as its last touch of the session).
    idle_cv_.wait(lock, [this] { return !scheduled_; });
  }
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (const Item& item : leftovers)
    if (item.respond)
      item.respond(error_line(item.req.id, ErrorCode::kDraining,
                              "session stopped before serving this request"));
}

void Session::submit(const Request& req, Responder respond) {
  auto& metrics = SvcMetrics::get();
  Item item;
  item.req = req;
  item.respond = std::move(respond);
  item.enqueued = Clock::now();
  item.trace = trace_of(req);
  AMF_SPAN_FLOW_STEP("svc/enqueue", item.trace);

  std::unique_lock<std::mutex> lock(mu_);
  if (draining_ || stopped_) {
    lock.unlock();
    util::Logger::global()
        .info("svc.shed")
        .str("session", name_)
        .str("reason", "draining")
        .trace(item.trace);
    item.respond(error_line(req.id, ErrorCode::kDraining,
                            "session \"" + name_ + "\" is draining"));
    return;
  }
  if (queue_.size() >= config_.max_queue_depth) {
    lock.unlock();
    metrics.rejects.add();
    util::Logger::global()
        .warn("svc.shed")
        .str("session", name_)
        .str("reason", "queue_full")
        .num("depth", config_.max_queue_depth)
        .trace(item.trace);
    item.respond(error_line(
        req.id, ErrorCode::kOverloaded,
        "session \"" + name_ + "\" queue full (depth " +
            std::to_string(config_.max_queue_depth) + ")"));
    return;
  }

  if (is_delta_op(req.op)) {
    item.rid = req.body.string_or("rid", "");
    // Idempotent retry: a rid we already ACKed is answered from the
    // window verbatim (same seq, same job handle) and never re-applied.
    if (!item.rid.empty()) {
      const auto hit = dedup_ack_.find(item.rid);
      if (hit != dedup_ack_.end()) {
        Json ack = hit->second.ack;
        const std::uint64_t pending = hit->second.repl_index;
        lock.unlock();
        metrics.dedup_hits.add();
        AMF_SPAN_FLOW_STEP("svc/dedup_hit", item.trace);
        // In repl-ack mode the retried ACK owes the same guarantee the
        // original did: the standby has the record. The delta stays
        // applied either way — only the confirmation is awaited.
        if (repl_ != nullptr && repl_->ack_mode() && pending != 0 &&
            !repl_->acked(pending)) {
          const auto wait =
              repl_->wait_acked(pending, repl_->ack_timeout_ms());
          if (wait != ReplSender::WaitResult::kAcked) {
            item.respond(repl_wait_error(req.id, wait));
            return;
          }
        }
        ack.set("dup", Json(true));
        item.respond(ok_line(req.id, ack));
        return;
      }
    }
    Json ack;
    try {
      validate_delta_locked(req, &item);
      ++enqueued_seq_;
      ack = Json::object();
      ack.set("seq", Json(enqueued_seq_));
      if (req.op == Op::kAddJob) ack.set("job", Json(item.job_id));
    } catch (const SvcError& e) {
      lock.unlock();
      item.respond(error_line(req.id, e.code(), e.what()));
      return;
    }
    // Write-ahead: the record must be on the log (and, under
    // fsync=always, on the platter) before the ACK escapes. Appending
    // under mu_ keeps record order identical to seq order. A failed
    // append rolls the admission back — no ACK without a journal entry.
    std::uint64_t repl_index = 0;
    if (journal_ != nullptr) {
      std::string payload;
      try {
        const auto append_start = Clock::now();
        {
          AMF_SPAN_FLOW_STEP("svc/journal_append", item.trace);
          payload = delta_record_payload_locked(item, enqueued_seq_);
          journal_->append(payload);
        }
        metrics.stage_journal_ms.observe(
            ms_since(append_start, Clock::now()));
        metrics.journal_records.add();
        if (journal_->policy() == FsyncPolicy::kAlways)
          metrics.journal_syncs.add();
      } catch (const std::exception& e) {
        --enqueued_seq_;
        rollback_delta_locked(item);
        lock.unlock();
        item.respond(error_line(
            req.id, ErrorCode::kInternal,
            std::string("journal append failed: ") + e.what()));
        return;
      }
      // Stream the record to the standby in admission (seq) order.
      // Never roll back past this point: once the record may exist
      // remotely, reusing its seq for different content would silently
      // diverge the standby. A failed offer therefore keeps the delta
      // admitted; only the ACK semantics change (see below).
      if (repl_ != nullptr) (void)repl_->offer(name_, payload, &repl_index);
    }
    if (!item.rid.empty()) remember_ack_locked(item.rid, ack, repl_index);
    // ACK at admission: the delta is now owed to every later solve. The
    // queued copy carries no responder — the worker never replies to
    // deltas, and teardown must not reply twice.
    Responder respond_ack = std::move(item.respond);
    item.respond = nullptr;
    queue_.push_back(std::move(item));
    cv_.notify_all();
    schedule_locked();
    lock.unlock();
    // repl-ack mode: the ACK is withheld until the standby confirms the
    // append (off mu_, so the session keeps serving). On timeout or a
    // terminal sender the client gets a typed error while the delta
    // stays applied — a retry of the same rid re-checks the
    // confirmation through the dedup window, never re-applies.
    if (repl_ != nullptr && repl_->ack_mode() && repl_index != 0) {
      const auto wait =
          repl_->wait_acked(repl_index, repl_->ack_timeout_ms());
      if (wait != ReplSender::WaitResult::kAcked) {
        respond_ack(repl_wait_error(req.id, wait));
        return;
      }
    }
    respond_ack(ok_line(req.id, ack));
    return;
  }

  if (req.op == Op::kSolve) {
    item.budget_ms = req.body.number_or("budget_ms", config_.default_budget_ms);
    if (!std::isfinite(item.budget_ms) || item.budget_ms < 0.0) {
      lock.unlock();
      item.respond(error_line(req.id, ErrorCode::kBadRequest,
                              "budget_ms must be finite and >= 0"));
      return;
    }
    item.latest = req.body.bool_or("latest", false);
  } else if (req.op != Op::kSnapshot) {
    lock.unlock();
    item.respond(error_line(req.id, ErrorCode::kBadRequest,
                            std::string("op ") + to_string(req.op) +
                                " is not a session op"));
    return;
  }
  queue_.push_back(std::move(item));
  cv_.notify_all();
  schedule_locked();
}

void Session::validate_delta_locked(const Request& req, Item* item) {
  const int m = static_cast<int>(nominal_capacities_.size());
  const Json& body = req.body;
  switch (req.op) {
    case Op::kAddJob: {
      const Json* demands = body.find("demands");
      if (demands == nullptr)
        throw SvcError(ErrorCode::kBadRequest, "add_job needs demands");
      auto d = number_array(*demands, m, "demands");
      for (double x : d)
        if (x < 0.0)
          throw SvcError(ErrorCode::kBadRequest, "demands must be >= 0");
      const Json* workloads = body.find("workloads");
      const bool with_workloads = workloads != nullptr;
      if (workloads_mode_ >= 0 && with_workloads != (workloads_mode_ == 1))
        throw SvcError(ErrorCode::kBadRequest,
                       "all jobs of a session must agree on carrying "
                       "workloads");
      if (with_workloads) {
        auto w = number_array(*workloads, m, "workloads");
        for (int s = 0; s < m; ++s) {
          if (w[static_cast<std::size_t>(s)] < 0.0)
            throw SvcError(ErrorCode::kBadRequest, "workloads must be >= 0");
          if (w[static_cast<std::size_t>(s)] > 0.0 &&
              d[static_cast<std::size_t>(s)] <= 0.0)
            throw SvcError(ErrorCode::kBadRequest,
                           "positive workload requires a positive demand cap");
        }
      }
      const double weight = body.number_or("weight", 1.0);
      if (!std::isfinite(weight) || weight <= 0.0)
        throw SvcError(ErrorCode::kBadRequest, "weight must be finite, > 0");
      const Json* profile = body.find("profile");
      if (profile != nullptr) {
        if (!multi_session())
          throw SvcError(ErrorCode::kBadRequest,
                         "job profiles need a multi-resource session");
        auto p = number_array(*profile, problem_.resources(), "profile");
        bool any = false;
        for (double x : p) {
          if (x < 0.0)
            throw SvcError(ErrorCode::kBadRequest,
                           "profile entries must be >= 0");
          any = any || x > 0.0;
        }
        if (!any)
          throw SvcError(ErrorCode::kBadRequest,
                         "a job profile needs a positive entry");
      }
      item->prev_workloads_mode = workloads_mode_;
      item->job_id = next_job_id_++;
      projected_alive_.insert(item->job_id);
      if (workloads_mode_ < 0) workloads_mode_ = with_workloads ? 1 : 0;
      return;
    }
    case Op::kFinishJob: {
      const Json* job = body.find("job");
      if (job == nullptr || !job->is_number())
        throw SvcError(ErrorCode::kBadRequest, "finish_job needs a job id");
      const long long id = static_cast<long long>(job->as_number());
      if (projected_alive_.erase(id) == 0)
        throw SvcError(ErrorCode::kBadRequest,
                       "unknown job id " + std::to_string(id));
      item->job_id = id;
      return;
    }
    case Op::kSiteEvent: {
      const double site = body.number_or("site", -1.0);
      if (site < 0.0 || site >= static_cast<double>(m) ||
          site != std::floor(site))
        throw SvcError(ErrorCode::kBadRequest, "site index out of range");
      const Json* factors = body.find("capacity_factors");
      if (factors != nullptr) {
        if (!multi_session())
          throw SvcError(ErrorCode::kBadRequest,
                         "capacity_factors needs a multi-resource session");
        auto f = number_array(*factors, problem_.resources(),
                              "capacity_factors");
        for (double x : f)
          if (x < 0.0)
            throw SvcError(ErrorCode::kBadRequest,
                           "capacity_factors entries must be >= 0");
        return;
      }
      const double factor = body.number_or("capacity_factor", -1.0);
      if (!std::isfinite(factor) || factor < 0.0)
        throw SvcError(ErrorCode::kBadRequest,
                       "capacity_factor must be finite and >= 0");
      return;
    }
    case Op::kSetCapacity: {
      const double site = body.number_or("site", -1.0);
      const Json* value = body.find("value");
      if (site < 0.0 || site >= static_cast<double>(m) ||
          site != std::floor(site))
        throw SvcError(ErrorCode::kBadRequest, "site index out of range");
      if (multi_session()) {
        if (value == nullptr || !value->is_array())
          throw SvcError(ErrorCode::kBadRequest,
                         "set_capacity on a multi-resource session needs a "
                         "capacity vector value");
        auto row = number_array(*value, problem_.resources(), "value");
        for (double c : row)
          if (c < 0.0)
            throw SvcError(ErrorCode::kBadRequest,
                           "capacity entries must be >= 0");
        return;
      }
      if (value == nullptr || !value->is_number() ||
          !std::isfinite(value->as_number()) || value->as_number() < 0.0)
        throw SvcError(ErrorCode::kBadRequest,
                       "set_capacity needs a finite value >= 0");
      return;
    }
    default:
      throw SvcError(ErrorCode::kBadRequest, "not a delta op");
  }
}

void Session::apply_delta(const Item& item) {
  const Json& body = item.req.body;
  core::ProblemDelta delta;
  switch (item.req.op) {
    case Op::kAddJob: {
      const int m = static_cast<int>(nominal_capacities_.size());
      auto demands = number_array(*body.find("demands"), m, "demands");
      std::vector<double> workloads;
      const Json* w = body.find("workloads");
      if (w != nullptr) workloads = number_array(*w, m, "workloads");
      std::vector<double> profile;
      const Json* p = body.find("profile");
      if (p != nullptr)
        profile = number_array(*p, problem_.resources(), "profile");
      delta = core::ProblemDelta::job_arrived(std::move(demands),
                                              std::move(workloads),
                                              body.number_or("weight", 1.0),
                                              {}, std::move(profile));
      job_ids_.push_back(item.job_id);
      break;
    }
    case Op::kFinishJob: {
      const auto row = std::find(job_ids_.begin(), job_ids_.end(),
                                 item.job_id);
      AMF_ASSERT(row != job_ids_.end(), "admitted job id lost");
      delta = core::ProblemDelta::job_departed(
          static_cast<int>(row - job_ids_.begin()));
      job_ids_.erase(row);
      break;
    }
    case Op::kSiteEvent: {
      const int site = static_cast<int>(body.number_or("site", 0.0));
      const auto su = static_cast<std::size_t>(site);
      const Json* factors = body.find("capacity_factors");
      if (multi_session()) {
        const auto& nominal = nominal_matrix_[su];
        std::vector<double> row(nominal.size());
        double minf = 1.0;
        bool first = true;
        for (std::size_t r = 0; r < nominal.size(); ++r) {
          const double f = factors != nullptr
                               ? factors->as_array()[r].as_number()
                               : body.number_or("capacity_factor", 1.0);
          row[r] = nominal[r] * f;
          minf = first ? f : std::min(minf, f);
          first = false;
        }
        site_factors_[su] = minf;
        delta = core::ProblemDelta::set_capacity_vec(site, std::move(row));
        break;
      }
      const double factor = body.number_or("capacity_factor", 1.0);
      site_factors_[su] = factor;
      delta = core::ProblemDelta::site_capacity(
          site, nominal_capacities_[su] * factor);
      break;
    }
    case Op::kSetCapacity: {
      const int site = static_cast<int>(body.number_or("site", 0.0));
      const auto su = static_cast<std::size_t>(site);
      if (multi_session()) {
        auto row = number_array(*body.find("value"), problem_.resources(),
                                "value");
        nominal_matrix_[su] = row;
        nominal_capacities_[su] = flow::binding_min(row);
        site_factors_[su] = 1.0;
        delta = core::ProblemDelta::set_capacity_vec(site, std::move(row));
        break;
      }
      const double value = body.find("value")->as_number();
      nominal_capacities_[su] = value;
      site_factors_[su] = 1.0;
      delta = core::ProblemDelta::site_capacity(site, value);
      break;
    }
    default:
      AMF_ASSERT(false, "apply_delta on a non-delta op");
  }
  problem_ = std::move(problem_).apply(delta);
  workspace_.apply(delta);
  ++seq_;
}

void Session::rollback_delta_locked(const Item& item) {
  switch (item.req.op) {
    case Op::kAddJob:
      projected_alive_.erase(item.job_id);
      if (item.job_id == next_job_id_ - 1) --next_job_id_;
      workloads_mode_ = item.prev_workloads_mode;
      return;
    case Op::kFinishJob:
      projected_alive_.insert(item.job_id);
      return;
    default:
      return;  // site_event / set_capacity: validation mutates nothing
  }
}

void Session::remember_ack_locked(const std::string& rid, const Json& ack,
                                  std::uint64_t repl_index) {
  if (config_.dedup_window == 0) return;
  if (!dedup_ack_.emplace(rid, DedupEntry{ack, repl_index}).second)
    return;  // replay of a known rid
  dedup_order_.push_back(rid);
  while (dedup_order_.size() > config_.dedup_window) {
    dedup_ack_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

std::string Session::delta_record_payload_locked(const Item& item,
                                                 long long seq) const {
  const Json& body = item.req.body;
  Json rec = Json::object();
  rec.set("t", Json(std::string("delta")));
  rec.set("seq", Json(seq));
  rec.set("op", Json(std::string(to_string(item.req.op))));
  if (!item.rid.empty()) rec.set("rid", Json(item.rid));
  switch (item.req.op) {
    case Op::kAddJob: {
      rec.set("job", Json(item.job_id));
      rec.set("demands", *body.find("demands"));
      const Json* w = body.find("workloads");
      if (w != nullptr) rec.set("workloads", *w);
      rec.set("weight", Json(body.number_or("weight", 1.0)));
      const Json* p = body.find("profile");
      if (p != nullptr) rec.set("profile", *p);
      break;
    }
    case Op::kFinishJob:
      rec.set("job", Json(item.job_id));
      break;
    case Op::kSiteEvent: {
      rec.set("site", Json(body.number_or("site", 0.0)));
      const Json* factors = body.find("capacity_factors");
      if (factors != nullptr)
        rec.set("capacity_factors", *factors);
      else
        rec.set("capacity_factor",
                Json(body.number_or("capacity_factor", 1.0)));
      break;
    }
    case Op::kSetCapacity:
      rec.set("site", Json(body.number_or("site", 0.0)));
      rec.set("value", *body.find("value"));
      break;
    default:
      AMF_ASSERT(false, "journal payload for a non-delta op");
  }
  return rec.dump();
}

void Session::attach_journal(std::unique_ptr<Journal> journal) {
  std::lock_guard<std::mutex> lock(mu_);
  AMF_REQUIRE(queue_.empty() && enqueued_seq_ == seq_,
              "attach_journal requires a quiescent session");
  journal_ = std::move(journal);
}

void Session::attach_replication(ReplSender* repl) {
  std::lock_guard<std::mutex> lock(mu_);
  AMF_REQUIRE(queue_.empty() && enqueued_seq_ == seq_,
              "attach_replication requires a quiescent session");
  repl_ = repl;
}

long long Session::enqueued_seq() {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_seq_;
}

void Session::journal_append_replicated(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return;
  journal_->append(payload);
  SvcMetrics::get().journal_records.add();
  if (journal_->policy() == FsyncPolicy::kAlways)
    SvcMetrics::get().journal_syncs.add();
}

void Session::compact_journal_replicated(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return;
  journal_->compact(payload);
  SvcMetrics::get().journal_compactions.add();
}

bool Session::replay_journal_record(const Json& record, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  // Recovery runs before the server accepts traffic, so the worker is
  // parked on an empty queue and the solver state is safe to touch here.
  AMF_ASSERT(queue_.empty(), "journal replay raced live traffic");
  Request req;
  req.op = Op::kPing;
  try {
    req.op = parse_op(record.string_or("op", ""));
  } catch (const SvcError& e) {
    *error = e.what();
    return false;
  }
  if (!is_delta_op(req.op)) {
    *error = "journal delta record carries non-delta op";
    return false;
  }
  const long long recorded_seq =
      static_cast<long long>(record.number_or("seq", -1.0));
  if (recorded_seq != enqueued_seq_ + 1) {
    *error = "journal seq gap: expected " + std::to_string(enqueued_seq_ + 1) +
             ", record carries " + std::to_string(recorded_seq);
    return false;
  }
  req.body = record;
  Item item;
  item.req = std::move(req);
  try {
    validate_delta_locked(item.req, &item);
  } catch (const SvcError& e) {
    *error = e.what();
    return false;
  }
  if (item.req.op == Op::kAddJob) {
    const long long recorded =
        static_cast<long long>(record.number_or("job", -1.0));
    if (recorded != item.job_id) {
      rollback_delta_locked(item);
      *error = "journal job id " + std::to_string(recorded) +
               " does not match replayed handle " +
               std::to_string(item.job_id);
      return false;
    }
  }
  ++enqueued_seq_;
  apply_delta(item);
  processed_seq_ = seq_;
  item.rid = record.string_or("rid", "");
  if (!item.rid.empty()) {
    Json ack = Json::object();
    ack.set("seq", Json(enqueued_seq_));
    if (item.req.op == Op::kAddJob) ack.set("job", Json(item.job_id));
    // Replayed records owe no standby confirmation (repl_index 0): on a
    // recovered primary the seeding snapshot covers them, and on a
    // standby the record came *from* the stream.
    remember_ack_locked(item.rid, ack, 0);
  }
  return true;
}

std::string Session::snapshot_record_payload_locked_state() const {
  Json rec = Json::object();
  rec.set("t", Json(std::string("snapshot")));
  rec.set("seq", Json(seq_));
  rec.set("policy", Json(config_.policy));
  rec.set("batch_window_ms", Json(config_.batch_window_ms));
  rec.set("default_budget_ms", Json(config_.default_budget_ms));
  rec.set("snapshot", snapshot_json_locked_state());
  return rec.dump();
}

void Session::compact_journal_after_drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AMF_REQUIRE(draining_ || stopped_,
                "compact_journal_after_drain needs a drained session");
  }
  if (journal_ == nullptr) return;
  journal_->compact(snapshot_record_payload_locked_state());
  SvcMetrics::get().journal_compactions.add();
}

Json Session::solve_result_json(const Item& item) const {
  Json out = Json::object();
  out.set("seq", Json(last_solve_seq_));
  if (!last_tier_.empty()) out.set("tier", Json(last_tier_));
  if (item.budget_ms > 0.0) out.set("budget_ms", Json(item.budget_ms));
  out.set("allocation", allocation_to_json(last_allocation_, job_ids_));
  return out;
}

void Session::serve_run(std::vector<Item>* run) {
  auto& metrics = SvcMetrics::get();
  const auto start = Clock::now();

  // Admission control, serve-side: shed aged-out and deadline-expired
  // solves with the typed overloaded response before doing any work.
  std::vector<Item> kept;
  kept.reserve(run->size());
  for (Item& item : *run) {
    if (item.req.op != Op::kSolve) {
      kept.push_back(std::move(item));
      continue;
    }
    const double wait = ms_since(item.enqueued, start);
    const bool aged =
        config_.max_queue_age_ms > 0.0 && wait > config_.max_queue_age_ms;
    const bool expired = item.budget_ms > 0.0 && wait >= item.budget_ms;
    if (aged || expired) {
      metrics.rejects.add();
      util::Logger::global()
          .warn("svc.shed")
          .str("session", name_)
          .str("reason", aged ? "queue_age" : "deadline")
          .num("wait_ms", wait)
          .trace(item.trace);
      AMF_SPAN_FLOW_STEP("svc/shed", item.trace);
      item.respond(error_line(
          item.req.id, ErrorCode::kOverloaded,
          aged ? "solve shed: queue wait exceeded max_queue_age_ms"
               : "solve shed: request deadline expired while queued"));
      continue;
    }
    kept.push_back(std::move(item));
  }

  bool solved_this_run = false;
  for (Item& item : kept) {
    if (item.req.op == Op::kSnapshot) {
      Json out = Json::object();
      out.set("snapshot", snapshot_json_locked_state());
      item.respond(ok_line(item.req.id, out));
      continue;
    }
    // Solve. The first solve of the run does the work; the rest share it
    // (the state cannot have changed: runs contain no deltas).
    if (!solved_this_run) {
      if (!broken_.empty()) {
        item.respond(error_line(item.req.id, ErrorCode::kInternal, broken_));
        continue;
      }
      if (seq_ == last_solve_seq_ && has_allocation_ && cacheable_) {
        metrics.cache_hits.add();
        solved_this_run = true;
      } else {
        // Tightest remaining budget across the coalesced solves; queue
        // wait is charged against each request's own budget.
        double budget = 0.0;
        for (const Item& peer : kept) {
          if (peer.req.op != Op::kSolve || peer.budget_ms <= 0.0) continue;
          const double remaining =
              peer.budget_ms - ms_since(peer.enqueued, start);
          budget = budget <= 0.0 ? remaining : std::min(budget, remaining);
        }
        try {
          const auto solve_start = Clock::now();
          {
            AMF_SPAN_FLOW_STEP("svc/allocator", item.trace);
            if (problem_.jobs() == 0) {
              last_allocation_ = core::Allocation({}, base_policy_->name());
            } else {
              std::optional<util::StopToken> token;
              std::optional<util::ScopedStop> scoped;
              if (budget > 0.0) {
                token.emplace(util::Deadline::after_ms(budget));
                scoped.emplace(*token);
              }
              last_allocation_ = robust_->allocate(problem_, workspace_);
            }
          }
          const double solve_wall = ms_since(solve_start, Clock::now());
          metrics.solve_ms.observe(solve_wall);
          metrics.stage_solve_ms.observe(solve_wall);
          if (config_.slow_solve_ms > 0.0 &&
              solve_wall > config_.slow_solve_ms) {
            util::Logger::global()
                .warn("svc.slow_solve")
                .str("session", name_)
                .num("solve_ms", solve_wall)
                .num("threshold_ms", config_.slow_solve_ms)
                .num("jobs", problem_.jobs())
                .trace(item.trace);
          }
          metrics.solve_calls.add();
          has_allocation_ = true;
          last_solve_seq_ = seq_;
          cacheable_ = budget <= 0.0;
          last_tier_ = problem_.jobs() == 0
                           ? ""
                           : core::to_string(robust_->fallback_stats().last);
          solved_this_run = true;
        } catch (const std::exception& e) {
          broken_ = std::string("solve failed: ") + e.what();
          item.respond(error_line(item.req.id, ErrorCode::kInternal, broken_));
          continue;
        }
      }
    }
    metrics.solves_served.add();
    metrics.turnaround_ms.observe(ms_since(item.enqueued, Clock::now()));
    AMF_SPAN_FLOW_STEP("svc/serve", item.trace);
    item.respond(ok_line(item.req.id, solve_result_json(item)));
  }
}

void Session::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  auto& metrics = SvcMetrics::get();
  while (true) {
    cv_.wait(lock, [this] {
      return stopped_ || draining_ || !queue_.empty();
    });
    if (stopped_) return;
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }
    // Accumulation window: let the batch fill before serving. Skipped
    // when draining (flush as fast as possible).
    if (config_.batch_window_ms > 0.0 && !draining_) {
      const auto until =
          queue_.front().enqueued +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  config_.batch_window_ms));
      const auto wait_start = Clock::now();
      cv_.wait_until(lock, until,
                     [this] { return stopped_ || draining_; });
      metrics.stage_batch_wait_ms.observe(
          ms_since(wait_start, Clock::now()));
      if (stopped_) return;
    }
    process_batch(lock);
  }
}

void Session::schedule_locked() {
  if (config_.executor == nullptr) return;  // thread mode: cv_ wakes worker
  if (scheduled_ || stopped_) return;
  scheduled_ = true;
  config_.executor->submit([this] { executor_run(); });
}

void Session::executor_run() {
  auto& metrics = SvcMetrics::get();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_ && !queue_.empty()) {
    // Accumulation window: instead of a timed cv wait, park the slice on
    // the executor timer and give the worker back. scheduled_ stays true
    // across the deferral — the timer continuation owns the session's
    // liveness until it clears the flag.
    if (config_.batch_window_ms > 0.0 && !draining_) {
      const auto until =
          queue_.front().enqueued +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  config_.batch_window_ms));
      const auto now = Clock::now();
      if (now < until) {
        if (window_wait_start_ == Clock::time_point{})
          window_wait_start_ = now;
        const double delay_ms =
            std::chrono::duration<double, std::milli>(until - now).count();
        lock.unlock();
        config_.executor->submit_after(delay_ms, [this] { executor_run(); });
        return;
      }
    }
    if (window_wait_start_ != Clock::time_point{}) {
      metrics.stage_batch_wait_ms.observe(
          ms_since(window_wait_start_, Clock::now()));
      window_wait_start_ = {};
    }
    process_batch(lock);
    // One batch per slice: requeue behind other runnable sessions so a
    // hot session cannot starve the pool. Draining flushes in place.
    if (!draining_) break;
  }
  if (!stopped_ && !queue_.empty()) {
    lock.unlock();
    config_.executor->submit([this] { executor_run(); });
    return;
  }
  scheduled_ = false;
  idle_cv_.notify_all();
}

void Session::process_batch(std::unique_lock<std::mutex>& lock) {
  auto& metrics = SvcMetrics::get();
  // Drain one batch: deltas (applied in order), then a run of
  // consecutive solve/snapshot requests sharing one allocator call. A
  // strict solve or a snapshot is a barrier — later deltas stay queued
  // so it observes exactly its prefix. Solves marked "latest" float:
  // deltas submitted after them may still join the batch, and they are
  // served at the newer state (reported via seq).
  std::vector<Item> deltas, run;
  bool run_all_latest = true;
  while (!queue_.empty()) {
    Item& head = queue_.front();
    if (is_delta_op(head.req.op)) {
      if (!run.empty() && !run_all_latest) break;
      deltas.push_back(std::move(head));
      queue_.pop_front();
    } else {
      if (head.req.op != Op::kSolve || !head.latest)
        run_all_latest = false;
      run.push_back(std::move(head));
      queue_.pop_front();
    }
  }
  lock.unlock();

  const auto now = Clock::now();
  for (const Item& item : deltas) {
    metrics.queue_wait_ms.observe(ms_since(item.enqueued, now));
    metrics.stage_queue_ms.observe(ms_since(item.enqueued, now));
  }
  for (const Item& item : run) {
    metrics.queue_wait_ms.observe(ms_since(item.enqueued, now));
    metrics.stage_queue_ms.observe(ms_since(item.enqueued, now));
  }
  {
    AMF_SPAN_ARG("svc/batch_drain", "items",
                 deltas.size() + run.size());
    for (const Item& item : deltas) {
      AMF_SPAN_FLOW_STEP("svc/apply_delta", item.trace);
      apply_delta(item);
    }
    if (!run.empty()) serve_run(&run);
  }
  // fsync=batch piggybacks on the batch window: one sync makes every
  // ACK of the drained window durable.
  if (journal_ != nullptr && !deltas.empty() &&
      journal_->policy() == FsyncPolicy::kBatch) {
    journal_->sync();
    metrics.journal_syncs.add();
  }
  metrics.batches.add();
  metrics.batch_size.observe(
      static_cast<double>(deltas.size() + run.size()));

  lock.lock();
  processed_seq_ = seq_;
  // Compaction: when the log has grown past the threshold and every
  // journaled record is covered by the current state (no admitted-but-
  // unapplied deltas), collapse it to one snapshot record. Holding mu_
  // blocks admissions, so no record with seq > seq_ can land in the
  // file mid-rewrite.
  if (journal_ != nullptr && config_.journal_compact_every > 0 &&
      enqueued_seq_ == seq_ &&
      journal_->appends_since_compact() >= config_.journal_compact_every) {
    const std::string payload = snapshot_record_payload_locked_state();
    journal_->compact(payload);
    metrics.journal_compactions.add();
    // Mirror the compaction downstream so the standby's log shrinks
    // too (its state is unchanged by the snapshot — stream order
    // guarantees it already applied exactly this prefix). Fire and
    // forget: compaction never gates a client ACK.
    if (repl_ != nullptr) {
      std::uint64_t index = 0;
      (void)repl_->offer(name_, payload, &index);
    }
  }
}

void Session::drain() {
  std::size_t pending = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!draining_)
      pending = queue_.size();
    draining_ = true;
    cv_.notify_all();
    if (config_.executor != nullptr) {
      // Wait out the in-flight slice (it flushes every queued batch once
      // draining_ is set; a window-parked slice fires within one batch
      // window), then serve anything admitted after it went idle.
      idle_cv_.wait(lock, [this] { return !scheduled_; });
      while (!stopped_ && !queue_.empty()) process_batch(lock);
    }
  }
  if (worker_.joinable()) worker_.join();
  util::Logger::global()
      .info("svc.session_drain")
      .str("session", name_)
      .num("pending", pending);
}

Json Session::snapshot_json_locked_state() const {
  Json out = problem_to_json(problem_, nominal_capacities_, job_ids_,
                             multi_session() ? &nominal_matrix_ : nullptr);
  out.set("session", Json(name_));
  out.set("seq", Json(seq_));
  if (has_allocation_)
    out.set("allocation", allocation_to_json(last_allocation_, job_ids_));
  return out;
}

Json Session::snapshot_json_after_drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AMF_REQUIRE(draining_ || stopped_,
                "snapshot_json_after_drain needs a drained session");
  }
  return snapshot_json_locked_state();
}

Json Session::dedup_json_after_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  AMF_REQUIRE(draining_ || stopped_,
              "dedup_json_after_drain needs a drained session");
  Json out = Json::array();
  for (const std::string& rid : dedup_order_) {
    const auto it = dedup_ack_.find(rid);
    if (it == dedup_ack_.end()) continue;
    Json entry = Json::object();
    entry.set("rid", Json(rid));
    entry.set("ack", it->second.ack);
    out.push_back(std::move(entry));
  }
  return out;
}

void Session::seed_dedup(const Json& entries) {
  std::lock_guard<std::mutex> lock(mu_);
  AMF_REQUIRE(queue_.empty() && enqueued_seq_ == seq_,
              "seed_dedup requires a quiescent session");
  if (!entries.is_array())
    throw SvcError(ErrorCode::kBadRequest, "dedup seed must be an array");
  for (const Json& entry : entries.as_array()) {
    if (!entry.is_object())
      throw SvcError(ErrorCode::kBadRequest,
                     "dedup seed entries must be objects");
    const std::string rid = entry.string_or("rid", "");
    const Json* ack = entry.find("ack");
    if (rid.empty() || ack == nullptr || !ack->is_object())
      throw SvcError(ErrorCode::kBadRequest,
                     "dedup seed entries need \"rid\" and an \"ack\" object");
    // A carried-over ACK owes no standby confirmation (repl_index 0):
    // the target shard's seeding snapshot already covers the delta.
    remember_ack_locked(rid, *ack, 0);
  }
}

Json Session::info_json() {
  std::lock_guard<std::mutex> lock(mu_);
  Json out = Json::object();
  out.set("session", Json(name_));
  out.set("queue_depth", Json(static_cast<long long>(queue_.size())));
  out.set("jobs", Json(static_cast<long long>(projected_alive_.size())));
  out.set("enqueued_seq", Json(enqueued_seq_));
  out.set("processed_seq", Json(processed_seq_));
  out.set("draining", Json(draining_));
  out.set("journaled", Json(journal_ != nullptr));
  out.set("dedup_entries", Json(static_cast<long long>(dedup_ack_.size())));
  return out;
}

}  // namespace amf::svc
