#include "svc/chaos.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "util/error.hpp"

namespace amf::svc {

struct ChaosProxy::Link {
  Socket client;
  Socket server;
  /// Per-link fault RNG, seeded deterministically from the proxy seed and
  /// the connection index so the schedule survives thread interleaving.
  std::mt19937 rng;
  std::mutex rng_mu;  ///< both pump directions share the RNG

  void reset_both() {
    client.shutdown_both();
    server.shutdown_both();
  }
};

ChaosProxy::ChaosProxy(ChaosConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  int fds[2];
  AMF_REQUIRE(::pipe(fds) == 0, "chaos proxy self-pipe creation failed");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
}

ChaosProxy::~ChaosProxy() {
  stop();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void ChaosProxy::start() {
  AMF_REQUIRE(!started_, "chaos proxy already started");
  listener_ = listen_tcp(0, &port_);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& link : links_) link->reset_both();
    threads.swap(threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

Socket ChaosProxy::connect_upstream() {
  if (!config_.upstream_unix.empty())
    return connect_unix(config_.upstream_unix);
  return connect_tcp("127.0.0.1", config_.upstream_port);
}

void ChaosProxy::accept_loop() {
  while (wait_readable(listener_.fd(), wake_read_)) {
    Socket client = accept_connection(listener_);
    if (!client.valid()) break;
    auto link = std::make_shared<Link>();
    link->client = std::move(client);
    try {
      link->server = connect_upstream();
    } catch (const std::exception&) {
      continue;  // upstream down (e.g. mid-crash): drop the client
    }
    connections_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    link->rng.seed(rng_());
    links_.push_back(link);
    threads_.emplace_back([this, link] { pump(link, true); });
    threads_.emplace_back([this, link] { pump(link, false); });
  }
}

void ChaosProxy::pump(const std::shared_ptr<Link>& link,
                      bool client_to_server) {
  const Socket& from = client_to_server ? link->client : link->server;
  const Socket& to = client_to_server ? link->server : link->client;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(from.fd(), chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    chunks_.fetch_add(1);
    const std::size_t size = static_cast<std::size_t>(n);

    // Draw the fault for this chunk (one draw, one fault at most).
    double roll;
    double split_at;
    {
      std::lock_guard<std::mutex> lock(link->rng_mu);
      roll = std::uniform_real_distribution<double>(0.0, 1.0)(link->rng);
      split_at = std::uniform_real_distribution<double>(0.0, 1.0)(link->rng);
    }
    const auto gap =
        std::chrono::duration<double, std::milli>(config_.delay_ms);

    if (roll < config_.p_reset) {
      faults_.fetch_add(1);
      link->reset_both();
      break;
    }
    roll -= config_.p_reset;
    if (roll < config_.p_torn_write) {
      faults_.fetch_add(1);
      // A strict prefix, then a reset: the receiver is left holding a
      // partial line it must not misparse.
      const std::size_t keep = 1 + static_cast<std::size_t>(
                                       split_at *
                                       static_cast<double>(size > 1 ? size - 1
                                                                    : 1));
      (void)to.send_all(std::string_view(chunk, keep < size ? keep : size));
      link->reset_both();
      break;
    }
    roll -= config_.p_torn_write;
    if (roll < config_.p_split && size > 1) {
      faults_.fetch_add(1);
      const std::size_t cut =
          1 + static_cast<std::size_t>(split_at *
                                       static_cast<double>(size - 1));
      if (!to.send_all(std::string_view(chunk, cut))) break;
      std::this_thread::sleep_for(gap);
      if (!to.send_all(std::string_view(chunk + cut, size - cut))) break;
      continue;
    }
    roll -= config_.p_split;
    if (roll < config_.p_delay) {
      faults_.fetch_add(1);
      std::this_thread::sleep_for(gap);
    }
    if (!to.send_all(std::string_view(chunk, size))) break;
  }
  // Half-close so the peer pump drains and exits too.
  to.shutdown_both();
  from.shutdown_both();
}

}  // namespace amf::svc
