// session.hpp — a named allocation session: one problem, one primed
// workspace, one serving loop.
//
// A session is the unit of state the service multiplexes: it owns an
// AllocationProblem, the SolverWorkspace primed for it, the last served
// allocation, and a bounded request queue drained by a dedicated worker
// thread. Connections submit requests; the worker batches and serves
// them. All solver state is touched by the worker only, so the solver
// substrate needs no locking.
//
// ## Delta admission (ACK-at-enqueue)
//
// Delta requests (add_job / finish_job / site_event / set_capacity) are
// validated against the session's *projected* state — the state the queue
// will reach once drained — and acknowledged at admission. The contract:
// an acknowledged delta is applied before any later-submitted solve or
// snapshot on the same session observes the state. Jobs are addressed by
// stable handles (the id returned by add_job), never by row index, so
// departures cannot shift another client's references.
//
// ## Batching and coalescing
//
// The worker accumulates requests for `batch_window_ms` after the first
// pending one, then drains a batch: the longest prefix of deltas, applied
// one by one to problem and workspace (the incremental pipeline), then a
// run of consecutive solve/snapshot requests. All solves in the run are
// served by ONE allocator call — the amortization under load — and a
// solve whose state is unchanged since the previous solve is served from
// the cached result without touching the solver at all. Because the
// workspace's exact-realization contract makes every solve bit-identical
// to the stateless path, coalescing is bit-identical to processing the
// queue one request at a time:
//   * a strict solve (the default) closes the batch at the next delta, so
//     it observes exactly the deltas submitted before it;
//   * a solve with "latest": true lets the worker keep draining deltas
//     past it and serve it at a newer state (its response reports the
//     `seq` actually served, which clients verify or ignore).
//
// ## Admission control
//
// The queue is bounded: submissions beyond `max_queue_depth` receive a
// typed `overloaded` error immediately (never a stall, never a dropped
// connection). At serving time, a solve that waited longer than
// `max_queue_age_ms`, or whose request deadline already expired, is shed
// with the same typed error; acknowledged deltas are never shed (their
// contract was given at admission). A solve with `budget_ms` runs under
// a deadline of its *remaining* budget — queue wait is charged against
// it — threaded to the solver chain as the ambient util::StopToken.
//
// ## Durability (write-ahead journal) and idempotent retries
//
// With a journal attached, every admitted delta is appended to the
// session's record log *before* its ACK line is sent (see journal.hpp
// for the fsync policies). A journal append failure rolls the admission
// back and the client receives a typed `internal` error instead of an
// ACK the disk never saw. Deltas carrying a `rid` are remembered in a
// bounded dedup window (rid -> original ACK); a retried rid is re-ACKed
// with the original result plus `dup: true` and is never re-applied.
// Recovery replays journal records through the same validate/apply path
// as live traffic (replay_journal_record), so a restarted session is
// bit-identical to the uncrashed one at the same delta prefix. When the
// session is quiescent and the log has grown past
// `journal_compact_every` records, the worker compacts it to a single
// snapshot record.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "core/robust.hpp"
#include "core/workspace.hpp"
#include "obs/metrics.hpp"
#include "svc/journal.hpp"
#include "svc/proto.hpp"

namespace amf::svc {

class ReplSender;
class SvcExecutor;

/// Per-session serving parameters (server-wide defaults; create_session
/// may override batch_window_ms and policy).
struct SessionConfig {
  /// Accumulation window: after the first request of a batch arrives, the
  /// worker waits this long for more before serving. 0 = serve
  /// immediately (the unbatched reference behaviour).
  double batch_window_ms = 0.0;
  /// Bounded queue depth; submissions beyond it are shed with
  /// `overloaded`. Must be >= 1.
  std::size_t max_queue_depth = 256;
  /// Shed solves that waited longer than this before serving (0 = off).
  double max_queue_age_ms = 0.0;
  /// Budget applied to solve requests that carry none (0 = unbudgeted).
  double default_budget_ms = 0.0;
  /// Allocation policy: "amf", "eamf", or "psmf".
  std::string policy = "amf";
  /// Bounded rid dedup window (retried deltas ACKed once); 0 disables.
  std::size_t dedup_window = 1024;
  /// Compact the journal to one snapshot record once it holds this many
  /// appends and the session is quiescent (0 = never compact).
  long long journal_compact_every = 4096;
  /// Allocator calls slower than this log a `svc.slow_solve` warning
  /// (0 = disabled).
  double slow_solve_ms = 0.0;
  /// Shared session executor (server-owned, outlives every session it
  /// runs). Non-null switches the session from a dedicated worker thread
  /// to executor scheduling: the session becomes a runnable task,
  /// scheduled on delta arrival and batch-window expiry, with at most
  /// one task in flight (per-session ordering = single-worker ordering).
  SvcExecutor* executor = nullptr;
};

/// Registry handles for the service metrics (global registry; created
/// once, shared by every session).
struct SvcMetrics {
  obs::Counter requests_create_session;
  obs::Counter requests_add_job;
  obs::Counter requests_finish_job;
  obs::Counter requests_site_event;
  obs::Counter requests_set_capacity;
  obs::Counter requests_solve;
  obs::Counter requests_snapshot;
  obs::Counter requests_stats;
  obs::Counter requests_drain;
  obs::Counter requests_ping;
  obs::Counter requests_promote;
  obs::Counter requests_evict_session;
  obs::Counter rejects;        ///< admission-control sheds (typed overloaded)
  obs::Counter batches;        ///< batches drained
  obs::Counter solve_calls;    ///< allocator invocations
  obs::Counter solves_served;  ///< solve responses (>= solve_calls: coalescing)
  obs::Counter cache_hits;     ///< solves served from the unchanged-state cache
  obs::Counter journal_records;      ///< deltas appended to session journals
  obs::Counter journal_syncs;        ///< explicit fsyncs (always + batch)
  obs::Counter journal_compactions;  ///< snapshot-compactions performed
  obs::Counter dedup_hits;  ///< retried deltas re-ACKed from the rid window
  /// Journal-replay truncate-and-warn events (torn tails, rejected
  /// records, unreadable files) — silent tail loss made visible.
  obs::Counter journal_replay_warnings;
  // --- replication / HA (see repl.hpp and DESIGN.md §15) ---
  obs::Counter repl_sent;        ///< records written to the standby stream
  obs::Counter repl_acked;       ///< records the standby confirmed
  obs::Counter repl_applied;     ///< records this standby applied
  obs::Counter repl_fenced;      ///< stale-epoch rejections (either side)
  obs::Counter repl_reconnects;  ///< sender reconnects to the standby
  obs::Gauge role;               ///< 1 = primary, 0 = warm standby
  obs::Gauge epoch;              ///< current fencing epoch
  obs::Gauge repl_lag_records;   ///< records offered but unacked
  obs::Gauge repl_lag_bytes;     ///< bytes offered but unacked
  obs::Gauge repl_lag_ms;        ///< age of the oldest unacked record
  // --- scale-out serving (see DESIGN.md §16) ---
  obs::Gauge open_connections;        ///< live client connections
  obs::Gauge executor_queue_depth;    ///< tasks queued in the executor
  obs::Gauge executor_steal_count;    ///< work-steals since start
  obs::Histogram batch_size;     ///< requests per drained batch
  obs::Histogram queue_wait_ms;  ///< enqueue -> start of processing
  obs::Histogram solve_ms;       ///< allocator wall time per solve call
  obs::Histogram turnaround_ms;  ///< enqueue -> response, solve requests
  // Per-stage request latency breakdown (one histogram per pipeline
  // stage a traced request passes through; see DESIGN.md §14).
  obs::Histogram stage_parse_ms;       ///< wire line -> parsed Request
  obs::Histogram stage_queue_ms;       ///< enqueue -> batch drain start
  obs::Histogram stage_batch_wait_ms;  ///< accumulation-window wait
  obs::Histogram stage_solve_ms;       ///< allocator call (= solve_ms view)
  obs::Histogram stage_journal_ms;     ///< write-ahead append (+fsync)
  obs::Histogram stage_reply_ms;       ///< response serialization + write

  /// The process-wide instance (registered in Registry::global()).
  static SvcMetrics& get();
  obs::Counter& request_counter(Op op);
};

class Session {
 public:
  /// Delivers one complete response line (with trailing '\n') to the
  /// client. Must be thread-safe; called from connection threads (delta
  /// ACKs, sheds) and from the session worker (solve results).
  using Responder = std::function<void(std::string line)>;

  /// Fresh session over `capacities` (the nominal site capacities).
  Session(std::string name, std::vector<double> capacities,
          SessionConfig config);

  /// Fresh multi-resource session over an m×R nominal capacity matrix.
  /// add_job then accepts a "profile" row, site_event a per-resource
  /// "capacity_factors" row, and set_capacity takes a capacity vector.
  Session(std::string name, core::Matrix capacity_matrix,
          SessionConfig config);

  /// Restored session (drain-snapshot or `snapshot` op output).
  /// `initial_seq` seeds the delta sequence counter — journal recovery
  /// passes the compaction snapshot's seq so replayed delta records
  /// (and client-visible seqs) line up with the pre-crash numbering.
  Session(std::string name, ProblemSnapshot snapshot, SessionConfig config,
          long long initial_seq = 0);

  /// Stops the worker without serving the remaining queue (fast
  /// teardown); drain() first for the graceful path.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const { return name_; }

  /// Admission + dispatch. Always responds exactly once per request
  /// (immediately for ACKs and sheds, from the worker otherwise).
  void submit(const Request& req, Responder respond);

  /// Attaches the write-ahead journal. Must run before the session sees
  /// traffic (server setup / recovery only); the session owns it.
  void attach_journal(std::unique_ptr<Journal> journal);
  bool has_journal() const { return journal_ != nullptr; }

  /// Attaches the primary's replication stream (server start only; the
  /// server owns the sender and outlives the session). Every journal
  /// payload this session appends is then also offered to the standby,
  /// in admission order; in ack mode delta ACKs additionally wait for
  /// the standby's confirmation (see submit()).
  void attach_replication(ReplSender* repl);

  /// Deltas admitted so far (thread-safe; standby catch-up probes).
  long long enqueued_seq();

  /// Standby-side apply support: journal a replicated record / compact
  /// to a replicated snapshot payload. Only safe while the session is
  /// quiescent (a standby session sees no client traffic).
  void journal_append_replicated(const std::string& payload);
  void compact_journal_replicated(const std::string& payload);

  /// Applies one replayed journal delta record through the live
  /// validate/apply path (recovery only, before traffic). Returns false
  /// and fills `error` on a record the current state rejects — the
  /// caller stops the replay there and truncates the log.
  bool replay_journal_record(const Json& record, std::string* error);

  /// Compacts the journal to a single snapshot record. Only safe after
  /// drain() (no worker); the live path compacts from the worker.
  void compact_journal_after_drain();

  /// Snapshot-record payload for compaction ({"t":"snapshot",...} with
  /// the session config embedded so recovery can rebuild the session).
  std::string snapshot_record_payload_locked_state() const;

  /// Serves everything already admitted, then stops the worker. New
  /// submissions during and after the drain are shed with `draining`.
  /// Idempotent.
  void drain();

  /// Session state as a restorable snapshot (problem + nominal
  /// capacities + job ids + last allocation). Only safe after drain()
  /// (no worker) — the in-band `snapshot` op is the live-session path.
  Json snapshot_json_after_drain();

  /// The rid dedup window as a restorable array (admission order), for
  /// shard handoff: a moved session must keep re-ACKing retried rids
  /// exactly once. Only safe after drain().
  Json dedup_json_after_drain();

  /// Seeds the dedup window from dedup_json_after_drain() output. Must
  /// run before the session sees traffic (restore path only).
  void seed_dedup(const Json& entries);

  /// Queue/state counters for the stats op (thread-safe).
  Json info_json();

 private:
  struct Item {
    Request req;
    Responder respond;
    std::chrono::steady_clock::time_point enqueued;
    double budget_ms = 0.0;  ///< solve: effective budget (0 = unbudgeted)
    bool latest = false;     ///< solve: may be served at a newer state
    long long job_id = -1;   ///< add_job: assigned handle; finish_job: target
    std::uint64_t trace = 0;  ///< wire trace id (0 = untraced request)
    std::string rid;         ///< delta: client retry id ("" = none)
    int prev_workloads_mode = -2;  ///< add_job: mode before admission
  };

  void validate_delta_locked(const Request& req, Item* item);
  /// Undoes the projected-state mutation of validate_delta_locked (a
  /// journal append failed after admission; the ACK must not be owed).
  void rollback_delta_locked(const Item& item);
  /// Journal payload of one admitted delta.
  std::string delta_record_payload_locked(const Item& item,
                                          long long seq) const;
  void remember_ack_locked(const std::string& rid, const Json& ack,
                           std::uint64_t repl_index);
  void worker_loop();
  /// Executor mode: queues the session as a runnable task unless one is
  /// already queued or running (`scheduled_`). Thread mode: no-op (the
  /// cv_ notify in submit() wakes the dedicated worker).
  void schedule_locked();
  /// One executor slice: waits out the batch window by rescheduling via
  /// submit_after, drains ONE batch (all batches when draining), then
  /// reschedules itself while work remains.
  void executor_run();
  /// Drains one batch (deltas + solve/snapshot run + fsync + compaction)
  /// from the front of the queue. Entered and left with `lock` held;
  /// unlocked across the allocator work. Shared verbatim by the worker
  /// thread, the executor slices, and the drain flush, so batching is
  /// bit-identical across serving modes.
  void process_batch(std::unique_lock<std::mutex>& lock);
  /// Applies one admitted delta to problem + workspace + id map.
  void apply_delta(const Item& item);
  /// Serves a run of consecutive solve/snapshot items (state unchanged
  /// across the run).
  void serve_run(std::vector<Item>* run);
  Json snapshot_json_locked_state() const;
  Json solve_result_json(const Item& item) const;
  bool multi_session() const { return !nominal_matrix_.empty(); }

  const std::string name_;
  const SessionConfig config_;

  // --- queue + projected state (guarded by mu_) ---
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool draining_ = false;
  bool stopped_ = false;
  /// Executor mode: a task for this session is queued or running
  /// (including parked on a batch-window timer). While true, `this` must
  /// stay alive; drain() and the destructor wait on idle_cv_ for it to
  /// clear. Clearing it is the task's final touch of the session.
  bool scheduled_ = false;
  std::condition_variable idle_cv_;
  /// Executor mode: when the current batch first deferred for its
  /// accumulation window (epoch = no deferral pending); feeds the
  /// stage_batch_wait_ms histogram like the worker's timed cv wait.
  std::chrono::steady_clock::time_point window_wait_start_{};
  long long next_job_id_ = 0;
  std::unordered_set<long long> projected_alive_;
  /// -1 unknown (no job seen yet), else 0/1: whether jobs carry workloads.
  int workloads_mode_ = -1;
  long long enqueued_seq_ = 0;   ///< deltas admitted
  long long processed_seq_ = 0;  ///< deltas applied (worker)
  /// rid -> original delta ACK plus the replication index its record was
  /// offered under (0 = none pending: no replication, or a replayed
  /// record), bounded FIFO (config_.dedup_window). In repl-ack mode a
  /// dedup re-ACK waits for `repl_index` like the original did, so no
  /// ACK — first or retried — escapes without standby confirmation.
  struct DedupEntry {
    Json ack;
    std::uint64_t repl_index = 0;
  };
  std::unordered_map<std::string, DedupEntry> dedup_ack_;
  std::deque<std::string> dedup_order_;
  /// Write-ahead log; appends happen under mu_ so record order always
  /// matches admission (seq) order.
  std::unique_ptr<Journal> journal_;
  /// Primary → standby stream (server-owned; nullptr = no replication).
  /// offer() happens under mu_ right after the journal append, so the
  /// stream carries records in seq order; ack waiting happens off mu_.
  ReplSender* repl_ = nullptr;

  // --- solver state (worker thread only; after drain: owner thread) ---
  core::AllocationProblem problem_;
  core::SolverWorkspace workspace_;
  std::vector<double> nominal_capacities_;
  /// Nominal m×R capacity matrix; non-empty ⟺ multi-resource session
  /// (nominal_capacities_ then mirrors its binding minima).
  core::Matrix nominal_matrix_;
  std::vector<double> site_factors_;      ///< last site_event factor per site
                                          ///< (binding minimum when multi)
  std::vector<long long> job_ids_;        ///< row -> stable handle
  core::Allocation last_allocation_;
  bool has_allocation_ = false;
  bool cacheable_ = false;      ///< last_allocation_ was an unbudgeted solve
  long long seq_ = 0;           ///< deltas applied (worker-local mirror)
  long long last_solve_seq_ = -1;
  std::string last_tier_;
  std::string broken_;  ///< non-empty: solver state is wedged (internal bug)

  std::unique_ptr<core::Allocator> base_policy_;
  std::unique_ptr<core::RobustAllocator> robust_;

  std::thread worker_;
};

}  // namespace amf::svc
