#include "svc/proto.hpp"

#include <cmath>

#include "util/error.hpp"

namespace amf::svc {

Op parse_op(std::string_view name) {
  if (name == "create_session") return Op::kCreateSession;
  if (name == "add_job") return Op::kAddJob;
  if (name == "finish_job") return Op::kFinishJob;
  if (name == "site_event") return Op::kSiteEvent;
  if (name == "set_capacity") return Op::kSetCapacity;
  if (name == "solve") return Op::kSolve;
  if (name == "snapshot") return Op::kSnapshot;
  if (name == "stats") return Op::kStats;
  if (name == "drain") return Op::kDrain;
  if (name == "ping") return Op::kPing;
  if (name == "promote") return Op::kPromote;
  if (name == "evict_session") return Op::kEvictSession;
  throw SvcError(ErrorCode::kUnknownOp,
                 "unknown op \"" + std::string(name) + "\"");
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kCreateSession: return "create_session";
    case Op::kAddJob: return "add_job";
    case Op::kFinishJob: return "finish_job";
    case Op::kSiteEvent: return "site_event";
    case Op::kSetCapacity: return "set_capacity";
    case Op::kSolve: return "solve";
    case Op::kSnapshot: return "snapshot";
    case Op::kStats: return "stats";
    case Op::kDrain: return "drain";
    case Op::kPing: return "ping";
    case Op::kPromote: return "promote";
    case Op::kEvictSession: return "evict_session";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kNoSession: return "no_session";
    case ErrorCode::kSessionExists: return "session_exists";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kNotPrimary: return "not_primary";
    case ErrorCode::kShardUnavailable: return "shard_unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kRetriesExhausted: return "retries_exhausted";
  }
  return "?";
}

ErrorCode parse_error_code(std::string_view name) {
  if (name == "bad_request") return ErrorCode::kBadRequest;
  if (name == "unknown_op") return ErrorCode::kUnknownOp;
  if (name == "no_session") return ErrorCode::kNoSession;
  if (name == "session_exists") return ErrorCode::kSessionExists;
  if (name == "overloaded") return ErrorCode::kOverloaded;
  if (name == "draining") return ErrorCode::kDraining;
  if (name == "not_primary") return ErrorCode::kNotPrimary;
  if (name == "shard_unavailable") return ErrorCode::kShardUnavailable;
  if (name == "timeout") return ErrorCode::kTimeout;
  if (name == "retries_exhausted") return ErrorCode::kRetriesExhausted;
  return ErrorCode::kInternal;
}

Request parse_request(std::string_view line) {
  if (line.size() > kMaxLineBytes)
    throw SvcError(ErrorCode::kBadRequest, "request line exceeds 1 MiB");
  Json body;
  try {
    body = Json::parse(line);
  } catch (const util::ContractError& e) {
    throw SvcError(ErrorCode::kBadRequest, e.what());
  }
  if (!body.is_object())
    throw SvcError(ErrorCode::kBadRequest, "request must be a JSON object");
  const Json* v = body.find("v");
  if (v == nullptr || !v->is_number() ||
      v->as_number() != static_cast<double>(kProtocolVersion))
    throw SvcError(ErrorCode::kBadRequest,
                   "missing or unsupported protocol version (expected "
                   "\"v\": " + std::to_string(kProtocolVersion) + ")");
  const Json* op = body.find("op");
  if (op == nullptr || !op->is_string())
    throw SvcError(ErrorCode::kBadRequest, "missing \"op\" string");

  Request req;
  req.op = parse_op(op->as_string());
  const Json* id = body.find("id");
  if (id != nullptr) {
    if (!id->is_number())
      throw SvcError(ErrorCode::kBadRequest, "\"id\" must be a number");
    req.id = id->as_number();
  }
  req.session = body.string_or("session", "");
  req.body = std::move(body);
  return req;
}

namespace {

Json envelope(double id, bool ok) {
  Json out = Json::object();
  out.set("v", Json(kProtocolVersion));
  out.set("id", Json(id));
  out.set("ok", Json(ok));
  return out;
}

}  // namespace

std::string ok_line(double id, const Json& result) {
  Json out = envelope(id, true);
  if (result.is_object())
    for (const auto& [k, v] : result.as_object()) out.set(k, v);
  std::string line = out.dump();
  line += '\n';
  return line;
}

std::string error_line(double id, ErrorCode code,
                       const std::string& message) {
  Json err = Json::object();
  err.set("code", Json(std::string(to_string(code))));
  err.set("message", Json(message));
  Json out = envelope(id, false);
  out.set("error", std::move(err));
  std::string line = out.dump();
  line += '\n';
  return line;
}

std::vector<double> number_array(const Json& v, int expect,
                                 std::string_view what) {
  if (!v.is_array())
    throw SvcError(ErrorCode::kBadRequest,
                   std::string(what) + " must be an array of numbers");
  const auto& items = v.as_array();
  if (expect >= 0 && static_cast<int>(items.size()) != expect)
    throw SvcError(ErrorCode::kBadRequest,
                   std::string(what) + " must have length " +
                       std::to_string(expect));
  std::vector<double> out;
  out.reserve(items.size());
  for (const Json& item : items) {
    if (!item.is_number() || !std::isfinite(item.as_number()))
      throw SvcError(ErrorCode::kBadRequest,
                     std::string(what) + " entries must be finite numbers");
    out.push_back(item.as_number());
  }
  return out;
}

Json to_json(const std::vector<double>& v) {
  Json out = Json::array();
  for (double x : v) out.push_back(Json(x));
  return out;
}

Json matrix_to_json(const core::Matrix& m) {
  Json out = Json::array();
  for (const auto& row : m) out.push_back(to_json(row));
  return out;
}

core::Matrix matrix_from_json(const Json& v, int rows, int cols,
                              std::string_view what) {
  if (!v.is_array())
    throw SvcError(ErrorCode::kBadRequest,
                   std::string(what) + " must be an array of number arrays");
  const auto& items = v.as_array();
  if (rows >= 0 && static_cast<int>(items.size()) != rows)
    throw SvcError(ErrorCode::kBadRequest,
                   std::string(what) + " must have " + std::to_string(rows) +
                       " rows");
  core::Matrix out;
  out.reserve(items.size());
  for (const Json& row : items) {
    out.push_back(number_array(row, cols, what));
    if (cols < 0 && out.back().size() != out.front().size())
      throw SvcError(ErrorCode::kBadRequest,
                     std::string(what) + " rows must share one width");
  }
  return out;
}

Json allocation_to_json(const core::Allocation& allocation,
                        const std::vector<long long>& job_ids) {
  Json jobs = Json::array();
  for (int j = 0; j < allocation.jobs(); ++j) {
    Json row = Json::object();
    row.set("id", Json(job_ids[static_cast<std::size_t>(j)]));
    row.set("shares", to_json(allocation.shares()[static_cast<std::size_t>(j)]));
    row.set("aggregate", Json(allocation.aggregate(j)));
    jobs.push_back(std::move(row));
  }
  Json out = Json::object();
  out.set("policy", Json(allocation.policy()));
  out.set("jobs", std::move(jobs));
  return out;
}

Json problem_to_json(const core::AllocationProblem& problem,
                     const std::vector<double>& nominal_capacities,
                     const std::vector<long long>& job_ids,
                     const core::Matrix* nominal_matrix) {
  AMF_REQUIRE((nominal_matrix != nullptr) == problem.multi_resource(),
              "nominal matrix must accompany exactly the multi-resource "
              "problems");
  const bool multi = problem.multi_resource();
  Json out = Json::object();
  out.set("v", Json(kProtocolVersion));
  out.set("capacities", to_json(problem.capacities()));
  out.set("nominal", to_json(nominal_capacities));
  if (multi) {
    out.set("resources", Json(static_cast<long long>(problem.resources())));
    out.set("capacity_matrix", matrix_to_json(problem.capacity_matrix()));
    out.set("nominal_matrix", matrix_to_json(*nominal_matrix));
  }
  Json jobs = Json::array();
  for (int j = 0; j < problem.jobs(); ++j) {
    Json row = Json::object();
    row.set("id", Json(job_ids[static_cast<std::size_t>(j)]));
    row.set("demands",
            to_json(problem.task_demands()[static_cast<std::size_t>(j)]));
    if (problem.has_workloads())
      row.set("workloads",
              to_json(problem.task_workloads()[static_cast<std::size_t>(j)]));
    row.set("weight", Json(problem.weight(j)));
    if (multi)
      row.set("profile",
              to_json(problem.profiles()[static_cast<std::size_t>(j)]));
    jobs.push_back(std::move(row));
  }
  out.set("jobs", std::move(jobs));
  return out;
}

ProblemSnapshot problem_from_json(const Json& v) {
  if (!v.is_object())
    throw SvcError(ErrorCode::kBadRequest, "snapshot must be an object");
  if (v.number_or("v", 0.0) != static_cast<double>(kProtocolVersion))
    throw SvcError(ErrorCode::kBadRequest, "unsupported snapshot version");
  const Json* capacities = v.find("capacities");
  const Json* nominal = v.find("nominal");
  const Json* jobs = v.find("jobs");
  if (capacities == nullptr || nominal == nullptr || jobs == nullptr ||
      !jobs->is_array())
    throw SvcError(ErrorCode::kBadRequest,
                   "snapshot needs capacities, nominal, jobs");

  ProblemSnapshot snap;
  auto caps = number_array(*capacities, -1, "capacities");
  snap.nominal_capacities =
      number_array(*nominal, static_cast<int>(caps.size()), "nominal");
  const int m = static_cast<int>(caps.size());

  // Multi-resource snapshots carry the matrices alongside the scalar
  // (binding-minimum) views; their presence decides which problem shape
  // is rebuilt, so old scalar snapshots load through the exact pre-lift
  // path.
  const Json* cap_matrix = v.find("capacity_matrix");
  const Json* nom_matrix = v.find("nominal_matrix");
  const bool multi = cap_matrix != nullptr;
  int r = -1;
  core::Matrix capacity_matrix;
  if (multi) {
    r = static_cast<int>(v.number_or("resources", -1.0));
    if (r < 1)
      throw SvcError(ErrorCode::kBadRequest,
                     "snapshot needs resources >= 1 with a capacity matrix");
    capacity_matrix = matrix_from_json(*cap_matrix, m, r, "capacity_matrix");
    if (nom_matrix == nullptr)
      throw SvcError(ErrorCode::kBadRequest,
                     "multi-resource snapshot needs a nominal_matrix");
    snap.nominal_matrix = matrix_from_json(*nom_matrix, m, r,
                                           "nominal_matrix");
  } else if (nom_matrix != nullptr) {
    throw SvcError(ErrorCode::kBadRequest,
                   "nominal_matrix needs a capacity_matrix");
  }

  core::Matrix demands, workloads, profiles;
  std::vector<double> weights;
  bool any_workloads = false;
  for (const Json& row : jobs->as_array()) {
    const Json* id = row.find("id");
    const Json* d = row.find("demands");
    if (id == nullptr || !id->is_number() || d == nullptr)
      throw SvcError(ErrorCode::kBadRequest,
                     "snapshot job needs id and demands");
    snap.job_ids.push_back(static_cast<long long>(id->as_number()));
    demands.push_back(number_array(*d, m, "demands"));
    const Json* w = row.find("workloads");
    if (w != nullptr) {
      workloads.push_back(number_array(*w, m, "workloads"));
      any_workloads = true;
    } else {
      workloads.emplace_back(static_cast<std::size_t>(m), 0.0);
    }
    weights.push_back(row.number_or("weight", 1.0));
    const Json* profile = row.find("profile");
    if (profile != nullptr && !multi)
      throw SvcError(ErrorCode::kBadRequest,
                     "job profiles need a multi-resource snapshot");
    if (multi)
      profiles.push_back(profile != nullptr
                             ? number_array(*profile, r, "profile")
                             : std::vector<double>(
                                   static_cast<std::size_t>(r), 1.0));
  }
  if (!any_workloads) workloads.clear();
  try {
    if (multi)
      snap.problem = core::AllocationProblem::multi(
          std::move(demands), std::move(capacity_matrix), std::move(profiles),
          std::move(workloads), std::move(weights));
    else
      snap.problem = core::AllocationProblem(
          std::move(demands), std::move(caps), std::move(workloads),
          std::move(weights));
  } catch (const util::ContractError& e) {
    throw SvcError(ErrorCode::kBadRequest,
                   std::string("invalid snapshot problem: ") + e.what());
  }
  return snap;
}

}  // namespace amf::svc
