#include "svc/executor.hpp"

#include <utility>

#include "svc/session.hpp"
#include "util/error.hpp"

namespace amf::svc {

namespace {

/// The worker a pool thread belongs to (nullptr off-pool). Keyed by the
/// executor instance so tasks submitted from a *different* executor's
/// worker are injected, not cross-queued.
thread_local SvcExecutor* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

}  // namespace

SvcExecutor::SvcExecutor(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
  timer_thread_ = std::thread([this] { timer_loop(); });
}

SvcExecutor::~SvcExecutor() { stop(); }

void SvcExecutor::note_submitted() {
  pending_.fetch_add(1, std::memory_order_release);
  SvcMetrics::get().executor_queue_depth.set(
      static_cast<double>(pending_.load(std::memory_order_relaxed)));
  // The empty critical section pairs with the waiter's predicate check:
  // a worker that saw pending_ == 0 is either inside wait() (notified
  // below) or has not locked yet (will see the new count).
  { std::lock_guard<std::mutex> lock(sleep_mu_); }
  cv_.notify_one();
}

void SvcExecutor::note_taken() {
  pending_.fetch_sub(1, std::memory_order_acquire);
  SvcMetrics::get().executor_queue_depth.set(
      static_cast<double>(pending_.load(std::memory_order_relaxed)));
}

void SvcExecutor::submit(Task task) {
  AMF_REQUIRE(task != nullptr, "executor task must be callable");
  if (stop_.load(std::memory_order_acquire)) return;
  if (tls_pool == this) {
    Worker& self = *workers_[tls_index];
    {
      std::lock_guard<std::mutex> lock(self.mu);
      self.deque.push_back(std::move(task));
    }
    note_submitted();
    return;
  }
  inject(std::move(task));
}

void SvcExecutor::inject(Task task) {
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    inject_.push_back(std::move(task));
  }
  note_submitted();
}

void SvcExecutor::submit_after(double delay_ms, Task task) {
  AMF_REQUIRE(task != nullptr, "executor task must be callable");
  if (stop_.load(std::memory_order_acquire)) return;
  if (delay_ms <= 0.0) {
    submit(std::move(task));
    return;
  }
  TimerEntry entry;
  entry.task = std::move(task);
  entry.due = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(delay_ms));
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    entry.seq = ++timer_seq_;
    timers_.push(std::move(entry));
  }
  timer_cv_.notify_one();
}

bool SvcExecutor::take_task(std::size_t index, Task* out) {
  Worker& self = *workers_[index];
  {
    std::lock_guard<std::mutex> lock(self.mu);
    if (!self.deque.empty()) {
      *out = std::move(self.deque.front());
      self.deque.pop_front();
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!inject_.empty()) {
      *out = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  // Steal sweep: one pass over the other workers, taking from the BACK
  // (the victim pops its own front, so contention meets at opposite
  // ends only when the deque holds a single task).
  for (std::size_t step = 1; step < workers_.size(); ++step) {
    Worker& victim = *workers_[(index + step) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.deque.empty()) continue;
    *out = std::move(victim.deque.back());
    victim.deque.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    SvcMetrics::get().executor_steal_count.set(
        static_cast<double>(steals_.load(std::memory_order_relaxed)));
    return true;
  }
  return false;
}

void SvcExecutor::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  while (true) {
    Task task;
    if (take_task(index, &task)) {
      note_taken();
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) break;
  }
  tls_pool = nullptr;
}

void SvcExecutor::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (true) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto due = timers_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      timer_cv_.wait_until(lock, due);
      continue;
    }
    // const_cast: priority_queue::top() is const, but the entry is about
    // to be popped — moving its task out first avoids a deep copy.
    Task task = std::move(const_cast<TimerEntry&>(timers_.top()).task);
    timers_.pop();
    lock.unlock();
    inject(std::move(task));
    lock.lock();
  }
}

void SvcExecutor::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  cv_.notify_all();
  timer_cv_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  if (timer_thread_.joinable()) timer_thread_.join();
}

long long SvcExecutor::steal_count() const {
  return steals_.load(std::memory_order_relaxed);
}

long long SvcExecutor::queue_depth() const {
  return pending_.load(std::memory_order_relaxed);
}

}  // namespace amf::svc
