// eventloop.hpp — the event-driven connection layer: a small set of
// epoll reactor threads replacing one blocking-poll thread per
// connection.
//
// Each reactor owns an epoll instance (level-triggered) and a wake pipe.
// Registered fds are distributed round-robin at add(); every readiness
// event dispatches to the fd's callback ON THAT REACTOR THREAD, so one
// fd's callbacks never run concurrently with each other. Cross-thread
// operations (arming EPOLLOUT from a session worker, deregistering at
// drain) go through epoll_ctl, which the kernel serializes — no reactor
// handshake needed.
//
// ## Lifetime contract
//
// The loop holds each callback in a shared_ptr and dispatches from a
// copy, so remove() never destroys a callback mid-call; but a callback
// already being dispatched when remove() runs may still fire once. The
// owner (EventConn in server.cpp) therefore keeps its own state alive
// via shared_ptr captured in the callback and tolerates one late event
// after deregistering. Close the fd only after remove() — epoll drops
// closed fds on its own, but a reused fd number must never alias a
// stale registration.
//
// stop() parks the reactors permanently but keeps the epoll fds open
// until destruction, so a straggler set_want_write() from a response
// writer after drain is a harmless no-op instead of an EBADF.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace amf::svc {

class EventLoop {
 public:
  /// Ready-event callback; `events` is the raw epoll mask (EPOLLIN,
  /// EPOLLOUT, EPOLLHUP, EPOLLERR, EPOLLRDHUP).
  using Callback = std::function<void(std::uint32_t events)>;

  /// Spawns `threads` reactor threads (minimum 1).
  explicit EventLoop(std::size_t threads);
  ~EventLoop();  ///< stop()

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Next reactor round-robin. Pick first, record the index in the
  /// connection state, THEN add(): events may fire before add() returns,
  /// and the callback usually needs the index to deregister itself.
  std::size_t pick();

  /// Registers a non-blocking fd on `reactor`, level-triggered for
  /// EPOLLIN|EPOLLRDHUP.
  void add(std::size_t reactor, int fd, Callback callback);

  /// Toggles EPOLLOUT interest (thread-safe from any thread; no-op on an
  /// fd already removed or after stop()).
  void set_want_write(std::size_t reactor, int fd, bool want);

  /// Deregisters fd from its reactor. See the lifetime contract above.
  void remove(std::size_t reactor, int fd);

  /// Wakes and joins every reactor. Registered callbacks are released;
  /// none fires afterwards. Idempotent.
  void stop();

  std::size_t reactors() const { return reactors_.size(); }

 private:
  struct Reactor {
    int epfd = -1;
    int wake_read = -1;
    int wake_write = -1;
    std::mutex mu;
    std::unordered_map<int, std::shared_ptr<Callback>> callbacks;
    std::thread thread;
  };

  void run(Reactor* reactor);

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace amf::svc
