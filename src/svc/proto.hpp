// proto.hpp — wire protocol of the allocation service.
//
// amf_serve speaks line-delimited JSON over a stream socket: every
// request and every response is exactly one '\n'-terminated JSON object.
// Framing is versioned — each request carries `"v": 1` and is rejected
// (typed `bad_request`) on any other version, so the format can evolve
// without ambiguous parses.
//
// Request:  {"v":1, "id":<number>, "op":"<op>", "session":"<name>", ...}
// Response: {"v":1, "id":<id>, "ok":true, ...result}
//       or  {"v":1, "id":<id>, "ok":false,
//            "error":{"code":"<code>", "message":"..."}}
//
// The `id` is an opaque client-chosen number echoed verbatim; responses
// to pipelined requests may arrive out of request order (deltas are
// acknowledged at admission, solves after the batch that serves them),
// so clients match on it. Ops, their parameters, and the session
// lifecycle are documented in DESIGN.md §11.
//
// Error codes are part of the contract: `overloaded` is the typed
// load-shedding response of admission control (bounded queue depth, queue
// age, or an expired request deadline) — a shed client always receives it
// instead of a stall or a dropped connection.
//
// ## Idempotent retries (`rid`)
//
// Delta requests may carry a client-generated `"rid"` string. The server
// keeps a bounded per-session window of recently admitted rids; a retry
// carrying a seen rid is NOT re-applied — it is re-ACKed with the
// original result (same `seq`, same `job` handle) plus `"dup": true`.
// This is what makes client-side reconnect-and-resend safe: a delta whose
// ACK was lost to a connection reset can be retried blindly without
// double-applying the mutation. Rids older than the window are evicted
// (re-use after eviction re-applies — clients must not recycle rids).
// The window is journaled with the delta, so dedup survives a crash for
// every op still in the journal suffix.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "svc/json.hpp"

namespace amf::svc {

inline constexpr int kProtocolVersion = 1;

/// Hard cap on one request line, matching the trace-loader hardening
/// bound: a client that streams an unterminated line is disconnected
/// before the buffer grows past this.
inline constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Protocol operations.
enum class Op {
  kCreateSession,  ///< create a named session from a capacity vector
  kAddJob,         ///< delta: append a job; responds with its stable id
  kFinishJob,      ///< delta: remove a job by stable id
  kSiteEvent,      ///< delta: scale one site's usable capacity (factor of nominal)
  kSetCapacity,    ///< delta: set one site's nominal capacity absolutely
  kSolve,          ///< run (or join) an incremental re-solve
  kSnapshot,       ///< serialize session state (problem + last allocation)
  kStats,          ///< metric registry scrape (Prometheus text + JSON)
  kDrain,          ///< begin graceful server drain
  kPing,           ///< liveness no-op
  kPromote,        ///< promote a warm standby to primary (idempotent)
  kEvictSession,   ///< admin: drain one session and return its snapshot
                   ///< + dedup window, then remove it (shard handoff)
};

/// Parses an op name; throws SvcError(kUnknownOp) on anything else.
Op parse_op(std::string_view name);
const char* to_string(Op op);

/// Typed protocol failure, carried to the client in the error response.
enum class ErrorCode {
  kBadRequest,     ///< malformed JSON, bad version, missing/invalid field
  kUnknownOp,      ///< op name not in the protocol
  kNoSession,      ///< session name not found
  kSessionExists,  ///< create_session on an existing name
  kOverloaded,     ///< admission control shed this request (queue full /
                   ///< aged out / deadline expired before serving)
  kDraining,       ///< server is draining; no new work accepted
  kInternal,       ///< unexpected server-side failure
  kNotPrimary,     ///< a warm standby refused session work (promote it,
                   ///< or address the primary; see DESIGN.md §15)
  kShardUnavailable,  ///< the router could not reach the backend shard
                      ///< owning this session (retry rotates endpoints)
  // Client-side codes (never sent by the server; raised by svc::Client).
  kTimeout,           ///< connect/read deadline expired with no response
  kRetriesExhausted,  ///< reconnect-and-retry gave up (non-idempotent op,
                      ///< or the retry budget ran out)
};

const char* to_string(ErrorCode code);

/// Inverse of to_string(ErrorCode); unrecognized names map to kInternal
/// (the client-side catch-all for codes from a newer server).
ErrorCode parse_error_code(std::string_view name);

/// Exception used server-side to unwind a request into a typed error
/// response (never leaks to the socket as anything but an error line).
class SvcError : public std::runtime_error {
 public:
  SvcError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One parsed request envelope. `body` is the whole request object, so
/// handlers read op-specific parameters from it.
struct Request {
  double id = 0.0;  ///< echoed verbatim; clients choose (JSON number)
  Op op = Op::kPing;
  std::string session;  ///< empty for sessionless ops (stats/drain/ping)
  Json body;
};

/// Parses and validates one request line. Throws SvcError on a framing
/// violation (bad JSON, wrong version, missing op, oversized line).
Request parse_request(std::string_view line);

/// Response builders. Both return a complete line including the trailing
/// '\n'. `result` must be an object (or null for empty results).
std::string ok_line(double id, const Json& result);
std::string error_line(double id, ErrorCode code, const std::string& message);

/// Payload helpers shared by session, snapshot, client, and tests.

/// Reads a JSON array of finite numbers of length `expect` (-1 = any).
std::vector<double> number_array(const Json& v, int expect,
                                 std::string_view what);

Json to_json(const std::vector<double>& v);

/// Matrix codec (array of equal-width number arrays). `rows`/`cols` of -1
/// accept any count; width is still required to be uniform.
Json matrix_to_json(const core::Matrix& m);
core::Matrix matrix_from_json(const Json& v, int rows, int cols,
                              std::string_view what);

/// Allocation as {"policy": ..., "jobs": [{"id": ..., "shares": [...],
/// "aggregate": ...}]}. Job ids are the session's stable handles, in row
/// order. Doubles round-trip bit-exactly (%.17g).
Json allocation_to_json(const core::Allocation& allocation,
                        const std::vector<long long>& job_ids);

/// Problem snapshot codec used by the `snapshot` op and the drain files.
/// Versioned: {"v":1, "capacities":[...], "nominal":[...], "jobs":[{"id":
/// ..., "demands":[...], "workloads":[...], "weight": ...}]}.
///
/// Multi-resource sessions extend the object additively — "resources",
/// "capacity_matrix" (effective m×R), "nominal_matrix", and a per-job
/// "profile" row — while demands/workloads stay raw task units, so a
/// scalar session's snapshot is byte-identical to the pre-lift format
/// and old snapshots load unchanged. `nominal_matrix` must be non-null
/// exactly when the problem is multi-resource.
Json problem_to_json(const core::AllocationProblem& problem,
                     const std::vector<double>& nominal_capacities,
                     const std::vector<long long>& job_ids,
                     const core::Matrix* nominal_matrix = nullptr);

struct ProblemSnapshot {
  core::AllocationProblem problem;
  std::vector<double> nominal_capacities;
  /// Nominal per-site per-resource capacities; empty on scalar sessions.
  core::Matrix nominal_matrix;
  std::vector<long long> job_ids;
};

/// Inverse of problem_to_json; throws SvcError(kBadRequest) on any shape
/// or value violation.
ProblemSnapshot problem_from_json(const Json& v);

}  // namespace amf::svc
