// json.hpp — minimal JSON value for the serving protocol.
//
// The wire format of amf_serve is line-delimited JSON, so the service
// needs a parser as well as the writers the obs exporters already have.
// This is a deliberately small recursive-descent implementation with the
// properties the protocol needs and nothing more:
//
//   * numbers are IEEE doubles, printed with %.17g so allocation values
//     round-trip bit-exactly through a snapshot or a solve response;
//   * object members keep insertion order (responses are stable byte
//     streams, so tests can compare them literally);
//   * parse() throws util::ContractError on malformed input with a byte
//     offset — a framing layer maps that to a typed protocol error;
//   * depth and size are bounded (kMaxDepth, and the caller bounds line
//     length), so a hostile client cannot stack-overflow the server.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace amf::svc {

/// One JSON value. Value-semantic; copying deep-copies.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Nesting bound enforced by parse(); deeper input is a contract error.
  static constexpr int kMaxDepth = 64;

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(long long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; throw util::ContractError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Convenience typed getters with defaults (object members only).
  double number_or(std::string_view key, double fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  /// Appends/sets members. set() keeps insertion order; re-setting an
  /// existing key overwrites in place.
  void set(std::string key, Json value);
  void push_back(Json value);

  /// Serializes to a single line (no whitespace). Doubles use %.17g;
  /// non-finite numbers serialize as null (JSON has no inf/nan).
  std::string dump() const;
  void dump_to(std::string* out) const;

  /// Parses exactly one JSON value spanning the whole input (trailing
  /// whitespace allowed). Throws util::ContractError on any syntax
  /// error, trailing garbage, or nesting deeper than kMaxDepth.
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escapes and appends `s` as a JSON string literal (with quotes).
void append_json_string(std::string* out, std::string_view s);

}  // namespace amf::svc
