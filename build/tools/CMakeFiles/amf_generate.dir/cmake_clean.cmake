file(REMOVE_RECURSE
  "CMakeFiles/amf_generate.dir/amf_generate.cpp.o"
  "CMakeFiles/amf_generate.dir/amf_generate.cpp.o.d"
  "amf_generate"
  "amf_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
