# Empty dependencies file for amf_generate.
# This may be replaced when dependencies are built.
