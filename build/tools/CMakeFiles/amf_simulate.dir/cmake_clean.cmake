file(REMOVE_RECURSE
  "CMakeFiles/amf_simulate.dir/amf_simulate.cpp.o"
  "CMakeFiles/amf_simulate.dir/amf_simulate.cpp.o.d"
  "amf_simulate"
  "amf_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
