# Empty dependencies file for amf_simulate.
# This may be replaced when dependencies are built.
