# Empty dependencies file for amf_solve.
# This may be replaced when dependencies are built.
