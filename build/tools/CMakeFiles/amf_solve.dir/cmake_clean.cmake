file(REMOVE_RECURSE
  "CMakeFiles/amf_solve.dir/amf_solve.cpp.o"
  "CMakeFiles/amf_solve.dir/amf_solve.cpp.o.d"
  "amf_solve"
  "amf_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
