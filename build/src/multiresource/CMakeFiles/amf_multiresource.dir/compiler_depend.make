# Empty compiler generated dependencies file for amf_multiresource.
# This may be replaced when dependencies are built.
