
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiresource/drf.cpp" "src/multiresource/CMakeFiles/amf_multiresource.dir/drf.cpp.o" "gcc" "src/multiresource/CMakeFiles/amf_multiresource.dir/drf.cpp.o.d"
  "/root/repo/src/multiresource/problem.cpp" "src/multiresource/CMakeFiles/amf_multiresource.dir/problem.cpp.o" "gcc" "src/multiresource/CMakeFiles/amf_multiresource.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/amf_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
