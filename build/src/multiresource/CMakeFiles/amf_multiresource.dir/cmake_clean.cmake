file(REMOVE_RECURSE
  "CMakeFiles/amf_multiresource.dir/drf.cpp.o"
  "CMakeFiles/amf_multiresource.dir/drf.cpp.o.d"
  "CMakeFiles/amf_multiresource.dir/problem.cpp.o"
  "CMakeFiles/amf_multiresource.dir/problem.cpp.o.d"
  "libamf_multiresource.a"
  "libamf_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
