file(REMOVE_RECURSE
  "libamf_multiresource.a"
)
