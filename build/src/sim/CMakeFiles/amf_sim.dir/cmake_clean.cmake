file(REMOVE_RECURSE
  "CMakeFiles/amf_sim.dir/engine.cpp.o"
  "CMakeFiles/amf_sim.dir/engine.cpp.o.d"
  "libamf_sim.a"
  "libamf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
