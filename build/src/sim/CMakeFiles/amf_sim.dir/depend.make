# Empty dependencies file for amf_sim.
# This may be replaced when dependencies are built.
