file(REMOVE_RECURSE
  "libamf_sim.a"
)
