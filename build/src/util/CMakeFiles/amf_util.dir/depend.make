# Empty dependencies file for amf_util.
# This may be replaced when dependencies are built.
