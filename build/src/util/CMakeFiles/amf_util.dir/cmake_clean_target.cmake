file(REMOVE_RECURSE
  "libamf_util.a"
)
