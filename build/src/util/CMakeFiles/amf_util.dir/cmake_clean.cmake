file(REMOVE_RECURSE
  "CMakeFiles/amf_util.dir/csv.cpp.o"
  "CMakeFiles/amf_util.dir/csv.cpp.o.d"
  "CMakeFiles/amf_util.dir/parallel.cpp.o"
  "CMakeFiles/amf_util.dir/parallel.cpp.o.d"
  "CMakeFiles/amf_util.dir/rng.cpp.o"
  "CMakeFiles/amf_util.dir/rng.cpp.o.d"
  "CMakeFiles/amf_util.dir/stats.cpp.o"
  "CMakeFiles/amf_util.dir/stats.cpp.o.d"
  "CMakeFiles/amf_util.dir/table.cpp.o"
  "CMakeFiles/amf_util.dir/table.cpp.o.d"
  "libamf_util.a"
  "libamf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
