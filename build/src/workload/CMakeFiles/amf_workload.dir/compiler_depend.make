# Empty compiler generated dependencies file for amf_workload.
# This may be replaced when dependencies are built.
