
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/amf_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/amf_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/amf_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/amf_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/amf_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/amf_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/amf_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/amf_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
