file(REMOVE_RECURSE
  "libamf_workload.a"
)
