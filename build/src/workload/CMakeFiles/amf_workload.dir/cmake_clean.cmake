file(REMOVE_RECURSE
  "CMakeFiles/amf_workload.dir/generator.cpp.o"
  "CMakeFiles/amf_workload.dir/generator.cpp.o.d"
  "CMakeFiles/amf_workload.dir/scenario.cpp.o"
  "CMakeFiles/amf_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/amf_workload.dir/trace.cpp.o"
  "CMakeFiles/amf_workload.dir/trace.cpp.o.d"
  "libamf_workload.a"
  "libamf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
