file(REMOVE_RECURSE
  "CMakeFiles/amf_flow.dir/lower_bounds.cpp.o"
  "CMakeFiles/amf_flow.dir/lower_bounds.cpp.o.d"
  "CMakeFiles/amf_flow.dir/mincost.cpp.o"
  "CMakeFiles/amf_flow.dir/mincost.cpp.o.d"
  "CMakeFiles/amf_flow.dir/network.cpp.o"
  "CMakeFiles/amf_flow.dir/network.cpp.o.d"
  "CMakeFiles/amf_flow.dir/parametric.cpp.o"
  "CMakeFiles/amf_flow.dir/parametric.cpp.o.d"
  "CMakeFiles/amf_flow.dir/transport.cpp.o"
  "CMakeFiles/amf_flow.dir/transport.cpp.o.d"
  "libamf_flow.a"
  "libamf_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
