file(REMOVE_RECURSE
  "libamf_flow.a"
)
