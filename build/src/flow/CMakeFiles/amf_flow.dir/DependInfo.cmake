
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/lower_bounds.cpp" "src/flow/CMakeFiles/amf_flow.dir/lower_bounds.cpp.o" "gcc" "src/flow/CMakeFiles/amf_flow.dir/lower_bounds.cpp.o.d"
  "/root/repo/src/flow/mincost.cpp" "src/flow/CMakeFiles/amf_flow.dir/mincost.cpp.o" "gcc" "src/flow/CMakeFiles/amf_flow.dir/mincost.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/flow/CMakeFiles/amf_flow.dir/network.cpp.o" "gcc" "src/flow/CMakeFiles/amf_flow.dir/network.cpp.o.d"
  "/root/repo/src/flow/parametric.cpp" "src/flow/CMakeFiles/amf_flow.dir/parametric.cpp.o" "gcc" "src/flow/CMakeFiles/amf_flow.dir/parametric.cpp.o.d"
  "/root/repo/src/flow/transport.cpp" "src/flow/CMakeFiles/amf_flow.dir/transport.cpp.o" "gcc" "src/flow/CMakeFiles/amf_flow.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/amf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
