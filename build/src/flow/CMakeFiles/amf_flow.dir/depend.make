# Empty dependencies file for amf_flow.
# This may be replaced when dependencies are built.
