file(REMOVE_RECURSE
  "CMakeFiles/amf_core.dir/allocation.cpp.o"
  "CMakeFiles/amf_core.dir/allocation.cpp.o.d"
  "CMakeFiles/amf_core.dir/amf.cpp.o"
  "CMakeFiles/amf_core.dir/amf.cpp.o.d"
  "CMakeFiles/amf_core.dir/eamf.cpp.o"
  "CMakeFiles/amf_core.dir/eamf.cpp.o.d"
  "CMakeFiles/amf_core.dir/hierarchy.cpp.o"
  "CMakeFiles/amf_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/amf_core.dir/jct.cpp.o"
  "CMakeFiles/amf_core.dir/jct.cpp.o.d"
  "CMakeFiles/amf_core.dir/metrics.cpp.o"
  "CMakeFiles/amf_core.dir/metrics.cpp.o.d"
  "CMakeFiles/amf_core.dir/persite.cpp.o"
  "CMakeFiles/amf_core.dir/persite.cpp.o.d"
  "CMakeFiles/amf_core.dir/problem.cpp.o"
  "CMakeFiles/amf_core.dir/problem.cpp.o.d"
  "CMakeFiles/amf_core.dir/properties.cpp.o"
  "CMakeFiles/amf_core.dir/properties.cpp.o.d"
  "CMakeFiles/amf_core.dir/reference.cpp.o"
  "CMakeFiles/amf_core.dir/reference.cpp.o.d"
  "CMakeFiles/amf_core.dir/rounding.cpp.o"
  "CMakeFiles/amf_core.dir/rounding.cpp.o.d"
  "CMakeFiles/amf_core.dir/single_site.cpp.o"
  "CMakeFiles/amf_core.dir/single_site.cpp.o.d"
  "CMakeFiles/amf_core.dir/stability.cpp.o"
  "CMakeFiles/amf_core.dir/stability.cpp.o.d"
  "libamf_core.a"
  "libamf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
