
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/amf_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/amf.cpp" "src/core/CMakeFiles/amf_core.dir/amf.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/amf.cpp.o.d"
  "/root/repo/src/core/eamf.cpp" "src/core/CMakeFiles/amf_core.dir/eamf.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/eamf.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/amf_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/jct.cpp" "src/core/CMakeFiles/amf_core.dir/jct.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/jct.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/amf_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/persite.cpp" "src/core/CMakeFiles/amf_core.dir/persite.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/persite.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/amf_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/properties.cpp" "src/core/CMakeFiles/amf_core.dir/properties.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/properties.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/core/CMakeFiles/amf_core.dir/reference.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/reference.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/amf_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/rounding.cpp.o.d"
  "/root/repo/src/core/single_site.cpp" "src/core/CMakeFiles/amf_core.dir/single_site.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/single_site.cpp.o.d"
  "/root/repo/src/core/stability.cpp" "src/core/CMakeFiles/amf_core.dir/stability.cpp.o" "gcc" "src/core/CMakeFiles/amf_core.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/amf_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/amf_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
