file(REMOVE_RECURSE
  "CMakeFiles/amf_lp.dir/simplex.cpp.o"
  "CMakeFiles/amf_lp.dir/simplex.cpp.o.d"
  "libamf_lp.a"
  "libamf_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amf_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
