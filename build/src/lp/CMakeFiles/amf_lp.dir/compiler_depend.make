# Empty compiler generated dependencies file for amf_lp.
# This may be replaced when dependencies are built.
