file(REMOVE_RECURSE
  "libamf_lp.a"
)
