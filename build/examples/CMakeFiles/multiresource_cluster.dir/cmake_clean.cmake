file(REMOVE_RECURSE
  "CMakeFiles/multiresource_cluster.dir/multiresource_cluster.cpp.o"
  "CMakeFiles/multiresource_cluster.dir/multiresource_cluster.cpp.o.d"
  "multiresource_cluster"
  "multiresource_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiresource_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
