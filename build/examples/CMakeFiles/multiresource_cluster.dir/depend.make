# Empty dependencies file for multiresource_cluster.
# This may be replaced when dependencies are built.
