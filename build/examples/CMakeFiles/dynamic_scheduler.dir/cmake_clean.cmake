file(REMOVE_RECURSE
  "CMakeFiles/dynamic_scheduler.dir/dynamic_scheduler.cpp.o"
  "CMakeFiles/dynamic_scheduler.dir/dynamic_scheduler.cpp.o.d"
  "dynamic_scheduler"
  "dynamic_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
