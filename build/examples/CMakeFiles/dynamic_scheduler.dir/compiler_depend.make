# Empty compiler generated dependencies file for dynamic_scheduler.
# This may be replaced when dependencies are built.
