file(REMOVE_RECURSE
  "CMakeFiles/federation_strategyproof.dir/federation_strategyproof.cpp.o"
  "CMakeFiles/federation_strategyproof.dir/federation_strategyproof.cpp.o.d"
  "federation_strategyproof"
  "federation_strategyproof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_strategyproof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
