# Empty dependencies file for federation_strategyproof.
# This may be replaced when dependencies are built.
