# Empty dependencies file for bench_f9_dynamic.
# This may be replaced when dependencies are built.
