file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_dynamic.dir/f9_dynamic.cpp.o"
  "CMakeFiles/bench_f9_dynamic.dir/f9_dynamic.cpp.o.d"
  "bench_f9_dynamic"
  "bench_f9_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
