file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_jct_tail.dir/f4_jct_tail.cpp.o"
  "CMakeFiles/bench_f4_jct_tail.dir/f4_jct_tail.cpp.o.d"
  "bench_f4_jct_tail"
  "bench_f4_jct_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_jct_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
