# Empty dependencies file for bench_f4_jct_tail.
# This may be replaced when dependencies are built.
