# Empty dependencies file for bench_f6_addon_ablation.
# This may be replaced when dependencies are built.
