file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_addon_ablation.dir/f6_addon_ablation.cpp.o"
  "CMakeFiles/bench_f6_addon_ablation.dir/f6_addon_ablation.cpp.o.d"
  "bench_f6_addon_ablation"
  "bench_f6_addon_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_addon_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
