file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_churn.dir/f11_churn.cpp.o"
  "CMakeFiles/bench_f11_churn.dir/f11_churn.cpp.o.d"
  "bench_f11_churn"
  "bench_f11_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
