# Empty dependencies file for bench_f11_churn.
# This may be replaced when dependencies are built.
