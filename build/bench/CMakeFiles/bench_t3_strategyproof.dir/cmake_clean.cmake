file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_strategyproof.dir/t3_strategyproof.cpp.o"
  "CMakeFiles/bench_t3_strategyproof.dir/t3_strategyproof.cpp.o.d"
  "bench_t3_strategyproof"
  "bench_t3_strategyproof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_strategyproof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
