# Empty dependencies file for bench_t3_strategyproof.
# This may be replaced when dependencies are built.
