# Empty compiler generated dependencies file for bench_f5_jct_cdf.
# This may be replaced when dependencies are built.
