file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_jct_cdf.dir/f5_jct_cdf.cpp.o"
  "CMakeFiles/bench_f5_jct_cdf.dir/f5_jct_cdf.cpp.o.d"
  "bench_f5_jct_cdf"
  "bench_f5_jct_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_jct_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
