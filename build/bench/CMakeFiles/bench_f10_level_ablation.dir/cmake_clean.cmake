file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_level_ablation.dir/f10_level_ablation.cpp.o"
  "CMakeFiles/bench_f10_level_ablation.dir/f10_level_ablation.cpp.o.d"
  "bench_f10_level_ablation"
  "bench_f10_level_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_level_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
