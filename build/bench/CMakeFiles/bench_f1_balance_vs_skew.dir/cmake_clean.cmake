file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_balance_vs_skew.dir/f1_balance_vs_skew.cpp.o"
  "CMakeFiles/bench_f1_balance_vs_skew.dir/f1_balance_vs_skew.cpp.o.d"
  "bench_f1_balance_vs_skew"
  "bench_f1_balance_vs_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_balance_vs_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
