# Empty compiler generated dependencies file for bench_f1_balance_vs_skew.
# This may be replaced when dependencies are built.
