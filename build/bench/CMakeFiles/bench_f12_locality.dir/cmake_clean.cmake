file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_locality.dir/f12_locality.cpp.o"
  "CMakeFiles/bench_f12_locality.dir/f12_locality.cpp.o.d"
  "bench_f12_locality"
  "bench_f12_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
