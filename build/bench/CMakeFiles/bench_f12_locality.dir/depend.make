# Empty dependencies file for bench_f12_locality.
# This may be replaced when dependencies are built.
