file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_properties.dir/t1_properties.cpp.o"
  "CMakeFiles/bench_t1_properties.dir/t1_properties.cpp.o.d"
  "bench_t1_properties"
  "bench_t1_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
