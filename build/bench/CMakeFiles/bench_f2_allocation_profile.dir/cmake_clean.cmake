file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_allocation_profile.dir/f2_allocation_profile.cpp.o"
  "CMakeFiles/bench_f2_allocation_profile.dir/f2_allocation_profile.cpp.o.d"
  "bench_f2_allocation_profile"
  "bench_f2_allocation_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_allocation_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
