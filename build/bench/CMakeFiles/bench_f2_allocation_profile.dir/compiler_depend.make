# Empty compiler generated dependencies file for bench_f2_allocation_profile.
# This may be replaced when dependencies are built.
