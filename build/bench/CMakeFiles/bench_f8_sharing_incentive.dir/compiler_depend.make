# Empty compiler generated dependencies file for bench_f8_sharing_incentive.
# This may be replaced when dependencies are built.
