file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_sharing_incentive.dir/f8_sharing_incentive.cpp.o"
  "CMakeFiles/bench_f8_sharing_incentive.dir/f8_sharing_incentive.cpp.o.d"
  "bench_f8_sharing_incentive"
  "bench_f8_sharing_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_sharing_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
