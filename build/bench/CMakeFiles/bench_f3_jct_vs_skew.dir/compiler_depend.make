# Empty compiler generated dependencies file for bench_f3_jct_vs_skew.
# This may be replaced when dependencies are built.
