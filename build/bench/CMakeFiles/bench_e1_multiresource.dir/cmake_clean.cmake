file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_multiresource.dir/e1_multiresource.cpp.o"
  "CMakeFiles/bench_e1_multiresource.dir/e1_multiresource.cpp.o.d"
  "bench_e1_multiresource"
  "bench_e1_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
